//! `cityod` — command-line front end for the city-od workspace.
//!
//! ```text
//! cityod networks                         list available road networks
//! cityod simulate <net> [--t N] [--demand F] [--seed S]
//! cityod recover  <net> [--method M] [--t N] [--demand F] [--seed S] [--aux]
//! cityod checkpoint <net> <path>          train OVS and save its weights
//! ```
//!
//! Networks: `grid3x3`, `hangzhou`, `porto`, `manhattan`, `state_college`.
//! Methods: `ovs` (default), `gravity`, `genetic`, `gls`, `em`, `nn`,
//! `lstm`, or `all`.
//!
//! Every command accepts `--threads N` to pin the worker-thread count of
//! the parallel data-generation and evaluation layers (`CITYOD_THREADS`
//! is the environment fallback; the machine's core count is the default).
//! Results are bit-identical for every thread count.

use city_od::baselines;
use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::eval::{default_methods, tables};
use city_od::ovs_core::trainer::{OvsEstimator, OvsTrainer};
use city_od::ovs_core::{OvsConfig, TodEstimator};
use city_od::roadnet::presets;
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().expect("peeked"));
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(arg);
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

impl Args {
    fn flag_f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
    fn flag_usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cityod networks\n  cityod simulate <net> [--t N] [--demand F] [--seed S] [--threads N]\n  cityod recover <net> [--method ovs|gravity|genetic|gls|em|nn|lstm|all] [--t N] [--demand F] [--seed S] [--aux] [--threads N]\n  cityod checkpoint <net> <path.json> [--t N] [--demand F] [--seed S] [--threads N]\nnetworks: grid3x3 hangzhou porto manhattan state_college"
    );
    ExitCode::from(2)
}

fn build_dataset(net_name: &str, spec: &DatasetSpec) -> Option<Dataset> {
    let ds = match net_name {
        "grid3x3" => Dataset::synthetic(TodPattern::Gaussian, spec),
        "hangzhou" => Dataset::city(presets::hangzhou(), spec),
        "porto" => Dataset::city(presets::porto(), spec),
        "manhattan" => Dataset::city(presets::manhattan(), spec),
        "state_college" => Dataset::city(presets::state_college(), spec),
        other => {
            eprintln!("unknown network '{other}'");
            return None;
        }
    };
    match ds {
        Ok(ds) => Some(ds),
        Err(e) => {
            eprintln!("failed to build dataset: {e}");
            None
        }
    }
}

fn method_by_name(name: &str, seed: u64, ovs: OvsConfig) -> Option<Box<dyn TodEstimator>> {
    Some(match name {
        "ovs" => Box::new(OvsEstimator::new(ovs)),
        "gravity" => Box::new(baselines::GravityEstimator::new()),
        "genetic" => Box::new(baselines::GeneticEstimator::new(seed)),
        "gls" => Box::new(baselines::GlsEstimator::new(seed)),
        "em" => Box::new(baselines::EmEstimator::new()),
        "nn" => Box::new(baselines::NnEstimator::new(seed)),
        "lstm" => Box::new(baselines::LstmEstimator::new(seed)),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    // Pin the worker-thread count before any parallel work is dispatched:
    // --threads beats CITYOD_THREADS beats the machine's core count.
    let requested = args.flags.get("threads").and_then(|v| v.parse().ok());
    city_od::roadnet::parallel::init_global(requested);
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "networks" => {
            println!(
                "{:<15} {:>13} {:>8} {:>9}",
                "network", "intersections", "roads", "regions"
            );
            let grid = presets::synthetic_grid();
            println!(
                "{:<15} {:>13} {:>8} {:>9}",
                "grid3x3",
                grid.num_nodes(),
                grid.num_roads(),
                grid.num_regions()
            );
            for c in presets::all_cities() {
                println!(
                    "{:<15} {:>13} {:>8} {:>9}",
                    c.name.to_lowercase().replace(' ', "_"),
                    c.network.num_nodes(),
                    c.network.num_roads(),
                    c.network.num_regions()
                );
            }
            ExitCode::SUCCESS
        }
        "simulate" | "recover" | "checkpoint" => {
            let Some(net_name) = args.positional.get(1) else {
                return usage();
            };
            let spec = DatasetSpec {
                t: args.flag_usize("t", 6),
                interval_s: args.flag_f64("interval", 300.0),
                train_samples: args.flag_usize("train", 6),
                demand_scale: args.flag_f64("demand", 0.15),
                seed: args.flag_usize("seed", 7) as u64,
            };
            let Some(ds) = build_dataset(net_name, &spec) else {
                return ExitCode::FAILURE;
            };
            let ovs_cfg = OvsConfig {
                lstm_hidden: 16,
                seed: spec.seed,
                ..OvsConfig::default()
            };
            match cmd {
                "simulate" => {
                    println!(
                        "{}: {} links, {} OD pairs, {:.0} trips demanded",
                        ds.name,
                        ds.n_links(),
                        ds.n_od(),
                        ds.groundtruth_tod.total()
                    );
                    let mean_speed =
                        ds.observed_speed.total() / ds.observed_speed.as_slice().len() as f64;
                    println!("observed mean speed: {mean_speed:.2} m/s");
                    for ti in 0..ds.n_intervals() {
                        let mut s = 0.0;
                        for j in 0..ds.n_links() {
                            s += ds.observed_speed.get(city_od::roadnet::LinkId(j), ti);
                        }
                        println!(
                            "  interval {ti}: mean speed {:.2} m/s",
                            s / ds.n_links() as f64
                        );
                    }
                    ExitCode::SUCCESS
                }
                "recover" => {
                    let owned = DatasetInput::new(&ds);
                    let with_aux = args.switches.contains("aux");
                    let input = owned.input(&ds, with_aux);
                    let method = args
                        .flags
                        .get("method")
                        .map(String::as_str)
                        .unwrap_or("ovs");
                    let mut results = Vec::new();
                    if method == "all" {
                        for mut m in default_methods(ovs_cfg, spec.seed) {
                            match run_method(m.as_mut(), &ds, &input) {
                                Ok((r, _)) => results.push(r),
                                Err(e) => eprintln!("{} failed: {e}", m.name()),
                            }
                        }
                    } else {
                        let Some(mut m) = method_by_name(method, spec.seed, ovs_cfg) else {
                            eprintln!("unknown method '{method}'");
                            return ExitCode::FAILURE;
                        };
                        match run_method(m.as_mut(), &ds, &input) {
                            Ok((r, _)) => results.push(r),
                            Err(e) => {
                                eprintln!("{method} failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    println!("{}", tables::render_comparison(&ds.name, &results));
                    ExitCode::SUCCESS
                }
                _ => {
                    // checkpoint
                    let Some(path) = args.positional.get(2) else {
                        return usage();
                    };
                    let owned = DatasetInput::new(&ds);
                    let input = owned.input(&ds, false);
                    let trainer = OvsTrainer::new(ovs_cfg);
                    match trainer.run(&input) {
                        Ok((mut model, report)) => {
                            let json = model.weights_to_json();
                            if let Err(e) = std::fs::write(path, json) {
                                eprintln!("write failed: {e}");
                                return ExitCode::FAILURE;
                            }
                            println!(
                                "trained OVS (final fit loss {:.4}), checkpoint -> {path}",
                                report.final_fit().unwrap_or(f64::NAN)
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("training failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        _ => usage(),
    }
}
