//! `cityod` — command-line front end for the city-od workspace.
//!
//! ```text
//! cityod networks                         list available road networks
//! cityod simulate <net> [--t N] [--demand F] [--seed S]
//! cityod recover  <net> [--method M] [--t N] [--demand F] [--seed S] [--aux]
//! cityod checkpoint save <net> <name>     train OVS, register the artifact
//! cityod checkpoint list                  list registered artifacts
//! cityod checkpoint inspect <name>        sections + provenance of one
//! cityod checkpoint verify [<name>]       checksum-verify one or all
//! cityod checkpoint gc <family> [--keep K]  drop old family versions
//! cityod faults run <net> --plan FILE     degradation sweep under faults
//! cityod serve <net> --family F|--artifact A   HTTP query layer over artifacts
//! cityod serve bench [<net>]              deterministic load run -> BENCH_serve.json
//! cityod stream run <net> --windows N     rolling-window online re-estimation
//! ```
//!
//! Networks: `grid3x3`, `hangzhou`, `porto`, `manhattan`, `state_college`.
//! Methods: `ovs` (default), `gravity`, `genetic`, `gls`, `em`, `nn`,
//! `lstm`, or `all`.
//!
//! Checkpoint subcommands operate on an artifact registry directory:
//! `--store DIR` beats the `CITYOD_ARTIFACTS` environment variable beats
//! the default `artifacts/`. `checkpoint save` accepts the same dataset
//! flags as `simulate`, plus `--versioned` to save under the next free
//! `<name>-vNNN` instead of overwriting.
//!
//! Every command accepts `--threads N` to pin the worker-thread count of
//! the parallel data-generation and evaluation layers (`CITYOD_THREADS`
//! is the environment fallback; the machine's core count is the default).
//! Results are bit-identical for every thread count.
//!
//! Every command also accepts `--metrics FILE` to export the full
//! process-global metrics registry (simulator conservation counters,
//! per-stage trainer losses, per-estimator eval timings) as JSON when the
//! command finishes, and `--metrics-stable FILE` to export only the
//! deterministic subset — byte-identical across runs and `--threads`
//! settings, so two exports can be `diff`ed to audit determinism.
//!
//! Setting `CITYOD_OVS_TINY=1` swaps the CLI's OVS configuration for
//! `OvsConfig::tiny()` — the integration-test hook that keeps CLI-driven
//! training runs fast in debug builds.
//!
//! `serve` hosts the read-side HTTP query layer (crate `serve`) over the
//! artifact store: `--family F` follows the newest good `F-vNNN` version
//! (hot-swapping as the trainer lands new ones), `--artifact A` pins one
//! name. `--addr` (default `127.0.0.1:8080`, port 0 picks a free port),
//! `--http-threads` (server workers, default 2) and `--poll-ms` (watcher
//! poll interval) tune the server; dataset flags select the serving
//! geometry, which must match the artifact's TOD shape. `serve bench`
//! self-hosts a scratch artifact built from the dataset's ground-truth
//! TOD, drives the fixed request schedule of `serve::load` against it,
//! prints rps/p50/p99 and writes `results/BENCH_serve.json` (`--out`
//! overrides; `--requests`, `--concurrency` scale the run).
//!
//! `stream run` drives the rolling-window online re-estimation loop
//! (crate `stream`): a seeded simulator source emits per-link speed
//! observations frame by frame, overlapping windows of `--t` intervals
//! close every `--stride` intervals (after `--watermark` intervals of
//! late-arrival grace), and each closed window re-estimates the TOD —
//! warm-starting stage 3 from the previous window's model — then
//! publishes into the versioned artifact family `stream-<run-id>` that
//! `cityod serve --family` hot-swaps from. `--late`/`--delay`/`--drift`
//! shape the source (late-arrival fraction, its frame delay, demand
//! drift); `--keep K` garbage-collects the family down to the newest K
//! good versions after each publish (0 keeps everything). Interrupted
//! runs resume: already-published windows replay as `skipped`. `--json`
//! prints the machine-readable report instead of the table (or writes it
//! to a file when given a path).
//!
//! `faults run` loads a seeded fault plan (`--plan FILE`, TOML subset —
//! see DESIGN.md §10), optionally overrides its master seed with
//! `--seed N`, and prints the degradation report: recovered-TOD accuracy
//! at every sweep grid point (dropout fraction x noise sigma), with the
//! speed RMSE masked to surviving sensors. `--json FILE` additionally
//! writes the report as JSON. Without `--plan` a built-in default sweep
//! (dropout 0 / 0.1 / 0.3, no noise) runs.

use city_od::baselines;
use city_od::checkpoint::format::ArtifactBuilder;
use city_od::checkpoint::store::{ArtifactStore, Provenance};
use city_od::checkpoint::SnapshotSource;
use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::eval::{default_methods, tables};
use city_od::fault::{degradation_report, FaultPlan};
use city_od::ovs_core::estimator::{matrix_to_tod, tod_to_matrix};
use city_od::ovs_core::trainer::{OvsEstimator, OvsTrainer, RecoveryPolicy};
use city_od::ovs_core::{artifact, OvsConfig, TodEstimator};
use city_od::roadnet::presets;
use city_od::serve::{LoadOptions, ServeOptions, Server};
use city_od::stream::{
    incident_sweep, SimSource, SimSourceConfig, StreamConfig, StreamDriver, WindowSpec,
};
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().expect("peeked"));
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(arg);
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

impl Args {
    fn flag_f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
    fn flag_usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cityod networks\n  cityod simulate <net> [--t N] [--demand F] [--seed S] [--threads N]\n  cityod recover <net> [--method ovs|gravity|genetic|gls|em|nn|lstm|all] [--t N] [--demand F] [--seed S] [--aux] [--threads N]\n  cityod checkpoint save <net> <name> [--versioned] [--t N] [--demand F] [--seed S] [--threads N] [--store DIR]\n  cityod checkpoint list [--store DIR]\n  cityod checkpoint inspect <name> [--store DIR]\n  cityod checkpoint verify [<name>] [--store DIR]\n  cityod checkpoint gc <family> [--keep K] [--store DIR]\n  cityod faults run <net> [--plan FILE] [--seed S] [--json FILE] [--t N] [--demand F] [--threads N] [--store DIR]\n  cityod serve <net> (--family F | --artifact A) [--addr HOST:PORT] [--http-threads N] [--poll-ms MS] [--store DIR]\n  cityod serve bench [<net>] [--requests N] [--concurrency C] [--http-threads N] [--out FILE]\n  cityod stream run <net> [--windows N] [--t N] [--stride N] [--watermark N] [--seed S] [--demand F] [--late F] [--delay N] [--drift F] [--plan FILE] [--run-id ID] [--keep K] [--json [FILE]] [--threads N] [--store DIR]\nnetworks: grid3x3 hangzhou porto manhattan state_college\nstore: --store beats CITYOD_ARTIFACTS beats ./artifacts\nmetrics: every command accepts --metrics FILE (full JSON export) and\n         --metrics-stable FILE (deterministic subset only)"
    );
    ExitCode::from(2)
}

fn build_dataset(net_name: &str, spec: &DatasetSpec) -> Option<Dataset> {
    let ds = match net_name {
        "grid3x3" => Dataset::synthetic(TodPattern::Gaussian, spec),
        "hangzhou" => Dataset::city(presets::hangzhou(), spec),
        "porto" => Dataset::city(presets::porto(), spec),
        "manhattan" => Dataset::city(presets::manhattan(), spec),
        "state_college" => Dataset::city(presets::state_college(), spec),
        other => {
            eprintln!("unknown network '{other}'");
            return None;
        }
    };
    match ds {
        Ok(ds) => Some(ds),
        Err(e) => {
            eprintln!("failed to build dataset: {e}");
            None
        }
    }
}

fn method_by_name(name: &str, seed: u64, ovs: OvsConfig) -> Option<Box<dyn TodEstimator>> {
    Some(match name {
        "ovs" => Box::new(OvsEstimator::new(ovs)),
        "gravity" => Box::new(baselines::GravityEstimator::new()),
        "genetic" => Box::new(baselines::GeneticEstimator::new(seed)),
        "gls" => Box::new(baselines::GlsEstimator::new(seed)),
        "em" => Box::new(baselines::EmEstimator::new()),
        "nn" => Box::new(baselines::NnEstimator::new(seed)),
        "lstm" => Box::new(baselines::LstmEstimator::new(seed)),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    // Pin the worker-thread count before any parallel work is dispatched:
    // --threads beats CITYOD_THREADS beats the machine's core count.
    let requested = args.flags.get("threads").and_then(|v| v.parse().ok());
    city_od::roadnet::parallel::init_global(requested);
    let code = run_command(&args);
    match write_metrics(&args) {
        Ok(()) => code,
        Err(e) => {
            eprintln!("metrics export failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Exports the process-global metrics registry after the command ran:
/// `--metrics FILE` writes the full JSON (timings included),
/// `--metrics-stable FILE` the deterministic subset only.
fn write_metrics(args: &Args) -> std::io::Result<()> {
    if let Some(path) = args.flags.get("metrics") {
        std::fs::write(path, city_od::obs::global().to_json(true))?;
    }
    if let Some(path) = args.flags.get("metrics-stable") {
        std::fs::write(path, city_od::obs::global().to_json_stable())?;
    }
    Ok(())
}

fn run_command(args: &Args) -> ExitCode {
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "networks" => {
            println!(
                "{:<15} {:>13} {:>8} {:>9}",
                "network", "intersections", "roads", "regions"
            );
            let grid = presets::synthetic_grid();
            println!(
                "{:<15} {:>13} {:>8} {:>9}",
                "grid3x3",
                grid.num_nodes(),
                grid.num_roads(),
                grid.num_regions()
            );
            for c in presets::all_cities() {
                println!(
                    "{:<15} {:>13} {:>8} {:>9}",
                    c.name.to_lowercase().replace(' ', "_"),
                    c.network.num_nodes(),
                    c.network.num_roads(),
                    c.network.num_regions()
                );
            }
            ExitCode::SUCCESS
        }
        "checkpoint" => checkpoint_cmd(args),
        "faults" => faults_cmd(args),
        "serve" => serve_cmd(args),
        "stream" => stream_cmd(args),
        "simulate" | "recover" => {
            let Some(net_name) = args.positional.get(1) else {
                return usage();
            };
            let spec = dataset_spec(args);
            let Some(ds) = build_dataset(net_name, &spec) else {
                return ExitCode::FAILURE;
            };
            let ovs_cfg = cli_ovs_config(spec.seed);
            match cmd {
                "simulate" => {
                    println!(
                        "{}: {} links, {} OD pairs, {:.0} trips demanded",
                        ds.name,
                        ds.n_links(),
                        ds.n_od(),
                        ds.groundtruth_tod.total()
                    );
                    let mean_speed =
                        ds.observed_speed.total() / ds.observed_speed.as_slice().len() as f64;
                    println!("observed mean speed: {mean_speed:.2} m/s");
                    for ti in 0..ds.n_intervals() {
                        let mut s = 0.0;
                        for j in 0..ds.n_links() {
                            s += ds.observed_speed.get(city_od::roadnet::LinkId(j), ti);
                        }
                        println!(
                            "  interval {ti}: mean speed {:.2} m/s",
                            s / ds.n_links() as f64
                        );
                    }
                    ExitCode::SUCCESS
                }
                _ => {
                    // recover
                    let owned = DatasetInput::new(&ds);
                    let with_aux = args.switches.contains("aux");
                    let input = owned.input(&ds, with_aux);
                    let method = args
                        .flags
                        .get("method")
                        .map(String::as_str)
                        .unwrap_or("ovs");
                    let mut results = Vec::new();
                    if method == "all" {
                        for mut m in default_methods(ovs_cfg, spec.seed) {
                            match run_method(m.as_mut(), &ds, &input) {
                                Ok((r, _)) => results.push(r),
                                Err(e) => eprintln!("{} failed: {e}", m.name()),
                            }
                        }
                    } else {
                        let Some(mut m) = method_by_name(method, spec.seed, ovs_cfg) else {
                            eprintln!("unknown method '{method}'");
                            return ExitCode::FAILURE;
                        };
                        match run_method(m.as_mut(), &ds, &input) {
                            Ok((r, _)) => results.push(r),
                            Err(e) => {
                                eprintln!("{method} failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    println!("{}", tables::render_comparison(&ds.name, &results));
                    ExitCode::SUCCESS
                }
            }
        }
        _ => usage(),
    }
}

fn dataset_spec(args: &Args) -> DatasetSpec {
    DatasetSpec {
        t: args.flag_usize("t", 6),
        interval_s: args.flag_f64("interval", 300.0),
        train_samples: args.flag_usize("train", 6),
        demand_scale: args.flag_f64("demand", 0.15),
        seed: args.flag_usize("seed", 7) as u64,
    }
}

fn cli_ovs_config(seed: u64) -> OvsConfig {
    // Test hook: CITYOD_OVS_TINY swaps in the small configuration so
    // CLI-driven training stays fast in debug integration tests.
    if std::env::var_os("CITYOD_OVS_TINY").is_some() {
        return OvsConfig::tiny().with_seed(seed);
    }
    OvsConfig {
        lstm_hidden: 16,
        seed,
        ..OvsConfig::default()
    }
}

fn open_store(args: &Args) -> Option<ArtifactStore> {
    let opened = match args.flags.get("store") {
        Some(dir) => ArtifactStore::open(dir),
        None => ArtifactStore::open_default(),
    };
    match opened {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("cannot open artifact store: {e}");
            None
        }
    }
}

fn checkpoint_save(args: &Args, store: &ArtifactStore) -> ExitCode {
    let (Some(net_name), Some(name)) = (args.positional.get(2), args.positional.get(3)) else {
        return usage();
    };
    let spec = dataset_spec(args);
    let Some(ds) = build_dataset(net_name, &spec) else {
        return ExitCode::FAILURE;
    };
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let trainer = OvsTrainer::new(cli_ovs_config(spec.seed));
    let (mut model, report) = match trainer.run(&input) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tod = matrix_to_tod(&model.recovered_tod());
    let saved = artifact::save_model(&mut model, Some(&tod)).and_then(|builder| {
        let mut prov = artifact::model_provenance(&mut model, &report)?;
        prov.note = format!("cityod checkpoint save {net_name}");
        if args.switches.contains("versioned") {
            store.save_versioned(name, &builder, &prov)
        } else {
            store.save(name, &builder, &prov).map(|_| name.to_string())
        }
    });
    match saved {
        Ok(assigned) => {
            println!(
                "trained OVS on {} (final fit loss {:.4}), artifact '{assigned}' -> {}",
                ds.name,
                report.final_fit().unwrap_or(f64::NAN),
                store.dir().display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("save failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cityod serve <net> (--family F | --artifact A)`: host the HTTP query
/// layer until the process is killed. `cityod serve bench` delegates to
/// [`serve_bench`].
fn serve_cmd(args: &Args) -> ExitCode {
    if args.positional.get(1).map(String::as_str) == Some("bench") {
        return serve_bench(args);
    }
    let Some(net_name) = args.positional.get(1) else {
        return usage();
    };
    let source = match (args.flags.get("artifact"), args.flags.get("family")) {
        (Some(name), _) => SnapshotSource::Name(name.clone()),
        (None, Some(family)) => SnapshotSource::Family(family.clone()),
        (None, None) => {
            eprintln!(
                "serve needs an artifact source: --family <family> (follow newest good \
                 version) or --artifact <name> (pin one)"
            );
            return usage();
        }
    };
    let spec = dataset_spec(args);
    let Some(ds) = build_dataset(net_name, &spec) else {
        return ExitCode::FAILURE;
    };
    let Some(store) = open_store(args) else {
        return ExitCode::FAILURE;
    };
    let opts = ServeOptions {
        addr: args
            .flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        threads: args.flag_usize("http-threads", 2),
        poll_ms: args.flag_usize("poll-ms", 500) as u64,
    };
    match Server::start(store, source, ds, &opts) {
        Ok(server) => {
            // Line-buffered stdout: tests (and humans) read the bound
            // address from this line before the server blocks.
            println!("serving {net_name} on http://{}", server.addr());
            println!(
                "endpoints: /healthz /version /kpis /links /links/<id> \
                 /od?origin=<r>&dest=<r> /map/geojson"
            );
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cityod serve bench [<net>]`: self-hosted load run. Registers the
/// dataset's ground-truth TOD as a scratch serving artifact (no training
/// — the bench measures the serving layer), drives the deterministic
/// schedule against a fresh server, prints the headline numbers and
/// writes `BENCH_serve.json`.
fn serve_bench(args: &Args) -> ExitCode {
    let net_name = args
        .positional
        .get(2)
        .map(String::as_str)
        .unwrap_or("grid3x3");
    let spec = dataset_spec(args);
    let Some(ds) = build_dataset(net_name, &spec) else {
        return ExitCode::FAILURE;
    };
    let scratch = std::env::temp_dir().join(format!("cityod-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let store = match ArtifactStore::open(&scratch) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open scratch store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = ArtifactBuilder::new(artifact::OVS_MODEL_KIND);
    builder.add_matrix("recovered_tod", &tod_to_matrix(&ds.groundtruth_tod));
    let mut prov = Provenance::new(artifact::OVS_MODEL_KIND, "{}", spec.seed);
    prov.note = format!("cityod serve bench {net_name}");
    if let Err(e) = store.save("serve-bench", &builder, &prov) {
        eprintln!("cannot save scratch artifact: {e}");
        return ExitCode::FAILURE;
    }
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        threads: args.flag_usize("http-threads", 2),
        poll_ms: 1_000,
    };
    let server = match Server::start(store, SnapshotSource::Name("serve-bench".into()), ds, &opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve bench failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let load = LoadOptions {
        requests: args.flag_usize("requests", 400),
        concurrency: args.flag_usize("concurrency", 4),
    };
    let report = city_od::serve::load::run(&server.addr().to_string(), &load);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "serve bench on {net_name}: {} requests ({} workers), {:.0} req/s, \
         p50 {:.3} ms, p99 {:.3} ms",
        report.requests, load.concurrency, report.rps, report.p50_ms, report.p99_ms
    );
    println!(
        "status classes: 2xx={} 3xx={} 4xx={} 5xx={} failed={}",
        report.status_2xx, report.status_3xx, report.status_4xx, report.status_5xx, report.failed
    );
    let out = args
        .flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_serve.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if report.status_5xx > 0 || report.completed == 0 {
        eprintln!("serve bench saw server errors");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `cityod stream run <net>`: rolling-window online re-estimation. A
/// seeded simulator source replays drifting demand as per-link speed
/// observations; every closed window re-estimates the TOD (warm-starting
/// from the previous window) and publishes a version into the family
/// `stream-<run-id>`, which a concurrently running
/// `cityod serve <net> --family stream-<run-id>` hot-swaps from.
fn stream_cmd(args: &Args) -> ExitCode {
    let Some("run") = args.positional.get(1).map(String::as_str) else {
        eprintln!("unknown stream subcommand (expected 'run')");
        return usage();
    };
    let Some(net_name) = args.positional.get(2) else {
        return usage();
    };
    let spec = dataset_spec(args);
    let Some(ds) = build_dataset(net_name, &spec) else {
        return ExitCode::FAILURE;
    };
    let Some(store) = open_store(args) else {
        return ExitCode::FAILURE;
    };
    // The window length is the dataset's interval count: each window
    // re-estimates one full TOD of `--t` intervals. Overlap comes from
    // the stride (default: half a window).
    let window_spec = match WindowSpec::new(
        ds.n_intervals(),
        args.flag_usize("stride", (ds.n_intervals() / 2).max(1)),
        args.flag_usize("watermark", 1) as u64,
    ) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("bad window geometry: {e}");
            return ExitCode::FAILURE;
        }
    };
    // --plan FILE installs the fault plan's [[network.incident]] timeline
    // on both the source (so the simulated traffic actually degrades) and
    // the driver (so every window's artifact records the incidents it
    // straddled).
    let incidents = match args.flags.get("plan") {
        Some(path) => match FaultPlan::from_file(std::path::Path::new(path)) {
            Ok(plan) => match plan.network.schedule() {
                Ok(schedule) => schedule,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => simulator::IncidentSchedule::default(),
    };
    let cfg = StreamConfig {
        run_id: args
            .flags
            .get("run-id")
            .cloned()
            .unwrap_or_else(|| net_name.clone()),
        windows: args.flag_usize("windows", 3),
        spec: window_spec,
        ovs: cli_ovs_config(spec.seed),
        keep_versions: args.flag_usize("keep", 0),
        recovery: RecoveryPolicy::default(),
        incidents: incidents.clone(),
    };
    let family = cfg.family();
    let source = SimSource::new(
        ds.clone(),
        window_spec,
        SimSourceConfig {
            seed: spec.seed,
            drift: args.flag_f64("drift", 0.2),
            late_frac: args.flag_f64("late", 0.1),
            late_delay_frames: args.flag_usize("delay", 1) as u64,
        },
    );
    let mut source = match source {
        Ok(source) => source,
        Err(e) => {
            eprintln!("bad source configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !incidents.is_empty() {
        source = source.with_incidents(incidents);
    }
    let mut driver = match StreamDriver::new(&ds, cfg) {
        Ok(driver) => driver,
        Err(e) => {
            eprintln!("stream run failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match driver.run(&store, &mut source) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stream run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // --json <FILE> writes the report; bare --json prints it instead of
    // the table.
    if args.switches.contains("json") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("report encode failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{report}");
        println!(
            "serve with: cityod serve {net_name} --family {family} --t {} --seed {}",
            spec.t, spec.seed
        );
    }
    if let Some(path) = args.flags.get("json") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("report encode failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.count(city_od::stream::WindowStatus::Failed) > 0 {
        eprintln!("warning: at least one window diverged past the retry budget");
    }
    ExitCode::SUCCESS
}

/// `cityod faults run <net> [--plan FILE] [--seed S] [--json FILE]`:
/// evaluates the OVS pipeline at every point of the plan's sweep grid
/// and prints RMSE vs dropout fraction / noise level.
fn faults_cmd(args: &Args) -> ExitCode {
    let Some("run") = args.positional.get(1).map(String::as_str) else {
        eprintln!("unknown faults subcommand (expected 'run')");
        return usage();
    };
    let Some(net_name) = args.positional.get(2) else {
        return usage();
    };
    let mut plan = match args.flags.get("plan") {
        Some(path) => match FaultPlan::from_file(std::path::Path::new(path)) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::default(),
    };
    if let Some(seed) = args.flags.get("seed").and_then(|v| v.parse().ok()) {
        plan.seed = seed;
    }
    let spec = dataset_spec(args);
    let Some(ds) = build_dataset(net_name, &spec) else {
        return ExitCode::FAILURE;
    };
    let cfg = cli_ovs_config(spec.seed);
    // A plan with a [network] sweep runs the incident degradation /
    // recovery grid instead of the observation-fault grid: each point
    // streams windows through one scheduled incident and scores
    // pre / during / post masked RMSE.
    if plan.network.sweep.is_active() {
        let Some(store) = open_store(args) else {
            return ExitCode::FAILURE;
        };
        let base = store.dir().join("incident-sweep");
        return match incident_sweep(&ds, &cfg, &plan.network.sweep, plan.seed, &base) {
            Ok(report) => {
                print!("{report}");
                if report.diverged_unhealed_count() > 0 {
                    eprintln!("warning: at least one grid point diverged and never healed");
                }
                if let Some(path) = args.flags.get("json") {
                    match serde_json::to_string_pretty(&report) {
                        Ok(json) => {
                            if let Err(e) = std::fs::write(path, json) {
                                eprintln!("cannot write {path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                        Err(e) => {
                            eprintln!("report encode failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("incident sweep failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match degradation_report(&ds, &cfg, &plan) {
        Ok(report) => {
            print!("{report}");
            if report.points.iter().any(|p| p.diverged) {
                eprintln!("warning: at least one grid point diverged past the retry budget");
            }
            if let Some(path) = args.flags.get("json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("report encode failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fault sweep failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints the per-section audit of a corrupt artifact: every failing
/// section with its byte offset, plus structural damage, instead of just
/// the first error `load` would surface.
fn print_audit(store: &ArtifactStore, name: &str) {
    match store.audit(name) {
        Ok(audit) => {
            for s in audit.failures() {
                println!(
                    "  section '{}' at offset {} ({} bytes): stored crc32 {:08x}, computed {:08x}",
                    s.name, s.offset, s.len, s.stored, s.computed
                );
            }
            if let Some(structural) = &audit.structural {
                println!("  structural damage: {structural}");
            }
        }
        Err(e) => println!("  audit failed: {e}"),
    }
}

fn checkpoint_cmd(args: &Args) -> ExitCode {
    let Some(sub) = args.positional.get(1).map(String::as_str) else {
        return usage();
    };
    let Some(store) = open_store(args) else {
        return ExitCode::FAILURE;
    };
    match sub {
        "save" => checkpoint_save(args, &store),
        "list" => match store.list() {
            Ok(records) => {
                println!(
                    "{:<28} {:<14} {:>10} {:>10} {:>9}",
                    "name", "kind", "bytes", "crc32", "sections"
                );
                for r in &records {
                    println!(
                        "{:<28} {:<14} {:>10} {:>10} {:>9}",
                        r.name,
                        r.kind,
                        r.size,
                        format!("{:08x}", r.content_crc),
                        r.sections.len()
                    );
                }
                println!(
                    "# {} artifact(s) in {}",
                    records.len(),
                    store.dir().display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("list failed: {e}");
                ExitCode::FAILURE
            }
        },
        "inspect" => {
            let Some(name) = args.positional.get(2) else {
                return usage();
            };
            match store.inspect(name) {
                Ok(r) => {
                    println!("name:     {}", r.name);
                    println!("path:     {}", r.path.display());
                    println!("kind:     {}", r.kind);
                    println!("size:     {} bytes", r.size);
                    println!("crc32:    {:08x}", r.content_crc);
                    // The snapshot fingerprint doubles as the serving
                    // layer's ETag for this artifact.
                    match store.snapshot(name) {
                        Ok(snap) => println!("etag:     {}", snap.etag()),
                        Err(e) => println!("etag:     (unavailable: {e})"),
                    }
                    println!("sections: {}", r.sections.join(", "));
                    if let Some(p) = &r.provenance {
                        println!("seed:     {}", p.seed);
                        println!("git:      {}", p.git);
                        println!("created:  {} (unix)", p.created_unix);
                        let params: usize = p.shape_sig.iter().map(|&(r, c)| r * c).sum();
                        println!(
                            "shapes:   {} tensors, {} parameters",
                            p.shape_sig.len(),
                            params
                        );
                        let trace = |name: &str, t: &[f64]| {
                            if let Some(last) = t.last() {
                                println!("{name}: {} steps, final loss {last:.6}", t.len());
                            }
                        };
                        trace("v2s:    ", &p.v2s_losses);
                        trace("tod2v:  ", &p.tod2v_losses);
                        trace("fit:    ", &p.fit_losses);
                        if !p.note.is_empty() {
                            println!("note:     {}", p.note);
                        }
                    } else {
                        println!("provenance: (none)");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("inspect failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "verify" => match args.positional.get(2) {
            Some(name) => match store.verify(name) {
                Ok(r) => {
                    println!(
                        "{}: OK ({} bytes, crc32 {:08x})",
                        r.name, r.size, r.content_crc
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{name}: CORRUPT — {e}");
                    print_audit(&store, name);
                    ExitCode::FAILURE
                }
            },
            None => match store.verify_all() {
                Ok(outcomes) => {
                    let mut bad = 0usize;
                    for (name, err) in &outcomes {
                        match err {
                            None => println!("{name}: OK"),
                            Some(e) => {
                                bad += 1;
                                println!("{name}: CORRUPT — {e}");
                                print_audit(&store, name);
                            }
                        }
                    }
                    println!("# {} artifact(s), {} corrupt", outcomes.len(), bad);
                    if bad == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("verify failed: {e}");
                    ExitCode::FAILURE
                }
            },
        },
        "gc" => {
            let Some(family) = args.positional.get(2) else {
                return usage();
            };
            let keep = args.flag_usize("keep", 3);
            match store.gc(family, keep) {
                Ok(removed) => {
                    for name in &removed {
                        println!("removed {name}");
                    }
                    println!("# kept newest {keep} of family '{family}'");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gc failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("unknown checkpoint subcommand '{other}'");
            usage()
        }
    }
}
