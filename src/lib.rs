//! # city-od — facade crate
//!
//! Re-exports the full public API of the *Rebuilding City-Wide Traffic
//! Origin Destination from Road Speed Data* (ICDE 2021) reproduction. See
//! the README for a tour and `examples/` for runnable entry points.

pub use baselines;
pub use checkpoint;
pub use datagen;
pub use eval;
pub use fault;
pub use neural;
pub use obs;
pub use ovs_core;
pub use roadnet;
pub use serve;
pub use simulator;
pub use stream;
