#!/bin/bash
# Regenerates every paper table/figure. CITYOD_PROFILE controls cost.
set -u
PROFILE="${CITYOD_PROFILE:-standard}"
BINS="table03_datasets table04_config table08_synthetic table09_ablation table06_real table07_runtime table10_casestudy fig09_scalability fig10_census fig11_roadwork fig12_hangzhou fig13_football ablation_design robustness_seeds table06_aux"
for bin in $BINS; do
  echo "=== $bin (profile=$PROFILE) ==="
  CITYOD_PROFILE=$PROFILE cargo run --release -p bench --bin "$bin" 2>&1 | tee "results/logs/$bin.txt"
  echo
done
