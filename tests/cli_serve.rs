//! Integration tests for the `cityod serve` subcommands, driving the real
//! binary via `CARGO_BIN_EXE_cityod`.
//!
//! The `serve` smoke test trains a tiny artifact (`CITYOD_OVS_TINY=1`),
//! launches the long-running server on an OS-assigned port, reads the
//! bound address from its stdout, exercises a couple of endpoints over a
//! raw TCP client, and kills the child. `serve bench` runs to completion
//! on its own scratch artifact and must emit a well-formed
//! `BENCH_serve.json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Dataset flags small enough for debug-build training runs.
const TINY_FLAGS: &[&str] = &["--t", "2", "--train", "2", "--demand", "0.1", "--seed", "5"];

struct TempDirs {
    dirs: Vec<PathBuf>,
}

impl TempDirs {
    fn new(tag: &str, n: usize) -> Self {
        let dirs: Vec<PathBuf> = (0..n)
            .map(|i| {
                let d = std::env::temp_dir()
                    .join(format!("cityod-serve-cli-{tag}-{i}-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&d);
                d
            })
            .collect();
        Self { dirs }
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        for d in &self.dirs {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}

fn cityod(args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cityod"));
    cmd.args(args).env("CITYOD_OVS_TINY", "1");
    cmd.env_remove("CITYOD_ARTIFACTS");
    cmd.output().expect("cityod binary runs")
}

/// A running `cityod serve` child that is killed on drop even when the
/// test panics mid-way.
struct ServeChild(Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `cityod serve` and parses the bound address from its first
/// stdout line (`serving <net> on http://127.0.0.1:<port>`).
fn spawn_serve(args: &[&str]) -> (ServeChild, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cityod"));
    cmd.args(args)
        .env("CITYOD_OVS_TINY", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd.env_remove("CITYOD_ARTIFACTS");
    let mut child = cmd.spawn().expect("cityod serve spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("serve prints its address");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in serve banner: {line:?}"))
        .trim()
        .to_string();
    (ServeChild(child), addr)
}

/// Minimal HTTP GET: returns (status, body).
fn get(addr: &str, path: &str) -> (u16, String) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8_lossy(&body).into_owned())
}

#[test]
fn serve_hosts_a_trained_artifact_end_to_end() {
    let tmp = TempDirs::new("serve", 1);
    let store = tmp.dirs[0].to_str().unwrap().to_string();

    // Train + register a tiny versioned artifact.
    let mut args = vec!["checkpoint", "save", "grid3x3", "tod", "--versioned"];
    args.extend_from_slice(TINY_FLAGS);
    args.extend_from_slice(&["--store", &store]);
    let out = cityod(&args);
    assert!(
        out.status.success(),
        "checkpoint save failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Serve it on an OS-assigned port; the dataset flags must match the
    // artifact's shape.
    let mut args = vec![
        "serve",
        "grid3x3",
        "--family",
        "tod",
        "--addr",
        "127.0.0.1:0",
        "--http-threads",
        "2",
    ];
    args.extend_from_slice(TINY_FLAGS);
    args.extend_from_slice(&["--store", &store]);
    let (_child, addr) = spawn_serve(&args);

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "healthz body: {body}");
    let (status, body) = get(&addr, "/version");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"artifact\":\"tod-v001\""),
        "version: {body}"
    );
    let (status, body) = get(&addr, "/kpis");
    assert_eq!(status, 200);
    assert!(body.contains("\"masked_speed_rmse\""), "kpis: {body}");
    let (status, _) = get(&addr, "/links/0");
    assert_eq!(status, 200);
    let (status, _) = get(&addr, "/definitely/not/an/endpoint");
    assert_eq!(status, 404);
}

#[test]
fn serve_without_source_or_artifact_fails_cleanly() {
    let tmp = TempDirs::new("serve-err", 1);
    let store = tmp.dirs[0].to_str().unwrap().to_string();

    // No --family/--artifact: usage error.
    let out = cityod(&["serve", "grid3x3", "--store", &store]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--family"));

    // A family with no artifacts: clean failure, not a hang.
    let mut args = vec!["serve", "grid3x3", "--family", "nothing"];
    args.extend_from_slice(TINY_FLAGS);
    args.extend_from_slice(&["--store", &store, "--addr", "127.0.0.1:0"]);
    let out = cityod(&args);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no good artifact"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_bench_emits_bench_json() {
    let tmp = TempDirs::new("bench", 1);
    let out_path = tmp.dirs[0].join("BENCH_serve.json");
    let out_str = out_path.to_str().unwrap().to_string();
    let mut args = vec![
        "serve",
        "bench",
        "grid3x3",
        "--requests",
        "60",
        "--concurrency",
        "2",
        "--out",
        &out_str,
    ];
    args.extend_from_slice(TINY_FLAGS);
    let out = cityod(&args);
    assert!(
        out.status.success(),
        "serve bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("req/s"), "stdout: {stdout}");
    let json = std::fs::read_to_string(&out_path).expect("BENCH_serve.json written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["bench"].as_str(), Some("serve"));
    assert_eq!(parsed["requests"].as_u64(), Some(60));
    assert_eq!(parsed["completed"].as_u64(), Some(60));
    assert_eq!(parsed["status_5xx"].as_u64(), Some(0));
    assert!(parsed["rps"].as_f64().unwrap() > 0.0);
    assert!(parsed["p99_ms"].as_f64().unwrap() >= parsed["p50_ms"].as_f64().unwrap());
}
