//! Cross-crate integration: the full paper pipeline from dataset assembly
//! through estimation to metrics.

use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{improvement, run_method, DatasetInput};
use city_od::eval::metrics::evaluate_tod;
use city_od::eval::{compare, default_methods};
use city_od::ovs_core::OvsConfig;

fn tiny_spec() -> DatasetSpec {
    DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 4,
        demand_scale: 0.15,
        seed: 5,
    }
}

fn tiny_ovs() -> OvsConfig {
    OvsConfig::tiny()
}

#[test]
fn full_comparison_produces_finite_results_for_every_method() {
    let ds = Dataset::synthetic(TodPattern::Gaussian, &tiny_spec()).unwrap();
    let results = compare(&ds, tiny_ovs(), 5, false).unwrap();
    assert_eq!(results.len(), 7, "six baselines + OVS");
    for r in &results {
        assert!(r.rmse.is_finite(), "{}", r.name);
        assert!(r.seconds >= 0.0);
    }
    assert_eq!(results.last().unwrap().name, "OVS");
    assert!(improvement(&results).is_some());
}

#[test]
fn metrics_rank_better_estimates_higher() {
    let ds = Dataset::synthetic(TodPattern::Random, &tiny_spec()).unwrap();
    // Ground truth beats a scaled copy beats zeros.
    let exact = evaluate_tod(&ds, &ds.groundtruth_tod).unwrap();
    let mut scaled = ds.groundtruth_tod.clone();
    scaled.scale(1.3);
    let off = evaluate_tod(&ds, &scaled).unwrap();
    let zero = evaluate_tod(
        &ds,
        &city_od::roadnet::TodTensor::zeros(ds.n_od(), ds.n_intervals()),
    )
    .unwrap();
    assert_eq!(exact.tod, 0.0);
    assert!(off.tod > 0.0 && off.tod < zero.tod);
}

#[test]
fn city_pipeline_runs_end_to_end_with_aux_data() {
    let ds = Dataset::city(city_od::roadnet::presets::state_college(), &tiny_spec()).unwrap();
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, true);
    assert!(input.census_totals.is_some());
    assert!(input.cameras.is_some());
    let mut ovs =
        city_od::ovs_core::trainer::OvsEstimator::new(tiny_ovs().with_aux_weights(0.1, 0.1));
    let (res, tod) = run_method(&mut ovs, &ds, &input).unwrap();
    assert!(res.rmse.is_finite());
    assert!(tod.is_non_negative());
}

#[test]
fn method_lineup_is_stable() {
    let names: Vec<String> = default_methods(tiny_ovs(), 0)
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    assert_eq!(
        names,
        ["Gravity", "Genetic", "GLS", "EM", "NN", "LSTM", "OVS"]
    );
}
