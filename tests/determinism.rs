//! End-to-end determinism: every stage of the pipeline is reproducible
//! from its seeds — a hard requirement for the recorded EXPERIMENTS.md
//! numbers to be re-derivable.

use city_od::datagen::dataset::{simulate, DatasetSpec};
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::ovs_core::trainer::OvsEstimator;
use city_od::ovs_core::OvsConfig;

fn spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        t: 3,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.15,
        seed,
    }
}

#[test]
fn dataset_assembly_is_deterministic() {
    let a = Dataset::synthetic(TodPattern::Poisson, &spec(9)).unwrap();
    let b = Dataset::synthetic(TodPattern::Poisson, &spec(9)).unwrap();
    assert_eq!(a.groundtruth_tod, b.groundtruth_tod);
    assert_eq!(a.observed_speed, b.observed_speed);
    assert_eq!(a.census.as_slice(), b.census.as_slice());
    let c = Dataset::synthetic(TodPattern::Poisson, &spec(10)).unwrap();
    assert_ne!(a.groundtruth_tod, c.groundtruth_tod);
}

#[test]
fn simulation_replay_matches_dataset() {
    let ds = Dataset::synthetic(TodPattern::Increasing, &spec(4)).unwrap();
    for sample in &ds.train {
        let out = simulate(&ds.net, &ds.ods, &ds.sim_config, &sample.tod).unwrap();
        assert_eq!(out.volume, sample.volume);
        assert_eq!(out.speed, sample.speed);
    }
}

#[test]
fn ovs_estimate_is_deterministic() {
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec(2)).unwrap();
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let run = || {
        let mut est = OvsEstimator::new(OvsConfig::tiny().with_seed(3));
        run_method(&mut est, &ds, &input).unwrap().1
    };
    assert_eq!(run(), run());
}

#[test]
fn baselines_are_deterministic() {
    let ds = Dataset::synthetic(TodPattern::Random, &spec(6)).unwrap();
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    for maker in [0usize, 1, 2, 3, 4, 5] {
        let run = || {
            let mut methods = city_od::baselines::all_baselines(11);
            methods[maker].estimate(&input).unwrap()
        };
        assert_eq!(run(), run(), "baseline {maker} must be deterministic");
    }
}
