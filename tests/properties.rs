//! Property-based tests over the cross-crate invariants listed in
//! DESIGN.md §6.

use city_od::roadnet::{OdPairId, OdSet, TodTensor};
use city_od::simulator::{SimConfig, Simulation};
use proptest::prelude::*;

fn grid_net() -> city_od::roadnet::RoadNetwork {
    city_od::roadnet::presets::synthetic_grid()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Simulator conservation: spawned = arrived + still active; volumes
    /// non-negative; speeds within [0, limit].
    #[test]
    fn simulator_invariants(cells in proptest::collection::vec(0.0f64..6.0, 72 * 2), seed in 0u64..50) {
        let net = grid_net();
        let ods = OdSet::all_pairs(&net);
        let tod = TodTensor::from_data(ods.len(), 2, cells).unwrap();
        let cfg = SimConfig::default()
            .with_intervals(2)
            .with_interval_s(120.0)
            .with_seed(seed);
        let out = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
        prop_assert!(out.stats.is_conserved());
        prop_assert!(out.volume.is_non_negative());
        for l in net.links() {
            for t in 0..2 {
                let v = out.speed.get(l.id, t);
                prop_assert!(v >= 0.0 && v <= l.speed_limit_mps + 1e-9);
            }
        }
    }

    /// RMSE is a metric-like score: zero iff identical inputs (here:
    /// identity), symmetric, and monotone under growing perturbation.
    #[test]
    fn rmse_properties(cells in proptest::collection::vec(0.0f64..20.0, 8 * 3), eps in 0.1f64..5.0) {
        let a = TodTensor::from_data(8, 3, cells).unwrap();
        prop_assert_eq!(a.rmse(&a).unwrap(), 0.0);
        let mut b = a.clone();
        b.map_inplace(|v| v + eps);
        let mut c = a.clone();
        c.map_inplace(|v| v + 2.0 * eps);
        let ab = a.rmse(&b).unwrap();
        let ba = b.rmse(&a).unwrap();
        let ac = a.rmse(&c).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((ab - eps).abs() < 1e-9, "uniform shift: rmse == shift");
        prop_assert!(ac > ab);
    }

    /// Tensor row/interval accounting: totals decompose consistently.
    #[test]
    fn tensor_totals_decompose(cells in proptest::collection::vec(0.0f64..50.0, 6 * 4)) {
        let t = TodTensor::from_data(6, 4, cells).unwrap();
        let row_sum: f64 = (0..6).map(|i| t.row_total(OdPairId(i))).sum();
        let col_sum: f64 = t.interval_totals().iter().sum();
        prop_assert!((row_sum - t.total()).abs() < 1e-9);
        prop_assert!((col_sum - t.total()).abs() < 1e-9);
    }
}

/// Doubling demand cannot raise the network-wide mean speed (statistical
/// congestion monotonicity; deterministic seeds make this exact here).
#[test]
fn congestion_monotonicity() {
    let net = grid_net();
    let ods = OdSet::all_pairs(&net);
    let cfg = SimConfig::default()
        .with_intervals(3)
        .with_interval_s(300.0);
    let mean_speed = |scale: f64| {
        let tod = TodTensor::filled(ods.len(), 3, scale);
        let out = Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .run(&tod)
            .unwrap();
        out.speed.total() / out.speed.as_slice().len() as f64
    };
    let light = mean_speed(1.0);
    let medium = mean_speed(8.0);
    let heavy = mean_speed(25.0);
    assert!(medium <= light + 1e-9, "{medium} vs {light}");
    assert!(heavy < medium, "{heavy} vs {medium}");
}
