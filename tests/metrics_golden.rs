//! Golden-file regression test for the observability layer.
//!
//! A fixed-seed end-to-end run (simulator pass + OVS training + two
//! harness evaluations) records into a private registry whose *stable*
//! JSON export is byte-compared against `tests/golden/metrics.json`.
//! This pins three contracts at once:
//!
//! 1. the metric *schema* (names, labels, bucket boundaries) — renaming
//!    a counter or changing histogram buckets fails the diff;
//! 2. numeric *reproducibility* — conservation counters, loss curves,
//!    and RMSE residuals must come out identical on every run;
//! 3. *thread-invariance* — the same export must be byte-identical
//!    whether the pipeline runs on one worker or four (the CI
//!    `metrics-golden` job runs this file under both `CITYOD_THREADS`
//!    settings).
//!
//! To re-bless after an intentional metrics change:
//!
//! ```text
//! CITYOD_BLESS=1 cargo test --test metrics_golden
//! ```

use city_od::baselines::GravityEstimator;
use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method_obs, DatasetInput};
use city_od::obs;
use city_od::ovs_core::trainer::OvsEstimator;
use city_od::ovs_core::OvsConfig;
use city_od::roadnet::parallel::Parallelism;
use city_od::simulator::engine::Simulation;

const GOLDEN_PATH: &str = "tests/golden/metrics.json";

fn spec() -> DatasetSpec {
    DatasetSpec {
        t: 3,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.1,
        seed: 4,
    }
}

/// Runs the fixed-seed pipeline on `threads` workers, recording into a
/// fresh registry, and returns the stable (timing-free) JSON export.
fn stable_export(threads: usize) -> String {
    let registry = obs::Registry::new();
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec()).expect("synthetic dataset");
    Parallelism::Threads(threads).run(|| {
        // Simulator: one instrumented replay of the ground-truth TOD.
        let mut sim = Simulation::new(&ds.net, &ds.ods, ds.sim_config.clone())
            .expect("simulation construction")
            .with_registry(registry.clone());
        sim.run(&ds.groundtruth_tod).expect("simulation run");

        // Harness: one baseline and the OVS estimator (trainer metrics
        // flow through the estimator's registry).
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, false);
        let mut gravity = GravityEstimator::new();
        run_method_obs(&registry, &mut gravity, &ds, &input).expect("gravity run");
        let mut ovs =
            OvsEstimator::new(OvsConfig::tiny().with_seed(7)).with_registry(registry.clone());
        run_method_obs(&registry, &mut ovs, &ds, &input).expect("ovs run");
    });
    registry.to_json_stable()
}

#[test]
fn stable_metrics_match_golden_file() {
    let got = stable_export(1);
    if std::env::var_os("CITYOD_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run `CITYOD_BLESS=1 cargo test --test metrics_golden`");
    assert_eq!(
        got, want,
        "stable metrics drifted from {GOLDEN_PATH}; if the change is \
         intentional, re-bless with CITYOD_BLESS=1"
    );
}

#[test]
fn stable_metrics_are_thread_invariant() {
    assert_eq!(
        stable_export(1),
        stable_export(4),
        "stable export must be byte-identical across worker counts"
    );
}

#[test]
fn golden_file_covers_all_subsystems() {
    let got = stable_export(1);
    for name in [
        "sim_spawned_total",
        "sim_conservation_violations_total",
        "trainer_fit_final_loss",
        // Label quotes appear JSON-escaped inside the exported name string.
        "eval_rmse_tod{method=\\\"Gravity\\\"}",
        "eval_rmse_tod{method=\\\"OVS\\\"}",
    ] {
        assert!(got.contains(name), "stable export is missing {name}");
    }
}
