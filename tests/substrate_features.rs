//! Integration coverage of the substrate extensions: taxi sampling,
//! vehicle classes, actuated signals, exports, multi-route OVS.

use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::taxi::{record_all_trips, trips_to_tod};
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::ovs_core::trainer::OvsEstimator;
use city_od::ovs_core::OvsConfig;
use city_od::roadnet::export::{to_dot, to_geojson};
use city_od::roadnet::presets::synthetic_grid;
use city_od::roadnet::stats::network_stats;
use city_od::roadnet::{OdSet, TodTensor};
use city_od::simulator::{SignalControl, SimConfig, Simulation};

fn spec() -> DatasetSpec {
    DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 4,
        demand_scale: 0.15,
        seed: 6,
    }
}

#[test]
fn taxi_pipeline_reconstructs_demand_from_trips() {
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec()).unwrap();
    let trips = record_all_trips(&ds.net, &ds.ods, &ds.sim_config, &ds.groundtruth_tod).unwrap();
    let rebuilt = trips_to_tod(
        &trips,
        ds.n_od(),
        ds.n_intervals(),
        ds.sim_config.ticks_per_interval(),
        1.0,
    )
    .unwrap();
    let err = ds.groundtruth_tod.rmse(&rebuilt).unwrap();
    let zero_err = ds
        .groundtruth_tod
        .rmse(&TodTensor::zeros(ds.n_od(), ds.n_intervals()))
        .unwrap();
    assert!(err < zero_err * 0.3, "trip records carry the demand: {err}");
}

#[test]
fn mixed_fleet_and_actuated_signals_compose() {
    let net = synthetic_grid();
    let ods = OdSet::all_pairs(&net);
    let tod = TodTensor::filled(ods.len(), 2, 3.0);
    let cfg = SimConfig {
        truck_fraction: 0.3,
        signal_control: SignalControl::Actuated,
        ..SimConfig::default()
            .with_intervals(2)
            .with_interval_s(120.0)
    };
    let out = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
    assert!(out.stats.is_conserved());
    assert!(out.speed.is_finite());
    assert!(out.occupancy.is_non_negative());
}

#[test]
fn exports_and_stats_agree_with_the_network() {
    let net = synthetic_grid();
    let stats = network_stats(&net);
    let dot = to_dot(&net);
    let geo = to_geojson(&net, None);
    assert_eq!(dot.matches(" -> ").count(), stats.links);
    let parsed: serde_json::Value = serde_json::from_str(&geo).unwrap();
    assert_eq!(parsed["features"].as_array().unwrap().len(), stats.links);
}

#[test]
fn multi_route_ovs_estimates_end_to_end() {
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec()).unwrap();
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let mut cfg = OvsConfig::tiny();
    cfg.k_routes = 2;
    let mut est = OvsEstimator::new(cfg);
    let (res, tod) = run_method(&mut est, &ds, &input).unwrap();
    assert!(res.rmse.is_finite());
    assert!(tod.is_non_negative());
}

#[test]
fn gru_backed_ovs_estimates_end_to_end() {
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec()).unwrap();
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let mut cfg = OvsConfig::tiny();
    cfg.rnn_kind = city_od::ovs_core::config::RnnKind::Gru;
    let mut est = OvsEstimator::new(cfg);
    let (res, _) = run_method(&mut est, &ds, &input).unwrap();
    assert!(res.rmse.is_finite());
}
