//! Integration tests for the `cityod` checkpoint subcommands and metrics
//! export, driving the real binary via `CARGO_BIN_EXE_cityod`.
//!
//! Every invocation sets `CITYOD_OVS_TINY=1` so CLI-driven training uses
//! `OvsConfig::tiny()` — the whole battery stays in the sub-second range
//! per command even in debug builds. Each test owns its artifact
//! directories under `std::env::temp_dir()`, so the suite is safe to run
//! in parallel.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Dataset flags small enough for debug-build training runs.
const TINY_FLAGS: &[&str] = &["--t", "2", "--train", "2", "--demand", "0.1", "--seed", "5"];

struct TempDirs {
    dirs: Vec<PathBuf>,
}

impl TempDirs {
    fn new(tag: &str, n: usize) -> Self {
        let dirs: Vec<PathBuf> = (0..n)
            .map(|i| {
                let d = std::env::temp_dir()
                    .join(format!("cityod-cli-test-{tag}-{i}-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&d);
                d
            })
            .collect();
        Self { dirs }
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        for d in &self.dirs {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}

/// Runs the cityod binary with `CITYOD_OVS_TINY=1` and extra env vars.
fn cityod(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cityod"));
    cmd.args(args).env("CITYOD_OVS_TINY", "1");
    // A stray developer setting must not redirect the tests' stores.
    cmd.env_remove("CITYOD_ARTIFACTS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("cityod binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?}):\n{}",
        out.status,
        stderr(out)
    );
}

fn save(name: &str, store: &Path, versioned: bool) -> Output {
    let store = store.to_str().unwrap();
    let mut args = vec!["checkpoint", "save", "grid3x3", name];
    args.extend_from_slice(TINY_FLAGS);
    args.extend_from_slice(&["--store", store]);
    if versioned {
        args.push("--versioned");
    }
    cityod(&args, &[])
}

#[test]
fn save_list_inspect_verify_roundtrip() {
    let tmp = TempDirs::new("roundtrip", 1);
    let store = &tmp.dirs[0];
    let st = store.to_str().unwrap();

    let out = save("demo", store, false);
    assert_success(&out, "checkpoint save");
    assert!(stdout(&out).contains("artifact 'demo'"));
    assert!(store.join("demo.ckpt").is_file(), "ckpt file written");
    assert!(store.join("demo.meta.json").is_file(), "provenance written");

    let out = cityod(&["checkpoint", "list", "--store", st], &[]);
    assert_success(&out, "checkpoint list");
    let listing = stdout(&out);
    assert!(
        listing.contains("demo"),
        "list shows the artifact:\n{listing}"
    );
    assert!(listing.contains("# 1 artifact(s)"));

    let out = cityod(&["checkpoint", "inspect", "demo", "--store", st], &[]);
    assert_success(&out, "checkpoint inspect");
    let info = stdout(&out);
    assert!(info.contains("name:     demo"));
    assert!(info.contains("seed:     5"), "provenance seed:\n{info}");
    assert!(info.contains("fit:"), "per-stage loss traces:\n{info}");
    assert!(info.contains("cityod checkpoint save grid3x3"));

    let out = cityod(&["checkpoint", "verify", "demo", "--store", st], &[]);
    assert_success(&out, "checkpoint verify");
    assert!(stdout(&out).contains("demo: OK"));
}

#[test]
fn gc_keeps_newest_versions() {
    let tmp = TempDirs::new("gc", 1);
    let store = &tmp.dirs[0];
    let st = store.to_str().unwrap();

    for expected in ["fam-v001", "fam-v002"] {
        let out = save("fam", store, true);
        assert_success(&out, "versioned save");
        assert!(
            stdout(&out).contains(&format!("artifact '{expected}'")),
            "versioned save assigns {expected}:\n{}",
            stdout(&out)
        );
    }

    let out = cityod(
        &["checkpoint", "gc", "fam", "--keep", "1", "--store", st],
        &[],
    );
    assert_success(&out, "checkpoint gc");
    assert!(stdout(&out).contains("removed fam-v001"));
    assert!(!store.join("fam-v001.ckpt").exists(), "old version removed");
    assert!(store.join("fam-v002.ckpt").is_file(), "newest version kept");
}

#[test]
fn store_flag_beats_artifacts_env() {
    let tmp = TempDirs::new("precedence", 2);
    let (env_dir, flag_dir) = (&tmp.dirs[0], &tmp.dirs[1]);

    // --store wins over CITYOD_ARTIFACTS: the artifact must land in the
    // flag directory, and the env directory must not gain a .ckpt.
    let st = flag_dir.to_str().unwrap();
    let mut args = vec!["checkpoint", "save", "grid3x3", "where"];
    args.extend_from_slice(TINY_FLAGS);
    args.extend_from_slice(&["--store", st]);
    let out = cityod(&args, &[("CITYOD_ARTIFACTS", env_dir.to_str().unwrap())]);
    assert_success(&out, "save with --store and CITYOD_ARTIFACTS");
    assert!(flag_dir.join("where.ckpt").is_file());
    assert!(!env_dir.join("where.ckpt").exists());

    // Without the flag, CITYOD_ARTIFACTS is honoured.
    let out = cityod(
        &["checkpoint", "list"],
        &[("CITYOD_ARTIFACTS", flag_dir.to_str().unwrap())],
    );
    assert_success(&out, "list via CITYOD_ARTIFACTS");
    assert!(stdout(&out).contains("where"));
    assert!(stdout(&out).contains("# 1 artifact(s)"));
}

#[test]
fn verify_detects_corruption() {
    let tmp = TempDirs::new("corrupt", 1);
    let store = &tmp.dirs[0];
    let st = store.to_str().unwrap();

    let out = save("victim", store, false);
    assert_success(&out, "checkpoint save");

    // Flip one payload byte in the middle of the .ckpt file.
    let path = store.join("victim.ckpt");
    let mut bytes = std::fs::read(&path).expect("read ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, bytes).expect("write corrupted ckpt");

    let out = cityod(&["checkpoint", "verify", "victim", "--store", st], &[]);
    assert!(!out.status.success(), "verify must fail on corruption");
    assert!(
        stderr(&out).contains("CORRUPT"),
        "verify names the corruption:\n{}",
        stderr(&out)
    );

    // verify-all reports the same corruption and exits non-zero.
    let out = cityod(&["checkpoint", "verify", "--store", st], &[]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("victim: CORRUPT"));
}

#[test]
fn recover_metrics_export_is_valid_json_with_all_subsystems() {
    let tmp = TempDirs::new("metrics", 1);
    let path = tmp.dirs[0].join("metrics.json");
    std::fs::create_dir_all(&tmp.dirs[0]).unwrap();

    let mut args = vec!["recover", "grid3x3", "--method", "ovs"];
    args.extend_from_slice(TINY_FLAGS);
    let path_s = path.to_str().unwrap().to_string();
    args.extend_from_slice(&["--metrics", &path_s]);
    let out = cityod(&args, &[]);
    assert_success(&out, "recover --metrics");

    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("export is valid JSON");
    assert_eq!(json["format_version"], serde_json::Value::UInt(1));
    let names: Vec<&str> = json["metrics"]
        .as_array()
        .expect("metrics array")
        .iter()
        .filter_map(|m| m["name"].as_str())
        .collect();
    for required in [
        "sim_spawned_total", // simulator conservation counters
        "sim_conservation_violations_total",
        "trainer_fit_final_loss", // per-stage trainer losses
        "trainer_v2s_steps_total",
        "eval_seconds{method=\"OVS\"}", // per-estimator eval timings
        "eval_rmse_tod{method=\"OVS\"}",
    ] {
        assert!(
            names.contains(&required),
            "export missing {required}; got {names:?}"
        );
    }
}

#[test]
fn stable_metrics_export_is_identical_across_thread_counts() {
    let tmp = TempDirs::new("stable", 1);
    std::fs::create_dir_all(&tmp.dirs[0]).unwrap();

    let export = |threads: &str, file: &str| {
        let path = tmp.dirs[0].join(file);
        let path_s = path.to_str().unwrap().to_string();
        let mut args = vec!["recover", "grid3x3", "--method", "ovs"];
        args.extend_from_slice(TINY_FLAGS);
        let threads_args = ["--threads", threads, "--metrics-stable", &path_s];
        args.extend_from_slice(&threads_args);
        let out = cityod(&args, &[]);
        assert_success(&out, "recover --metrics-stable");
        std::fs::read(&path).expect("stable metrics file written")
    };

    let one = export("1", "stable-1.json");
    let four = export("4", "stable-4.json");
    assert_eq!(
        one, four,
        "stable export must be byte-identical for --threads 1 and 4"
    );
}
