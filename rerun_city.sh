#!/bin/bash
set -u
for bin in table06_real table07_runtime table10_casestudy fig10_census fig12_hangzhou fig13_football robustness_seeds; do
  echo "=== $bin ==="
  CITYOD_PROFILE=quick cargo run --release -p bench --bin "$bin" 2>&1 | tee "results/logs/$bin.txt"
done
