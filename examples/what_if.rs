//! What-if analysis — the paper's motivating application (§I): once the
//! TOD is recovered, the rebuilt traffic system can answer questions
//! prediction-from-history cannot, e.g. "what happens to travel times if
//! these roads close for construction?".
//!
//! We recover the TOD from speed, then re-simulate it under a road-work
//! scenario that never occurred in the data.
//!
//! Run: `cargo run --release --example what_if`

use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::ovs_core::trainer::OvsEstimator;
use city_od::ovs_core::OvsConfig;
use city_od::roadnet::LinkId;
use city_od::simulator::{LinkDisruption, Scenario, Simulation};

fn main() {
    let spec = DatasetSpec {
        t: 6,
        interval_s: 300.0,
        train_samples: 6,
        demand_scale: 0.15,
        seed: 3,
    };
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec).expect("dataset builds");

    // 1. Recover the demand from the observed speeds.
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let mut ovs = OvsEstimator::new(OvsConfig {
        lstm_hidden: 16,
        ..OvsConfig::default()
    });
    let (res, recovered) = run_method(&mut ovs, &ds, &input).expect("OVS runs");
    println!(
        "recovered TOD (RMSE {:.2}) — now asking: what if we close two roads?",
        res.rmse.tod
    );

    // 2. Re-simulate the recovered demand under road work on two central
    //    links that was never present in the observation.
    let closures = vec![
        LinkDisruption::road_work(LinkId(4)),
        LinkDisruption::road_work(LinkId(9)),
    ];
    let baseline = Simulation::new(&ds.net, &ds.ods, ds.sim_config.clone())
        .expect("sim builds")
        .run(&recovered)
        .expect("sim runs");
    let what_if = Simulation::with_scenario(
        &ds.net,
        &ds.ods,
        ds.sim_config.clone(),
        Scenario::with_disruptions(closures),
    )
    .expect("sim builds")
    .run(&recovered)
    .expect("sim runs");

    let mean = |t: &city_od::roadnet::LinkTensor| t.total() / t.as_slice().len() as f64;
    println!("\n                      today      with road work");
    println!(
        "mean link speed   {:>8.2} m/s {:>10.2} m/s",
        mean(&baseline.speed),
        mean(&what_if.speed)
    );
    println!(
        "mean travel time  {:>8.0} s   {:>10.0} s",
        baseline.stats.mean_travel_time_s(),
        what_if.stats.mean_travel_time_s()
    );
    let delay = what_if.stats.mean_travel_time_s() - baseline.stats.mean_travel_time_s();
    println!("\npredicted impact: +{delay:.0}s per trip — computable only because the\nTOD (not just historical speed) was recovered.");
}
