//! Drive the microscopic traffic simulator directly: morning rush hour on
//! the Manhattan preset, with a link-level congestion report.
//!
//! Run: `cargo run --release --example simulate_city`

use city_od::datagen::city::{city_groundtruth_tod, synthesize_populations, CityDemandSpec};
use city_od::roadnet::presets::manhattan;
use city_od::roadnet::OdSet;
use city_od::simulator::{SimConfig, Simulation};
use neural::rng::Rng64;

fn main() {
    let preset = manhattan();
    let mut net = preset.network;
    let mut rng = Rng64::new(1);
    synthesize_populations(&mut net, &mut rng);
    let ods = OdSet::all_pairs(&net);
    println!(
        "network: {} — {} intersections, {} roads, {} regions, {} OD pairs",
        preset.name,
        net.num_nodes(),
        net.num_roads(),
        net.num_regions(),
        ods.len()
    );

    // Commuter demand over a 2-hour morning window.
    let t = 8;
    let tod = city_groundtruth_tod(
        &net,
        &ods,
        t,
        &CityDemandSpec {
            peak_trips_per_interval: 12.0,
            seed: 1,
            noise_sigma: 0.1,
            ..CityDemandSpec::default()
        },
    );
    println!("demand: {:.0} trips over {t} intervals", tod.total());

    let cfg = SimConfig::default()
        .with_intervals(t)
        .with_interval_s(600.0);
    let out = Simulation::new(&net, &ods, cfg)
        .expect("simulation builds")
        .run(&tod)
        .expect("simulation runs");

    println!(
        "spawned {} vehicles, {} arrived, mean travel time {:.0}s",
        out.stats.spawned,
        out.stats.arrived,
        out.stats.mean_travel_time_s()
    );

    // Per-interval congestion profile.
    println!("\ninterval   mean speed (m/s)   total entries");
    for ti in 0..t {
        let mut speed_sum = 0.0;
        let mut vol_sum = 0.0;
        for l in net.links() {
            speed_sum += out.speed.get(l.id, ti);
            vol_sum += out.volume.get(l.id, ti);
        }
        let mean_speed = speed_sum / net.num_links() as f64;
        println!("{ti:>8}   {mean_speed:>16.2}   {vol_sum:>13.0}");
    }

    // The five most congested links at the peak.
    let peak = t / 2;
    let mut ranked: Vec<_> = net
        .links()
        .iter()
        .map(|l| (l.id, out.speed.get(l.id, peak) / l.speed_limit_mps))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("\nmost congested links at interval {peak} (speed / limit):");
    for (lid, ratio) in ranked.iter().take(5) {
        let l = &net.links()[lid.index()];
        println!("  {lid}: {} -> {}  {:.0}%", l.from, l.to, ratio * 100.0);
    }
}
