//! Head-to-head: every estimator in the workspace (six baselines + OVS)
//! recovering the same hidden city demand from speed observations.
//!
//! Run: `cargo run --release --example recover_od`

use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::Dataset;
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::eval::{default_methods, tables};
use city_od::ovs_core::OvsConfig;
use city_od::roadnet::presets::state_college;

fn main() {
    let spec = DatasetSpec {
        t: 6,
        interval_s: 300.0,
        train_samples: 6,
        demand_scale: 0.15,
        seed: 7,
    };
    let ds = Dataset::city(state_college(), &spec).expect("dataset builds");
    println!(
        "dataset: {} — hidden demand {:.0} trips; estimators see speed only\n",
        ds.name,
        ds.groundtruth_tod.total()
    );

    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let ovs_cfg = OvsConfig {
        lstm_hidden: 16,
        ..OvsConfig::default()
    };
    let mut results = Vec::new();
    for mut method in default_methods(ovs_cfg, 7) {
        let (res, _) = run_method(method.as_mut(), &ds, &input).expect("method runs");
        results.push(res);
    }
    println!("{}", tables::render_comparison(&ds.name, &results));
}
