//! Warm start: train OVS on one city, checkpoint it, and fine-tune the
//! saved model on a *different* demand draw of the same network — paying
//! only the test-time fit instead of the full three-stage pipeline.
//!
//! Prints the gradient-step and wall-clock reduction, and shows that the
//! warm-started recovery stays competitive with the cold one.
//!
//! Run: `cargo run --release --example warm_start`

use city_od::checkpoint::format::Artifact;
use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::DatasetInput;
use city_od::eval::metrics::evaluate_tod;
use city_od::ovs_core::estimator::matrix_to_tod;
use city_od::ovs_core::trainer::OvsTrainer;
use city_od::ovs_core::{artifact, OvsConfig};
use std::time::Instant;

fn main() {
    let cfg = OvsConfig {
        lstm_hidden: 16,
        ..OvsConfig::default()
    };
    let spec = DatasetSpec {
        t: 6,
        interval_s: 300.0,
        train_samples: 6,
        demand_scale: 0.15,
        seed: 42,
    };

    // 1. Cold run on the source dataset: all three stages.
    let source = Dataset::synthetic(TodPattern::Gaussian, &spec).expect("source dataset");
    let source_owned = DatasetInput::new(&source);
    let source_input = source_owned.input(&source, false);
    let trainer = OvsTrainer::new(cfg.clone());
    let t0 = Instant::now();
    let (mut model, cold_report) = trainer.run(&source_input).expect("cold training");
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_steps = cold_report.v2s_losses.len()
        + cold_report.tod2v_losses.len()
        + cold_report.fit_losses.len();
    println!(
        "cold run   : {} steps ({} v2s + {} tod2v + {} fit) in {:.1}s",
        cold_steps,
        cold_report.v2s_losses.len(),
        cold_report.tod2v_losses.len(),
        cold_report.fit_losses.len(),
        cold_secs
    );

    // 2. Persist the trained model as a checkpoint artifact (in memory
    //    here; `cityod checkpoint save` writes the same bytes to a store).
    let bytes = artifact::save_model(&mut model, None)
        .expect("model serialises")
        .to_bytes();
    println!("checkpoint : {} bytes, CRC-checked sections", bytes.len());

    // 3. A new problem on the same network: different demand draw, so the
    //    learned physics (V2S, TOD2V) transfer but the TOD must be re-fit.
    let target = Dataset::synthetic(TodPattern::Gaussian, &DatasetSpec { seed: 1042, ..spec })
        .expect("target dataset");
    let target_owned = DatasetInput::new(&target);
    let target_input = target_owned.input(&target, false);

    // 4. Warm start: load the artifact, run only the test-time fit.
    let parsed = Artifact::from_bytes(&bytes).expect("artifact parses");
    let weights = artifact::model_weights(&parsed, &cfg).expect("structure matches");
    let t1 = Instant::now();
    let (mut warm_model, warm_report) = trainer
        .run_warm(&target_input, &weights)
        .expect("warm training");
    let warm_secs = t1.elapsed().as_secs_f64();
    let warm_steps = warm_report.fit_losses.len();
    println!(
        "warm run   : {} steps (fit only) in {:.1}s",
        warm_steps, warm_secs
    );
    println!(
        "saved      : {:.0}% of gradient steps, {:.1}x wall-clock",
        100.0 * (1.0 - warm_steps as f64 / cold_steps as f64),
        cold_secs / warm_secs.max(1e-9)
    );

    // 5. The warm-started recovery is still a real recovery.
    let recovered = matrix_to_tod(&warm_model.recovered_tod());
    let rmse = evaluate_tod(&target, &recovered).expect("evaluates");
    println!(
        "warm RMSE  : tod {:.2} | volume {:.2} | speed {:.3}",
        rmse.tod, rmse.volume, rmse.speed
    );
}
