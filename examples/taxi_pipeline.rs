//! The paper's data-acquisition step (§V-B), end to end: simulate a full
//! vehicle population, observe only a taxi-fleet sample of it, scale the
//! sampled trips back up, and measure how much TOD fidelity the sampling
//! costs at different fleet sizes.
//!
//! Run: `cargo run --release --example taxi_pipeline`

use city_od::datagen::taxi::{record_all_trips, sample_taxi_fleet, trips_to_tod};
use city_od::datagen::TodPattern;
use city_od::roadnet::presets::synthetic_grid;
use city_od::roadnet::OdSet;
use city_od::simulator::SimConfig;
use neural::rng::Rng64;

fn main() {
    let net = synthetic_grid();
    let ods = OdSet::all_pairs(&net);
    let cfg = SimConfig::default()
        .with_intervals(4)
        .with_interval_s(300.0);
    let mut rng = Rng64::new(5);
    let tod = TodPattern::Gaussian.generate(ods.len(), 4, 5.0, 0.2, &mut rng);
    println!(
        "ground truth: {:.0} trips over {} OD pairs x {} intervals",
        tod.total(),
        ods.len(),
        4
    );

    let trips = record_all_trips(&net, &ods, &cfg, &tod).expect("simulation runs");
    println!("simulated {} individual vehicle trips\n", trips.len());

    println!("taxi scale   fleet size   rebuilt-TOD RMSE");
    for &scale in &[1.0, 2.0, 5.0, 10.0, 20.0] {
        let mut rng = Rng64::new(9);
        let fleet = sample_taxi_fleet(&trips, scale, &mut rng);
        let rebuilt =
            trips_to_tod(&fleet, ods.len(), 4, cfg.ticks_per_interval(), scale).expect("rebuild");
        let err = tod.rmse(&rebuilt).expect("same shape");
        println!("{scale:>10.0} {:>12} {:>18.2}", fleet.len(), err);
    }
    println!("\nsparser fleets reconstruct worse — the sampling error the paper's");
    println!("'scale with city-specific factor' step inherits from its taxi data.");
}
