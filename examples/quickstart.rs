//! Quickstart: recover a hidden TOD from road speeds in ~a minute.
//!
//! Builds the paper's 3x3 synthetic grid, hides a Gaussian demand pattern
//! behind simulated speed observations, trains OVS, and prints how well
//! the TOD was recovered.
//!
//! Run: `cargo run --release --example quickstart`

use city_od::datagen::dataset::DatasetSpec;
use city_od::datagen::{Dataset, TodPattern};
use city_od::eval::harness::{run_method, DatasetInput};
use city_od::ovs_core::trainer::OvsEstimator;
use city_od::ovs_core::OvsConfig;

fn main() {
    // 1. A dataset: 3x3 grid, 6 ten-minute intervals, Gaussian demand.
    let spec = DatasetSpec {
        t: 6,
        interval_s: 300.0,
        train_samples: 6,
        demand_scale: 0.15,
        seed: 42,
    };
    let ds = Dataset::synthetic(TodPattern::Gaussian, &spec).expect("dataset builds");
    println!(
        "dataset: {} ({} OD pairs, {} links, {} intervals)",
        ds.name,
        ds.n_od(),
        ds.n_links(),
        ds.n_intervals()
    );
    println!(
        "hidden ground-truth demand: {:.0} trips total",
        ds.groundtruth_tod.total()
    );

    // 2. The estimator sees only the observed speed (plus the generated
    //    training corpus) - never the ground truth.
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);

    // 3. Train OVS and recover the TOD.
    let mut ovs = OvsEstimator::new(OvsConfig {
        lstm_hidden: 16,
        ..OvsConfig::default()
    });
    let (result, recovered) = run_method(&mut ovs, &ds, &input).expect("OVS runs");

    println!(
        "recovered demand:           {:.0} trips total",
        recovered.total()
    );
    println!(
        "RMSE  tod {:.2} | volume {:.2} | speed {:.3}  (trained in {:.1}s)",
        result.rmse.tod, result.rmse.volume, result.rmse.speed, result.seconds
    );
    println!(
        "lower is better; compare against `cargo run --release -p bench --bin table08_synthetic`"
    );
}
