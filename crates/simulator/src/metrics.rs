//! Metric names the engine publishes through [`obs`].
//!
//! Names live here — not inline at the call sites — so the invariant
//! tests (`tests/invariants.rs`), the golden snapshot, and the engine can
//! never drift apart: all three reference the same constants.
//!
//! Counters ending in `_violations_total` are **invariant monitors**: the
//! engine checks the corresponding physical law every tick and counts
//! breaches. In a correct build every one of them is zero at all times;
//! the invariant test suite (and any production alerting built on these
//! metrics) asserts exactly that.

/// Counter: vehicles that entered the network.
pub const SPAWNED: &str = "sim_spawned_total";
/// Counter: vehicles that reached their destination.
pub const ARRIVED: &str = "sim_arrived_total";
/// Counter: trips dropped because no route existed.
pub const UNROUTABLE: &str = "sim_unroutable_total";
/// Counter: vehicles still en route when runs ended.
pub const ACTIVE_AT_END: &str = "sim_active_at_end_total";
/// Counter: trips still queued outside the network when runs ended.
pub const QUEUED_AT_END: &str = "sim_queued_at_end_total";
/// Counter: completed simulation runs.
pub const RUNS: &str = "sim_runs_total";
/// Counter: simulated ticks.
pub const TICKS: &str = "sim_ticks_total";

/// Counter: ticks where `spawned != arrived + in_network` (conservation
/// law breach — always zero in a correct engine).
pub const CONSERVATION_VIOLATIONS: &str = "sim_conservation_violations_total";
/// Counter: per-link, per-tick bookkeeping breaches of the transfer
/// phase (`len_after != len_before + entries - exits`) — always zero.
pub const LINK_CONSERVATION_VIOLATIONS: &str = "sim_link_conservation_violations_total";
/// Counter: finalized speed cells outside `[0, v_max]` — always zero.
pub const SPEED_CLAMP_VIOLATIONS: &str = "sim_speed_clamp_violations_total";
/// Counter: negative finalized volume cells — always zero.
pub const NEGATIVE_VOLUME_VIOLATIONS: &str = "sim_negative_volume_violations_total";

/// Counter: vehicles that crossed an intersection.
pub const TRANSFER_CROSSINGS: &str = "sim_transfer_crossings_total";
/// Counter: stop-line checks that found the signal red (at most one per
/// link-tick — a red light ends the link's transfer phase).
pub const SIGNAL_RED_TICKS: &str = "sim_signal_red_ticks_total";
/// Counter: stop-line checks that found the signal green (several
/// vehicles can cross one stop line in one tick).
pub const SIGNAL_GREEN_TICKS: &str = "sim_signal_green_ticks_total";
/// Counter: link-ticks where a transfer was blocked by a full
/// downstream link (spillback).
pub const SPILLBACK_BLOCKED_TICKS: &str = "sim_spillback_blocked_ticks_total";
/// Counter: link-ticks where the saturation-flow budget was exhausted.
pub const SATFLOW_BLOCKED_TICKS: &str = "sim_satflow_blocked_ticks_total";

/// Histogram: vehicles in the network, observed once per tick.
pub const STEP_IN_NETWORK: &str = "sim_step_in_network";
/// Histogram: finalized per-(link, interval) time-mean occupancy.
pub const LINK_OCCUPANCY: &str = "sim_link_occupancy";

/// Gauge: incidents active at the final simulated tick. Only published
/// when the run carried a non-empty incident schedule, so incident-free
/// pipelines (and their golden metric snapshots) are untouched.
pub const INCIDENTS_ACTIVE: &str = "sim_incidents_active";
/// Counter: sum over ticks of the number of active incidents (an
/// incident-tick is one incident active for one tick). Same gating as
/// [`INCIDENTS_ACTIVE`].
pub const INCIDENT_TICKS: &str = "sim_incident_ticks_total";

/// Timing gauge: wall-clock seconds of the most recent run.
pub const RUN_SECONDS: &str = "sim_run_seconds";
