//! Demand generation from a TOD tensor.
//!
//! The TOD tensor's cell `G[i, t]` gives the number of trips of OD pair `i`
//! departing during interval `t` (§III). The spawner spreads that count
//! uniformly over the interval's ticks with a fractional accumulator, so
//! non-integer trip counts (which the learned TOD generation module
//! produces) are honoured in expectation and the whole process stays
//! deterministic. Origin and destination nodes are drawn uniformly from the
//! corresponding regions with a seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{NodeId, OdPair, OdPairId, OdSet, Result, RoadNetwork, RoadnetError, TodTensor};

/// A trip ready to enter the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnRequest {
    /// OD pair index the trip belongs to.
    pub od: OdPairId,
    /// Concrete origin node inside the origin region.
    pub from: NodeId,
    /// Concrete destination node inside the destination region.
    pub to: NodeId,
}

/// Deterministic trip spawner.
#[derive(Debug)]
pub struct DemandSpawner {
    /// Fractional trips owed per OD pair.
    accumulators: Vec<f64>,
    /// Node choices per region, cloned from the network.
    region_nodes: Vec<Vec<NodeId>>,
    pairs: Vec<OdPair>,
    rng: StdRng,
}

impl DemandSpawner {
    /// Creates a spawner for `ods` over `net`.
    pub fn new(net: &RoadNetwork, ods: &OdSet, seed: u64) -> Result<Self> {
        ods.validate(net)?;
        let region_nodes = net.regions().iter().map(|r| r.nodes.clone()).collect();
        Ok(Self {
            accumulators: vec![0.0; ods.len()],
            region_nodes,
            pairs: ods.pairs().to_vec(),
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Advances one tick within interval `t` of `tod` and returns the trips
    /// that depart this tick. `ticks_per_interval` scales the rate.
    pub fn tick(
        &mut self,
        tod: &TodTensor,
        t: usize,
        ticks_per_interval: u64,
    ) -> Result<Vec<SpawnRequest>> {
        if tod.rows() != self.pairs.len() {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("{} OD rows", self.pairs.len()),
                actual: format!("{} rows", tod.rows()),
            });
        }
        if t >= tod.num_intervals() {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("interval < {}", tod.num_intervals()),
                actual: format!("interval {t}"),
            });
        }
        let mut out = Vec::new();
        let regions = &self.region_nodes;
        for (i, (acc, pair)) in self.accumulators.iter_mut().zip(&self.pairs).enumerate() {
            let count = tod.get(OdPairId(i), t).max(0.0);
            *acc += count / ticks_per_interval as f64;
            while *acc >= 1.0 {
                *acc -= 1.0;
                let from = pick(region_of(regions, pair.origin.index()), &mut self.rng);
                let to = pick(region_of(regions, pair.destination.index()), &mut self.rng);
                if let (Some(from), Some(to)) = (from, to) {
                    if from != to {
                        out.push(SpawnRequest {
                            od: OdPairId(i),
                            from,
                            to,
                        });
                    }
                }
            }
        }
        Ok(out)
    }
}

fn region_of(regions: &[Vec<NodeId>], r: usize) -> &[NodeId] {
    regions.get(r).map(Vec::as_slice).unwrap_or(&[])
}

fn pick(nodes: &[NodeId], rng: &mut StdRng) -> Option<NodeId> {
    if nodes.is_empty() {
        None
    } else {
        nodes.get(rng.gen_range(0..nodes.len())).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::presets::synthetic_grid;

    fn setup() -> (RoadNetwork, OdSet) {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        (net, ods)
    }

    #[test]
    fn spawn_counts_match_tod_in_expectation() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 5.0);
        let mut spawner = DemandSpawner::new(&net, &ods, 1).unwrap();
        let mut total = 0usize;
        for t in 0..2 {
            for _ in 0..10 {
                total += spawner.tick(&tod, t, 10).unwrap().len();
            }
        }
        // 5 trips x 2 intervals x N ods, minus at most N fractional carry
        let expect = 5.0 * 2.0 * ods.len() as f64;
        assert!((total as f64 - expect).abs() <= ods.len() as f64);
    }

    #[test]
    fn fractional_counts_accumulate() {
        let (net, ods) = setup();
        // 0.5 trips per interval: after 4 intervals each OD spawned 2.
        let tod = TodTensor::filled(ods.len(), 4, 0.5);
        let mut spawner = DemandSpawner::new(&net, &ods, 1).unwrap();
        let mut total = 0usize;
        for t in 0..4 {
            for _ in 0..10 {
                total += spawner.tick(&tod, t, 10).unwrap().len();
            }
        }
        assert_eq!(total, 2 * ods.len());
    }

    #[test]
    fn zero_and_negative_counts_spawn_nothing() {
        let (net, ods) = setup();
        let mut tod = TodTensor::zeros(ods.len(), 1);
        tod.set(OdPairId(0), 0, -5.0);
        let mut spawner = DemandSpawner::new(&net, &ods, 1).unwrap();
        for _ in 0..10 {
            assert!(spawner.tick(&tod, 0, 10).unwrap().is_empty());
        }
    }

    #[test]
    fn spawns_respect_regions() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 1, 10.0);
        let mut spawner = DemandSpawner::new(&net, &ods, 3).unwrap();
        for _ in 0..10 {
            for req in spawner.tick(&tod, 0, 10).unwrap() {
                let pair = ods.pair(req.od).unwrap();
                assert_eq!(net.node(req.from).unwrap().region, pair.origin);
                assert_eq!(net.node(req.to).unwrap().region, pair.destination);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        // A 4x4 grid with 2x2 regions: each region holds 4 nodes, so the
        // seed actually influences which node a trip starts from.
        let net = roadnet::generators::GridSpec::new(4, 4)
            .with_regions(2, 2)
            .build(0);
        let ods = OdSet::all_pairs(&net);
        let tod = TodTensor::filled(ods.len(), 1, 3.0);
        let run = |seed| {
            let mut s = DemandSpawner::new(&net, &ods, seed).unwrap();
            let mut all = Vec::new();
            for _ in 0..10 {
                all.extend(s.tick(&tod, 0, 10).unwrap());
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn shape_errors_reported() {
        let (net, ods) = setup();
        let mut spawner = DemandSpawner::new(&net, &ods, 0).unwrap();
        let bad = TodTensor::zeros(3, 1);
        assert!(spawner.tick(&bad, 0, 10).is_err());
        let tod = TodTensor::zeros(ods.len(), 1);
        assert!(spawner.tick(&tod, 5, 10).is_err());
    }
}
