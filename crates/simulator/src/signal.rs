//! Fixed-time traffic signals.
//!
//! Every signalised intersection runs a two-phase fixed-time plan: incoming
//! links are grouped by approach axis (east-west vs north-south), each
//! group gets half of the cycle. Unsignalised nodes are permanently green.
//! This mirrors the default signal plans CityFlow ships for synthetic
//! grids, and is exactly the stop-and-go source that makes link speed a
//! nonlinear function of volume.

use roadnet::{LinkId, RoadNetwork};

/// Phase index within the two-phase plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    /// Mostly east-west approaches.
    Horizontal,
    /// Mostly north-south approaches.
    Vertical,
}

/// Precomputed signal plan for a network.
#[derive(Debug, Clone)]
pub struct SignalPlan {
    /// Per-link phase assignment; `None` means never gated (unsignalised
    /// downstream node).
    link_axis: Vec<Option<Axis>>,
    cycle_ticks: u64,
}

impl SignalPlan {
    /// Builds the plan for `net` with the given cycle length in ticks.
    pub fn new(net: &RoadNetwork, cycle_ticks: u64) -> Self {
        let cycle_ticks = cycle_ticks.max(2);
        Self {
            link_axis: axis_per_link(net),
            cycle_ticks,
        }
    }

    /// True when vehicles may leave `link` into its downstream intersection
    /// at `tick`.
    #[inline]
    pub fn is_green(&self, link: LinkId, tick: u64) -> bool {
        match self.link_axis.get(link.index()).copied().flatten() {
            None => true,
            Some(axis) => {
                let half = self.cycle_ticks / 2;
                let phase = tick % self.cycle_ticks;
                match axis {
                    Axis::Horizontal => phase < half,
                    Axis::Vertical => phase >= half,
                }
            }
        }
    }

    /// Fraction of the cycle during which `link` is green (1.0 when never
    /// gated).
    pub fn green_ratio(&self, link: LinkId) -> f64 {
        match self.link_axis.get(link.index()).copied().flatten() {
            None => 1.0,
            Some(Axis::Horizontal) => (self.cycle_ticks / 2) as f64 / self.cycle_ticks as f64,
            Some(Axis::Vertical) => {
                (self.cycle_ticks - self.cycle_ticks / 2) as f64 / self.cycle_ticks as f64
            }
        }
    }
}

/// Vehicle-actuated two-phase controller state for one intersection.
///
/// The classic gap-actuation rule: a phase holds green while vehicles keep
/// arriving on its approaches (any queue within the detection zone resets
/// the gap timer), switching after `gap_out_ticks` of no demand or at
/// `max_green_ticks`, whichever comes first. When the competing phase has
/// no demand either, the current phase simply holds.
#[derive(Debug, Clone)]
pub struct ActuatedNode {
    /// Phase currently green (0 = horizontal, 1 = vertical).
    green_phase: u8,
    /// Ticks the current phase has been green.
    elapsed: u64,
    /// Ticks since a vehicle was last detected on the green approaches.
    idle: u64,
}

/// Actuated control for a whole network: falls back to "always green" at
/// unsignalised nodes, two-phase gap actuation elsewhere.
#[derive(Debug, Clone)]
pub struct ActuatedPlan {
    /// Per-link phase assignment (None = unsignalised downstream node).
    link_axis: Vec<Option<Axis>>,
    /// Downstream node per link.
    link_node: Vec<usize>,
    /// Controller state per node (unused slots for unsignalised nodes).
    nodes: Vec<ActuatedNode>,
    /// Minimum green before a switch is allowed.
    pub min_green_ticks: u64,
    /// Upper bound on green duration.
    pub max_green_ticks: u64,
    /// Demand gap that triggers a switch.
    pub gap_out_ticks: u64,
}

impl ActuatedPlan {
    /// Builds the controller with common defaults (min 5 s, max 40 s,
    /// gap-out 3 s at 1 s ticks).
    pub fn new(net: &RoadNetwork) -> Self {
        let link_axis = axis_per_link(net);
        let link_node = net.links().iter().map(|l| l.to.index()).collect();
        let nodes = vec![
            ActuatedNode {
                green_phase: 0,
                elapsed: 0,
                idle: 0,
            };
            net.num_nodes()
        ];
        Self {
            link_axis,
            link_node,
            nodes,
            min_green_ticks: 5,
            max_green_ticks: 40,
            gap_out_ticks: 3,
        }
    }

    /// Advances one tick. `demand(link) -> bool` reports whether vehicles
    /// are waiting near the stop line of `link`.
    pub fn update(&mut self, demand: &dyn Fn(LinkId) -> bool) {
        // Gather per-node demand per phase.
        let n_nodes = self.nodes.len();
        let mut phase_demand = vec![[false; 2]; n_nodes];
        for (li, axis) in self.link_axis.iter().enumerate() {
            if let Some(axis) = axis {
                if demand(LinkId(li)) {
                    let p = match axis {
                        Axis::Horizontal => 0,
                        Axis::Vertical => 1,
                    };
                    let Some(&node) = self.link_node.get(li) else {
                        continue;
                    };
                    if let Some(flag) = phase_demand.get_mut(node).and_then(|d| d.get_mut(p)) {
                        *flag = true;
                    }
                }
            }
        }
        for (node, state) in self.nodes.iter_mut().enumerate() {
            state.elapsed += 1;
            let green = state.green_phase as usize;
            let red = 1 - green;
            let node_demand = phase_demand.get(node).copied().unwrap_or([false; 2]);
            if node_demand.get(green).copied().unwrap_or(false) {
                state.idle = 0;
            } else {
                state.idle += 1;
            }
            let gap_out = state.idle >= self.gap_out_ticks;
            let maxed = state.elapsed >= self.max_green_ticks;
            let competing = node_demand.get(red).copied().unwrap_or(false);
            if state.elapsed >= self.min_green_ticks && competing && (gap_out || maxed) {
                state.green_phase = red as u8;
                state.elapsed = 0;
                state.idle = 0;
            }
        }
    }

    /// True when vehicles may leave `link` into its downstream node.
    #[inline]
    pub fn is_green(&self, link: LinkId) -> bool {
        match self.link_axis.get(link.index()).copied().flatten() {
            None => true,
            Some(axis) => {
                let phase = match axis {
                    Axis::Horizontal => 0u8,
                    Axis::Vertical => 1,
                };
                self.link_node
                    .get(link.index())
                    .and_then(|&n| self.nodes.get(n))
                    .map(|s| s.green_phase == phase)
                    .unwrap_or(true)
            }
        }
    }
}

/// Per-link approach axis: `None` for links into unsignalised nodes,
/// otherwise the dominant geometric direction of the approach. Shared by
/// the fixed-time and actuated controllers so both gate the same way.
fn axis_per_link(net: &RoadNetwork) -> Vec<Option<Axis>> {
    net.links()
        .iter()
        .map(|l| {
            let to = net.nodes().get(l.to.index())?;
            if !to.signalized {
                return None;
            }
            let from = net.nodes().get(l.from.index())?;
            let dx = (to.point.x - from.point.x).abs();
            let dy = (to.point.y - from.point.y).abs();
            Some(if dx >= dy {
                Axis::Horizontal
            } else {
                Axis::Vertical
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::GridSpec;
    use roadnet::network::NetworkBuilder;
    use roadnet::{NodeId, Point};

    #[test]
    fn opposite_axes_alternate() {
        let net = GridSpec::new(3, 3).build(0);
        let plan = SignalPlan::new(&net, 30);
        // Find one horizontal and one vertical link into the same node.
        let center = net
            .nodes()
            .iter()
            .find(|n| net.in_links(n.id).len() == 4)
            .expect("grid center has 4 approaches")
            .id;
        let ins = net.in_links(center);
        let mut horizontal = None;
        let mut vertical = None;
        for &lid in ins {
            let l = &net.links()[lid.index()];
            let dx =
                (net.nodes()[l.to.index()].point.x - net.nodes()[l.from.index()].point.x).abs();
            let dy =
                (net.nodes()[l.to.index()].point.y - net.nodes()[l.from.index()].point.y).abs();
            if dx >= dy {
                horizontal = Some(lid);
            } else {
                vertical = Some(lid);
            }
        }
        let (h, v) = (horizontal.unwrap(), vertical.unwrap());
        for tick in 0..60 {
            assert_ne!(
                plan.is_green(h, tick),
                plan.is_green(v, tick),
                "conflicting approaches must never be green together"
            );
        }
    }

    #[test]
    fn green_ratio_is_half_for_signalised() {
        let net = GridSpec::new(2, 2).build(0);
        let plan = SignalPlan::new(&net, 30);
        for l in net.links() {
            assert!((plan.green_ratio(l.id) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn unsignalised_node_always_green() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_road(a, c, 1, 10.0).unwrap();
        b.set_signalized(NodeId(1), false).unwrap();
        let net = b.build().unwrap();
        let plan = SignalPlan::new(&net, 30);
        let into_c = net.in_links(NodeId(1))[0];
        assert!((0..100).all(|t| plan.is_green(into_c, t)));
        assert_eq!(plan.green_ratio(into_c), 1.0);
    }

    #[test]
    fn cycle_repeats() {
        let net = GridSpec::new(2, 2).build(0);
        let plan = SignalPlan::new(&net, 20);
        let l = net.links()[0].id;
        for t in 0..20 {
            assert_eq!(plan.is_green(l, t), plan.is_green(l, t + 20));
        }
    }

    #[test]
    fn actuated_holds_green_without_competition() {
        let net = GridSpec::new(3, 3).build(0);
        let mut plan = ActuatedPlan::new(&net);
        let center = net
            .nodes()
            .iter()
            .find(|n| net.in_links(n.id).len() == 4)
            .unwrap()
            .id;
        let ins = net.in_links(center).to_vec();
        let green_link = *ins
            .iter()
            .find(|&&l| plan.is_green(l))
            .expect("one approach starts green");
        // Demand only on the already-green approach: no switch, ever.
        for _ in 0..100 {
            plan.update(&|l| l == green_link);
            assert!(plan.is_green(green_link));
        }
    }

    #[test]
    fn actuated_switches_on_gap_out() {
        let net = GridSpec::new(3, 3).build(0);
        let mut plan = ActuatedPlan::new(&net);
        let center = net
            .nodes()
            .iter()
            .find(|n| net.in_links(n.id).len() == 4)
            .unwrap()
            .id;
        let ins = net.in_links(center).to_vec();
        let red_link = *ins
            .iter()
            .find(|&&l| !plan.is_green(l))
            .expect("one approach starts red");
        // Demand only on the red approach: after min green + gap-out the
        // controller must serve it.
        for _ in 0..30 {
            plan.update(&|l| l == red_link);
        }
        assert!(plan.is_green(red_link), "red approach must be served");
    }

    #[test]
    fn actuated_respects_max_green() {
        let net = GridSpec::new(3, 3).build(0);
        let mut plan = ActuatedPlan::new(&net);
        let center = net
            .nodes()
            .iter()
            .find(|n| net.in_links(n.id).len() == 4)
            .unwrap()
            .id;
        let ins = net.in_links(center).to_vec();
        let green_link = *ins.iter().find(|&&l| plan.is_green(l)).unwrap();
        let red_link = *ins.iter().find(|&&l| !plan.is_green(l)).unwrap();
        // Constant demand on both: the green phase may hold at most
        // max_green ticks.
        let mut switched_at = None;
        for tick in 0..200u64 {
            plan.update(&|l| l == green_link || l == red_link);
            if !plan.is_green(green_link) {
                switched_at = Some(tick);
                break;
            }
        }
        let t = switched_at.expect("must eventually switch");
        assert!(t <= plan.max_green_ticks + 1, "switched at {t}");
    }

    #[test]
    fn tiny_cycle_clamped() {
        let net = GridSpec::new(2, 2).build(0);
        let plan = SignalPlan::new(&net, 0);
        // must not panic / divide by zero
        let l = net.links()[0].id;
        let _ = plan.is_green(l, 0);
        let _ = plan.green_ratio(l);
    }
}
