//! The simulation engine.
//!
//! A discrete-time (1 s tick) microscopic simulation. Each tick:
//!
//! 1. **Spawn** — trips demanded by the TOD tensor are admitted onto the
//!    first link of their route when its entrance is clear; otherwise they
//!    wait in a FIFO queue (driveway queueing).
//! 2. **Move** — vehicles advance under the car-following rule
//!    ([`crate::vehicle::follow`]), front-to-back per link, respecting the
//!    scenario-adjusted attainable speed.
//! 3. **Transfer** — vehicles stopped at a link's end cross the
//!    intersection when the signal is green, the link's saturation-flow
//!    budget allows, and the downstream link has space. A full downstream
//!    link blocks the transfer — congestion spills back, which is the
//!    upstream-delay effect the paper's attention module models (Fig 4).
//! 4. **Observe** — per-link volume (entries) and space-mean speed are
//!    accumulated into the interval tensors.
//!
//! The run is fully deterministic given `SimConfig::seed`.

use crate::config::{RoutingPolicy, SignalControl, SimConfig};
use crate::demand::{DemandSpawner, SpawnRequest};
use crate::incident::{IncidentKind, IncidentSchedule, IncidentTarget};
use crate::observe::Observer;
use crate::scenario::Scenario;
use crate::signal::{ActuatedPlan, SignalPlan};
use crate::vehicle::{follow, Vehicle, VehicleClass, VehicleId};
use roadnet::routing::{dijkstra_with_bans, fastest_path_masked, shortest_path_masked};
use roadnet::{LinkId, LinkTensor, NodeId, OdSet, Result, RoadNetwork, RoadnetError, TodTensor};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Route cache for the time-dependent routing policy, keyed by
/// `(origin, destination, interval)`. A `BTreeMap` so that any future
/// iteration over the cache is in deterministic key order — a `HashMap`
/// here is one refactor away from leaking SipHash order into the stable
/// observation tensors.
type DynRouteCache = BTreeMap<(NodeId, NodeId, usize), Option<Arc<Vec<LinkId>>>>;

/// Summary counters of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Vehicles that entered the network.
    pub spawned: u64,
    /// Vehicles that reached their destination.
    pub arrived: u64,
    /// Vehicles still en route when the run ended.
    pub active_at_end: u64,
    /// Trips still waiting to enter when the run ended.
    pub queued_at_end: u64,
    /// Trips dropped because no route existed.
    pub unroutable: u64,
    /// Sum of completed-trip travel times, seconds.
    pub total_travel_time_s: f64,
}

impl SimStats {
    /// Mean travel time of completed trips, seconds.
    pub fn mean_travel_time_s(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.total_travel_time_s / self.arrived as f64
        }
    }

    /// Every spawned vehicle must be accounted for.
    pub fn is_conserved(&self) -> bool {
        self.spawned == self.arrived + self.active_at_end
    }
}

/// One completed or in-progress trip (recorded when
/// [`crate::SimConfig::record_trips`] is set) — the simulator-side
/// equivalent of one taxi-trajectory record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripRecord {
    /// OD pair the trip belongs to.
    pub od: roadnet::OdPairId,
    /// Concrete origin node.
    pub from: NodeId,
    /// Concrete destination node.
    pub to: NodeId,
    /// Tick the vehicle entered the network.
    pub depart_tick: u64,
    /// Tick the vehicle arrived, if it finished within the run.
    pub arrive_tick: Option<u64>,
}

/// Output of one run: the paper's observation tensors plus run statistics.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// `q_{j,t}`: vehicles entering link `j` during interval `t`.
    pub volume: LinkTensor,
    /// `v_{j,t}`: average speed on link `j` during interval `t` (m/s).
    pub speed: LinkTensor,
    /// Time-mean vehicle count on link `j` during interval `t` (the
    /// density axis of a macroscopic fundamental diagram).
    pub occupancy: LinkTensor,
    /// Run statistics.
    pub stats: SimStats,
    /// Per-trip records, in spawn order (empty unless
    /// [`crate::SimConfig::record_trips`] is set).
    pub trips: Vec<TripRecord>,
}

/// A configured simulation, reusable across TOD tensors (route caches for
/// static policies persist between runs).
///
/// `Clone` is cheap relative to a run (the route cache is shared via
/// `Arc`), which lets parallel data generation hand each worker its own
/// simulation cloned from one warm template.
#[derive(Clone)]
pub struct Simulation<'a> {
    net: &'a RoadNetwork,
    ods: &'a OdSet,
    cfg: SimConfig,
    scenario: Scenario,
    plan: SignalPlan,
    // Scenario-adjusted static link attributes, indexed by LinkId.
    len_m: Vec<f64>,
    desired_mps: Vec<f64>,
    capacity: Vec<usize>,
    sat_flow_per_tick: Vec<f64>,
    lanes: Vec<f64>,
    /// Route cache for static routing policies (ordered for the same
    /// reason as [`DynRouteCache`]).
    static_routes: BTreeMap<(NodeId, NodeId), Option<Arc<Vec<LinkId>>>>,
    /// Scheduled mid-run perturbations; empty means the machinery is
    /// skipped entirely.
    incidents: IncidentSchedule,
    /// Metrics sink; defaults to the process-global registry.
    obs: obs::Registry,
}

/// Time-varying link state derived from the incident schedule, recomputed
/// only at schedule boundaries. With an empty schedule these are exact
/// copies of the static per-link vectors and never touched again.
struct IncidentState {
    desired_mps: Vec<f64>,
    capacity: Vec<usize>,
    sat_flow_per_tick: Vec<f64>,
    closed: Vec<bool>,
    all_red: Vec<bool>,
    /// Signal frozen in the phase it held at this tick (stuck-phase
    /// outage).
    stuck_at: Vec<Option<u64>>,
    /// Any link currently closed (routing must mask).
    any_closed: bool,
}

/// Per-run event tallies, flushed to the registry once at the end of
/// [`Simulation::run`] so the hot loop never touches an atomic.
#[derive(Default)]
struct RunTally {
    crossings: u64,
    green_checks: u64,
    red_checks: u64,
    spillback_blocked: u64,
    satflow_blocked: u64,
    conservation_violations: u64,
    link_conservation_violations: u64,
    speed_clamp_violations: u64,
    negative_volume_violations: u64,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation with the regular (no disruption) scenario.
    pub fn new(net: &'a RoadNetwork, ods: &'a OdSet, cfg: SimConfig) -> Result<Self> {
        Self::with_scenario(net, ods, cfg, Scenario::regular())
    }

    /// Creates a simulation with a disruption scenario (RQ3).
    pub fn with_scenario(
        net: &'a RoadNetwork,
        ods: &'a OdSet,
        cfg: SimConfig,
        scenario: Scenario,
    ) -> Result<Self> {
        ods.validate(net)?;
        if cfg.tick_s <= 0.0 || cfg.interval_s <= 0.0 {
            return Err(RoadnetError::InvalidAttribute(
                "tick and interval lengths must be positive".into(),
            ));
        }
        let cycle_ticks = (cfg.signal_cycle_s / cfg.tick_s).round().max(2.0) as u64;
        let plan = SignalPlan::new(net, cycle_ticks);
        let m = net.num_links();
        let mut len_m = Vec::with_capacity(m);
        let mut desired_mps = Vec::with_capacity(m);
        let mut capacity = Vec::with_capacity(m);
        let mut sat_flow = Vec::with_capacity(m);
        let mut lanes = Vec::with_capacity(m);
        for l in net.links() {
            let (sf, ff, cf) = scenario.factors(l.id);
            len_m.push(l.length_m);
            desired_mps.push(l.speed_limit_mps * sf);
            capacity.push(((l.storage_capacity() as f64 * cf).floor() as usize).max(1));
            sat_flow.push(l.lanes as f64 * cfg.saturation_flow_per_lane * ff * cfg.tick_s);
            lanes.push(l.lanes as f64);
        }
        Ok(Self {
            net,
            ods,
            cfg,
            scenario,
            plan,
            len_m,
            desired_mps,
            capacity,
            sat_flow_per_tick: sat_flow,
            lanes,
            static_routes: BTreeMap::new(),
            incidents: IncidentSchedule::default(),
            obs: obs::global().clone(),
        })
    }

    /// Installs a scheduled-incident timeline. The engine applies each
    /// incident's effect deterministically over its tick range and
    /// restores the link when it clears; route caches are invalidated at
    /// every onset/clearance boundary so route sets re-derive against the
    /// perturbed network.
    pub fn with_incidents(mut self, incidents: IncidentSchedule) -> Result<Self> {
        incidents
            .validate(self.net.num_links(), self.net.num_nodes())
            .map_err(RoadnetError::InvalidAttribute)?;
        self.incidents = incidents;
        Ok(self)
    }

    /// The incident schedule in force.
    pub fn incidents(&self) -> &IncidentSchedule {
        &self.incidents
    }

    /// Redirects metrics to `registry` instead of the process-global one.
    /// Tests inject a local registry here so assertions see only their own
    /// run's counters.
    pub fn with_registry(mut self, registry: obs::Registry) -> Self {
        self.obs = registry;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The scenario in use.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the simulation for `tod` and returns observation tensors.
    pub fn run(&mut self, tod: &TodTensor) -> Result<SimOutput> {
        if tod.rows() != self.ods.len() {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("{} OD rows", self.ods.len()),
                actual: format!("{} rows", tod.rows()),
            });
        }
        if tod.num_intervals() != self.cfg.intervals {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("{} intervals", self.cfg.intervals),
                actual: format!("{} intervals", tod.num_intervals()),
            });
        }

        let m = self.net.num_links();
        let t_obs = self.cfg.intervals;
        let tpi = self.cfg.ticks_per_interval();
        let dt = self.cfg.tick_s;

        let run_span = self.obs.timer(crate::metrics::RUN_SECONDS);
        let step_hist = self
            .obs
            .histogram(crate::metrics::STEP_IN_NETWORK, obs::COUNT_BUCKETS);
        let mut tally = RunTally::default();
        // Transfer-phase bookkeeping buffers for the per-link conservation
        // check, reused across ticks.
        let mut len_before = vec![0usize; m];
        let mut entries = vec![0u64; m];
        let mut exits = vec![0u64; m];

        let mut spawner = DemandSpawner::new(self.net, self.ods, self.cfg.seed)?;
        let mut observer = Observer::new(m, t_obs, tpi);
        let mut links: Vec<VecDeque<Vehicle>> = vec![VecDeque::new(); m];
        let mut exit_budget = vec![0.0f64; m];
        let mut pending: VecDeque<SpawnRequest> = VecDeque::new();
        let mut actuated = match self.cfg.signal_control {
            SignalControl::Actuated => Some(ActuatedPlan::new(self.net)),
            SignalControl::FixedTime => None,
        };
        let mut stats = SimStats::default();
        let mut next_vid = 0u64;
        let mut trips: Vec<TripRecord> = Vec::new();
        // Dedicated stream for class assignment keeps spawn-node choices
        // identical whether or not trucks are enabled.
        use rand::{Rng as _, SeedableRng as _};
        let mut class_rng = rand::rngs::StdRng::seed_from_u64(self.cfg.seed ^ 0x5EED_70C5);
        // Per-interval route cache for the time-dependent policy.
        let mut dyn_routes: DynRouteCache = DynRouteCache::new();
        // Incident machinery: effective per-link state starts as a copy of
        // the static vectors and is only recomputed when the schedule's
        // active set changes (onset/clearance boundaries).
        let has_incidents = !self.incidents.is_empty();
        let mut inc_state = IncidentState {
            desired_mps: self.desired_mps.clone(),
            capacity: self.capacity.clone(),
            sat_flow_per_tick: self.sat_flow_per_tick.clone(),
            closed: vec![false; m],
            all_red: vec![false; m],
            stuck_at: vec![None; m],
            any_closed: false,
        };
        let boundary_ticks = self.incidents.boundaries();
        let mut next_boundary = 0usize;

        for tick in 0..self.cfg.total_ticks() {
            let interval = (tick / tpi) as usize;

            if has_incidents {
                // Tick 0 applies incidents already active at the start;
                // later refreshes happen only when a boundary is crossed.
                let mut crossed = tick == 0;
                while boundary_ticks
                    .get(next_boundary)
                    .is_some_and(|&b| b <= tick)
                {
                    next_boundary += 1;
                    crossed = true;
                }
                if crossed {
                    self.refresh_incident_state(tick, &mut inc_state);
                    // Routes derived under the previous network state are
                    // stale the moment the active set changes: re-derive
                    // against the perturbed (or restored) network.
                    self.static_routes.clear();
                    dyn_routes.clear();
                }
            }

            // --- 1. demand -------------------------------------------------
            if interval < t_obs {
                pending.extend(spawner.tick(tod, interval, tpi)?);
            }
            let mut still_pending = VecDeque::with_capacity(pending.len());
            while let Some(req) = pending.pop_front() {
                let route = self.route_for(
                    req,
                    interval,
                    &observer,
                    &mut dyn_routes,
                    &inc_state.closed,
                    inc_state.any_closed,
                );
                let Some(route) = route else {
                    stats.unroutable += 1;
                    continue;
                };
                let Some(&first) = route.first() else {
                    // route_for filters empty routes; count rather than panic.
                    stats.unroutable += 1;
                    continue;
                };
                let cap = inc_state.capacity.get(first.index()).copied().unwrap_or(0);
                match links.get_mut(first.index()) {
                    Some(deque) if entrance_clear(deque, cap) => {
                        let class = if self.cfg.truck_fraction > 0.0
                            && class_rng.gen::<f64>() < self.cfg.truck_fraction
                        {
                            VehicleClass::Truck
                        } else {
                            VehicleClass::Car
                        };
                        let veh = Vehicle {
                            id: VehicleId(next_vid),
                            route,
                            leg: 0,
                            pos_m: 0.0,
                            speed_mps: 0.0,
                            spawn_tick: tick,
                            class,
                        };
                        next_vid += 1;
                        deque.push_back(veh);
                        observer.record_entry(first, interval);
                        stats.spawned += 1;
                        if self.cfg.record_trips {
                            trips.push(TripRecord {
                                od: req.od,
                                from: req.from,
                                to: req.to,
                                depart_tick: tick,
                                arrive_tick: None,
                            });
                        }
                    }
                    _ => still_pending.push_back(req),
                }
            }
            pending = still_pending;

            // --- 2. movement ----------------------------------------------
            let link_rows = links
                .iter_mut()
                .zip(self.len_m.iter())
                .zip(inc_state.desired_mps.iter())
                .enumerate();
            for (li, ((deque, &len), &desired)) in link_rows {
                let mut speed_sum = 0.0;
                let mut count = 0usize;
                // (position, footprint) of the vehicle ahead.
                let mut leader: Option<(f64, f64)> = None;
                for veh in deque.iter_mut() {
                    let headroom = match leader {
                        None => len - veh.pos_m,
                        Some((lp, lf)) => (lp - lf - veh.pos_m).max(0.0),
                    };
                    let (v, dx) = follow(
                        veh.speed_mps,
                        desired,
                        headroom,
                        self.cfg.max_accel * veh.class.accel_factor(),
                        self.cfg.max_decel,
                        dt,
                    );
                    veh.speed_mps = v;
                    veh.pos_m = (veh.pos_m + dx).min(len);
                    leader = Some((veh.pos_m, veh.class.footprint_m()));
                    speed_sum += v;
                    count += 1;
                }
                observer.record_tick(LinkId(li), interval, speed_sum, count, desired);
            }

            // --- 3. transfers ----------------------------------------------
            // Actuated control: detect queues within 30 m of each stop
            // line, then advance the controllers one tick.
            if let Some(plan) = actuated.as_mut() {
                let len_m = &self.len_m;
                plan.update(&|lid: LinkId| {
                    let li = lid.index();
                    match (links.get(li).and_then(|d| d.front()), len_m.get(li)) {
                        (Some(v), Some(&len)) => v.pos_m >= len - 30.0,
                        _ => false,
                    }
                });
            }
            let resets = len_before
                .iter_mut()
                .zip(entries.iter_mut())
                .zip(exits.iter_mut())
                .zip(links.iter());
            for (((before, entered), exited), deque) in resets {
                *before = deque.len();
                *entered = 0;
                *exited = 0;
            }
            // Refill exit budgets up front: each link's budget is only
            // touched by its own transfer iteration, so batching the
            // refills ahead of the loop is behaviour-identical.
            let refills = exit_budget
                .iter_mut()
                .zip(inc_state.sat_flow_per_tick.iter())
                .zip(self.lanes.iter());
            for ((budget, &sat), &lanes) in refills {
                *budget = (*budget + sat).min(lanes.max(1.0));
            }
            for li in 0..m {
                let stop_m = self.len_m.get(li).copied().unwrap_or(0.0);
                // Pop-then-decide keeps this loop panic-free: the front
                // vehicle is re-queued when it cannot cross this tick.
                while let Some(front) = links.get_mut(li).and_then(|d| d.pop_front()) {
                    if front.pos_m < stop_m - 1e-9 {
                        requeue(&mut links, li, front);
                        break;
                    }
                    if front.on_last_leg() {
                        // Arrival consumes no intersection capacity.
                        stats.arrived += 1;
                        bump(&mut exits, li);
                        stats.total_travel_time_s += (tick - front.spawn_tick) as f64 * dt;
                        if self.cfg.record_trips {
                            if let Some(trip) = trips.get_mut(front.id.0 as usize) {
                                trip.arrive_tick = Some(tick);
                            }
                        }
                        continue;
                    }
                    let green = if inc_state.all_red.get(li).copied().unwrap_or(false) {
                        // Severe signal outage: the approach shows red for
                        // the whole incident.
                        false
                    } else if let Some(frozen) = inc_state.stuck_at.get(li).copied().flatten() {
                        // Mild outage: the controller is frozen in the
                        // phase it held at onset (actuated control loses
                        // its detectors too, so the fixed plan decides).
                        self.plan.is_green(LinkId(li), frozen)
                    } else {
                        match &actuated {
                            Some(plan) => plan.is_green(LinkId(li)),
                            None => self.plan.is_green(LinkId(li), tick),
                        }
                    };
                    if !green {
                        tally.red_checks += 1;
                        requeue(&mut links, li, front);
                        break;
                    }
                    tally.green_checks += 1;
                    if exit_budget.get(li).is_none_or(|b| *b < 1.0) {
                        tally.satflow_blocked += 1;
                        requeue(&mut links, li, front);
                        break;
                    }
                    let Some(next) = front.next_link() else {
                        // Unreachable (`on_last_leg` handled above), but a
                        // re-queue is strictly safer than a panic here.
                        requeue(&mut links, li, front);
                        break;
                    };
                    let ni = next.index();
                    let cap = inc_state.capacity.get(ni).copied().unwrap_or(0);
                    if !links.get(ni).is_some_and(|d| entrance_clear(d, cap)) {
                        tally.spillback_blocked += 1;
                        requeue(&mut links, li, front);
                        break; // spillback
                    }
                    if let Some(budget) = exit_budget.get_mut(li) {
                        *budget -= 1.0;
                    }
                    let mut veh = front;
                    veh.leg += 1;
                    veh.pos_m = 0.0;
                    if let Some(&v_cap) = inc_state.desired_mps.get(ni) {
                        veh.speed_mps = veh.speed_mps.min(v_cap);
                    }
                    if let Some(d) = links.get_mut(ni) {
                        d.push_back(veh);
                    }
                    observer.record_entry(next, interval);
                    tally.crossings += 1;
                    bump(&mut exits, li);
                    bump(&mut entries, ni);
                }
            }

            // --- invariant monitors ----------------------------------------
            // Per-link transfer bookkeeping: a link's population changes
            // exactly by its entries minus its exits.
            let mut in_network = 0u64;
            let ledgers = len_before
                .iter()
                .zip(entries.iter())
                .zip(exits.iter())
                .zip(links.iter());
            for (((&before, &entered), &exited), deque) in ledgers {
                let expected = before as u64 + entered - exited;
                if deque.len() as u64 != expected {
                    tally.link_conservation_violations += 1;
                }
                in_network += deque.len() as u64;
            }
            // Global conservation: every spawned vehicle is either still on
            // some link or has arrived.
            if stats.spawned != stats.arrived + in_network {
                tally.conservation_violations += 1;
            }
            step_hist.observe(in_network as f64);
        }

        stats.active_at_end = links.iter().map(|d| d.len() as u64).sum();
        stats.queued_at_end = pending.len() as u64;
        let (volume, speed, occupancy) = observer.finalize();

        // Finalized tensors must respect the physical ranges the paper's
        // observation model assumes: speeds in [0, v_max], volumes >= 0.
        let occ_hist = self
            .obs
            .histogram(crate::metrics::LINK_OCCUPANCY, obs::COUNT_BUCKETS);
        for (li, &v_max) in self.desired_mps.iter().enumerate() {
            for t in 0..t_obs {
                let v = speed.get(LinkId(li), t);
                if !(0.0..=v_max + 1e-9).contains(&v) {
                    tally.speed_clamp_violations += 1;
                }
                if volume.get(LinkId(li), t) < 0.0 {
                    tally.negative_volume_violations += 1;
                }
                occ_hist.observe(occupancy.get(LinkId(li), t));
            }
        }
        self.flush_metrics(&stats, &tally);
        drop(run_span); // records wall-clock to the timing gauge

        Ok(SimOutput {
            volume,
            speed,
            occupancy,
            stats,
            trips,
        })
    }

    /// Recomputes the effective link state for `tick` from the static
    /// vectors and the incidents active at `tick`. Called only at
    /// schedule boundaries; a pure function of `(schedule, tick)`, which
    /// is what keeps incident runs bit-identical across thread counts.
    fn refresh_incident_state(&self, tick: u64, st: &mut IncidentState) {
        st.desired_mps.copy_from_slice(&self.desired_mps);
        st.capacity.copy_from_slice(&self.capacity);
        st.sat_flow_per_tick
            .copy_from_slice(&self.sat_flow_per_tick);
        st.closed.fill(false);
        st.all_red.fill(false);
        st.stuck_at.fill(None);
        st.any_closed = false;
        for inc in self.incidents.incidents() {
            if !inc.active_at(tick) {
                continue;
            }
            // Severity 1.0 leaves a 5% floor so closures drain instead of
            // freezing traffic on the link forever.
            let factor = (1.0 - inc.severity).clamp(0.05, 1.0);
            let single;
            let targets: &[LinkId] = match inc.target {
                IncidentTarget::Link(l) => {
                    single = [l];
                    &single
                }
                IncidentTarget::Node(n) => self.net.in_links(n),
            };
            for &lid in targets {
                let li = lid.index();
                match inc.kind {
                    IncidentKind::Closure => {
                        if let Some(c) = st.closed.get_mut(li) {
                            *c = true;
                        }
                        st.any_closed = true;
                        // No entry at all; traffic already on the link
                        // crawls off at the severity-scaled speed.
                        if let Some(c) = st.capacity.get_mut(li) {
                            *c = 0;
                        }
                        if let Some(d) = st.desired_mps.get_mut(li) {
                            *d *= factor;
                        }
                    }
                    IncidentKind::CapacityDrop => {
                        if let Some(s) = st.sat_flow_per_tick.get_mut(li) {
                            *s *= factor;
                        }
                    }
                    IncidentKind::SignalOutage => {
                        if inc.severity >= 0.5 {
                            if let Some(r) = st.all_red.get_mut(li) {
                                *r = true;
                            }
                        } else if let Some(s) = st.stuck_at.get_mut(li) {
                            *s = Some(inc.onset_tick);
                        }
                    }
                }
            }
        }
    }

    /// Publishes one run's stats and event tallies to the registry.
    fn flush_metrics(&self, stats: &SimStats, tally: &RunTally) {
        use crate::metrics as m;
        let reg = &self.obs;
        reg.counter(m::RUNS).inc();
        reg.counter(m::TICKS).add(self.cfg.total_ticks());
        reg.counter(m::SPAWNED).add(stats.spawned);
        reg.counter(m::ARRIVED).add(stats.arrived);
        reg.counter(m::UNROUTABLE).add(stats.unroutable);
        reg.counter(m::ACTIVE_AT_END).add(stats.active_at_end);
        reg.counter(m::QUEUED_AT_END).add(stats.queued_at_end);
        reg.counter(m::TRANSFER_CROSSINGS).add(tally.crossings);
        reg.counter(m::SIGNAL_GREEN_TICKS).add(tally.green_checks);
        reg.counter(m::SIGNAL_RED_TICKS).add(tally.red_checks);
        reg.counter(m::SPILLBACK_BLOCKED_TICKS)
            .add(tally.spillback_blocked);
        reg.counter(m::SATFLOW_BLOCKED_TICKS)
            .add(tally.satflow_blocked);
        reg.counter(m::CONSERVATION_VIOLATIONS)
            .add(tally.conservation_violations);
        reg.counter(m::LINK_CONSERVATION_VIOLATIONS)
            .add(tally.link_conservation_violations);
        reg.counter(m::SPEED_CLAMP_VIOLATIONS)
            .add(tally.speed_clamp_violations);
        reg.counter(m::NEGATIVE_VOLUME_VIOLATIONS)
            .add(tally.negative_volume_violations);
        // Incident metrics only exist when a schedule is in force, so
        // incident-free pipelines keep their golden metric snapshots.
        if !self.incidents.is_empty() {
            let total = self.cfg.total_ticks();
            let incident_ticks: u64 = self
                .incidents
                .incidents()
                .iter()
                .map(|i| i.end_tick().min(total) - i.onset_tick.min(total))
                .sum();
            reg.counter(m::INCIDENT_TICKS).add(incident_ticks);
            reg.gauge(m::INCIDENTS_ACTIVE)
                .set(self.incidents.active_count(total.saturating_sub(1)) as f64);
        }
    }

    /// Resolves the route for a spawn request under the configured policy.
    /// Links closed by an active incident are masked out of every search;
    /// caches are only consulted within one closure regime (the run loop
    /// clears them at every schedule boundary).
    fn route_for(
        &mut self,
        req: SpawnRequest,
        interval: usize,
        observer: &Observer,
        dyn_routes: &mut DynRouteCache,
        closed: &[bool],
        any_closed: bool,
    ) -> Option<Arc<Vec<LinkId>>> {
        let masked = |l: LinkId| any_closed && closed.get(l.index()).copied().unwrap_or(false);
        match self.cfg.routing {
            RoutingPolicy::Shortest | RoutingPolicy::FreeFlowFastest => {
                let key = (req.from, req.to);
                if let Some(cached) = self.static_routes.get(&key) {
                    return cached.clone();
                }
                let route = match self.cfg.routing {
                    RoutingPolicy::Shortest => {
                        shortest_path_masked(self.net, req.from, req.to, &masked)
                    }
                    _ => fastest_path_masked(self.net, req.from, req.to, &masked),
                };
                let entry = route
                    .ok()
                    .filter(|r| !r.links.is_empty())
                    .map(|r| Arc::new(r.links));
                self.static_routes.insert(key, entry.clone());
                entry
            }
            RoutingPolicy::TimeDependent => {
                let key = (req.from, req.to, interval);
                if let Some(cached) = dyn_routes.get(&key) {
                    return cached.clone();
                }
                let route = if interval == 0 {
                    fastest_path_masked(self.net, req.from, req.to, &masked)
                } else {
                    let prev = (interval - 1).min(self.cfg.intervals.saturating_sub(1));
                    let desired = &self.desired_mps;
                    let cost = |l: &roadnet::Link| {
                        let obs = observer.mean_speed(l.id, prev);
                        // The 0.5 m/s floor also covers the (unreachable)
                        // out-of-range link id, keeping the cost finite.
                        let v_max = desired.get(l.id.index()).copied().unwrap_or(0.5);
                        let v = if obs.is_finite() && obs > 0.0 {
                            obs.min(v_max).max(0.5)
                        } else {
                            v_max
                        };
                        l.length_m / v
                    };
                    dijkstra_with_bans(self.net, req.from, req.to, &cost, &masked, &|_| false)
                };
                let entry = route
                    .ok()
                    .filter(|r| !r.links.is_empty())
                    .map(|r| Arc::new(r.links));
                dyn_routes.insert(key, entry.clone());
                entry
            }
        }
    }
}

/// Re-queues a vehicle at the head of `links[li]`; a no-op when `li` is
/// out of range (unreachable — transfer loops iterate `0..links.len()`).
fn requeue(links: &mut [VecDeque<Vehicle>], li: usize, veh: Vehicle) {
    if let Some(deque) = links.get_mut(li) {
        deque.push_front(veh);
    }
}

/// Checked `counts[i] += 1`; a no-op when `i` is out of range.
fn bump(counts: &mut [u64], i: usize) {
    if let Some(c) = counts.get_mut(i) {
        *c += 1;
    }
}

/// True when a new vehicle fits at the link's entrance: the link is under
/// capacity and the most recently entered vehicle has cleared the stop bar
/// by its own footprint.
fn entrance_clear(deque: &VecDeque<Vehicle>, capacity: usize) -> bool {
    if deque.len() >= capacity {
        return false;
    }
    match deque.back() {
        None => true,
        Some(last) => last.pos_m >= last.class.footprint_m(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::ScheduledIncident;
    use roadnet::presets::synthetic_grid;

    fn setup() -> (RoadNetwork, OdSet) {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        (net, ods)
    }

    fn quick_cfg(t: usize) -> SimConfig {
        SimConfig::default()
            .with_intervals(t)
            .with_interval_s(120.0)
    }

    #[test]
    fn shapes_match_network_and_config() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 3, 1.0);
        let out = Simulation::new(&net, &ods, quick_cfg(3))
            .unwrap()
            .run(&tod)
            .unwrap();
        assert_eq!(out.volume.rows(), net.num_links());
        assert_eq!(out.volume.num_intervals(), 3);
        assert_eq!(out.speed.rows(), net.num_links());
        assert!(out.volume.is_non_negative());
        assert!(out.speed.is_finite());
    }

    #[test]
    fn vehicles_are_conserved() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 3.0);
        let out = Simulation::new(&net, &ods, quick_cfg(2))
            .unwrap()
            .run(&tod)
            .unwrap();
        assert!(out.stats.is_conserved(), "{:?}", out.stats);
        assert!(out.stats.spawned > 0);
        assert!(out.stats.arrived > 0, "light traffic should mostly clear");
    }

    #[test]
    fn zero_demand_reports_free_flow() {
        let (net, ods) = setup();
        let tod = TodTensor::zeros(ods.len(), 2);
        let out = Simulation::new(&net, &ods, quick_cfg(2))
            .unwrap()
            .run(&tod)
            .unwrap();
        assert_eq!(out.stats.spawned, 0);
        assert_eq!(out.volume.total(), 0.0);
        for l in net.links() {
            for t in 0..2 {
                assert!(
                    (out.speed.get(l.id, t) - l.speed_limit_mps).abs() < 1e-9,
                    "empty link reports its speed limit"
                );
            }
        }
    }

    #[test]
    fn determinism_same_seed() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 4.0);
        let run = |seed: u64| {
            Simulation::new(&net, &ods, quick_cfg(2).with_seed(seed))
                .unwrap()
                .run(&tod)
                .unwrap()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.volume, b.volume);
        assert_eq!(a.speed, b.speed);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn heavier_demand_slows_network() {
        let (net, ods) = setup();
        let light = TodTensor::filled(ods.len(), 3, 0.5);
        let heavy = TodTensor::filled(ods.len(), 3, 30.0);
        let cfg = SimConfig::default()
            .with_intervals(3)
            .with_interval_s(300.0);
        let out_l = Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .run(&light)
            .unwrap();
        let out_h = Simulation::new(&net, &ods, cfg)
            .unwrap()
            .run(&heavy)
            .unwrap();
        let mean = |t: &LinkTensor| t.total() / t.as_slice().len() as f64;
        assert!(
            mean(&out_h.speed) < mean(&out_l.speed),
            "heavy {} vs light {}",
            mean(&out_h.speed),
            mean(&out_l.speed)
        );
        assert!(out_h.volume.total() > out_l.volume.total());
    }

    #[test]
    fn road_work_slows_affected_link() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 2.0);
        let cfg = quick_cfg(2);
        let target = LinkId(0);
        let regular = Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .run(&tod)
            .unwrap();
        let scenario =
            Scenario::with_disruptions(vec![crate::scenario::LinkDisruption::road_work(target)]);
        let disrupted = Simulation::with_scenario(&net, &ods, cfg, scenario)
            .unwrap()
            .run(&tod)
            .unwrap();
        let mean_reg: f64 = regular.speed.row(target).iter().sum::<f64>() / 2.0;
        let mean_dis: f64 = disrupted.speed.row(target).iter().sum::<f64>() / 2.0;
        assert!(
            mean_dis < mean_reg,
            "disrupted link must be slower: {mean_dis} vs {mean_reg}"
        );
    }

    #[test]
    fn tod_shape_validated() {
        let (net, ods) = setup();
        let mut sim = Simulation::new(&net, &ods, quick_cfg(2)).unwrap();
        assert!(sim.run(&TodTensor::zeros(3, 2)).is_err());
        assert!(sim.run(&TodTensor::zeros(ods.len(), 5)).is_err());
    }

    #[test]
    fn time_dependent_routing_runs() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 2.0);
        let out = Simulation::new(
            &net,
            &ods,
            quick_cfg(2).with_routing(RoutingPolicy::TimeDependent),
        )
        .unwrap()
        .run(&tod)
        .unwrap();
        assert!(out.stats.spawned > 0);
        assert!(out.stats.is_conserved());
    }

    #[test]
    fn speeds_never_exceed_limits() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 5.0);
        let out = Simulation::new(&net, &ods, quick_cfg(2))
            .unwrap()
            .run(&tod)
            .unwrap();
        for l in net.links() {
            for t in 0..2 {
                assert!(out.speed.get(l.id, t) <= l.speed_limit_mps + 1e-9);
                assert!(out.speed.get(l.id, t) >= 0.0);
            }
        }
    }

    #[test]
    fn reusing_simulation_is_consistent() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 2.0);
        let mut sim = Simulation::new(&net, &ods, quick_cfg(2)).unwrap();
        let a = sim.run(&tod).unwrap();
        let b = sim.run(&tod).unwrap();
        assert_eq!(a.volume, b.volume, "route cache must not change results");
        assert_eq!(a.speed, b.speed);
    }

    #[test]
    fn closure_degrades_link_and_recovery_restores_it() {
        let (net, ods) = setup();
        let t = 3;
        let tod = TodTensor::filled(ods.len(), t, 2.0);
        let cfg = quick_cfg(t);
        let tpi = cfg.ticks_per_interval();
        let target = LinkId(0);
        let clean = Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .run(&tod)
            .unwrap();
        // Closed for exactly interval 1; intervals 0 and 2 are clean.
        let schedule = IncidentSchedule::new(vec![ScheduledIncident {
            kind: IncidentKind::Closure,
            target: IncidentTarget::Link(target),
            onset_tick: tpi,
            duration_ticks: tpi,
            severity: 1.0,
        }]);
        let hit = Simulation::new(&net, &ods, cfg)
            .unwrap()
            .with_incidents(schedule)
            .unwrap()
            .run(&tod)
            .unwrap();
        // During the closure the link reports its crawl speed; before and
        // after it behaves like the clean run's regime.
        assert!(
            hit.speed.get(target, 1) < 0.3 * clean.speed.get(target, 1),
            "closed link must collapse: {} vs clean {}",
            hit.speed.get(target, 1),
            clean.speed.get(target, 1)
        );
        assert!(
            hit.speed.get(target, 2) > 0.5 * clean.speed.get(target, 2),
            "cleared link must recover: {} vs clean {}",
            hit.speed.get(target, 2),
            clean.speed.get(target, 2)
        );
        // No vehicle may be stranded: closures drain, they don't trap.
        assert!(hit.stats.is_conserved(), "{:?}", hit.stats);
        // The grid is redundant, so closing one link reroutes rather than
        // dropping demand.
        assert_eq!(hit.stats.unroutable, 0);
        // Nothing entered the closed link while it was closed.
        assert_eq!(hit.volume.get(target, 1), 0.0);
    }

    #[test]
    fn incident_runs_are_deterministic_and_replayable() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 3.0);
        let cfg = quick_cfg(2).with_seed(9);
        let tpi = cfg.ticks_per_interval();
        let schedule = || {
            IncidentSchedule::new(vec![
                ScheduledIncident {
                    kind: IncidentKind::Closure,
                    target: IncidentTarget::Link(LinkId(2)),
                    onset_tick: tpi / 2,
                    duration_ticks: tpi,
                    severity: 0.9,
                },
                ScheduledIncident {
                    kind: IncidentKind::SignalOutage,
                    target: IncidentTarget::Node(NodeId(4)),
                    onset_tick: 0,
                    duration_ticks: tpi / 2,
                    severity: 0.8,
                },
            ])
        };
        let run = || {
            Simulation::new(&net, &ods, cfg.clone())
                .unwrap()
                .with_incidents(schedule())
                .unwrap()
                .run(&tod)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.volume, b.volume);
        assert_eq!(a.speed, b.speed);
        assert_eq!(a.stats, b.stats);
        // And the perturbation is real: it differs from the clean run.
        let clean = Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .run(&tod)
            .unwrap();
        assert_ne!(a.speed, clean.speed);
    }

    fn counter_value(reg: &obs::Registry, name: &str) -> u64 {
        reg.snapshot(false)
            .iter()
            .find(|m| m.name == name)
            .map(|m| match m.value {
                obs::SnapshotValue::Counter(v) => v,
                _ => 0,
            })
            .unwrap_or(0)
    }

    #[test]
    fn capacity_drop_slows_discharge() {
        let (net, ods) = setup();
        let t = 2;
        let tod = TodTensor::filled(ods.len(), t, 6.0);
        let cfg = SimConfig::default()
            .with_intervals(t)
            .with_interval_s(300.0);
        let clean_reg = obs::Registry::new();
        Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .with_registry(clean_reg.clone())
            .run(&tod)
            .unwrap();
        // 90% of the saturation flow gone network-wide for the entire run
        // (cooldown included, so queues cannot quietly drain at the end).
        let schedule = IncidentSchedule::new(
            (0..net.num_links())
                .map(|l| ScheduledIncident {
                    kind: IncidentKind::CapacityDrop,
                    target: IncidentTarget::Link(LinkId(l)),
                    onset_tick: 0,
                    duration_ticks: cfg.total_ticks(),
                    severity: 0.9,
                })
                .collect(),
        );
        let hit_reg = obs::Registry::new();
        let hit = Simulation::new(&net, &ods, cfg)
            .unwrap()
            .with_registry(hit_reg.clone())
            .with_incidents(schedule)
            .unwrap()
            .run(&tod)
            .unwrap();
        let clean_blocked = counter_value(&clean_reg, crate::metrics::SATFLOW_BLOCKED_TICKS);
        let hit_blocked = counter_value(&hit_reg, crate::metrics::SATFLOW_BLOCKED_TICKS);
        assert!(
            hit_blocked > clean_blocked,
            "throttled saturation flow must block more transfers: {hit_blocked} vs {clean_blocked}"
        );
        assert!(hit.stats.is_conserved());
    }

    #[test]
    fn signal_outage_all_red_blocks_approaches() {
        let (net, ods) = setup();
        let t = 2;
        let tod = TodTensor::filled(ods.len(), t, 2.0);
        let cfg = quick_cfg(t);
        // All-red every approach of every node for the whole run: nothing
        // can ever cross an intersection.
        let outages: Vec<ScheduledIncident> = (0..net.num_nodes())
            .map(|n| ScheduledIncident {
                kind: IncidentKind::SignalOutage,
                target: IncidentTarget::Node(NodeId(n)),
                onset_tick: 0,
                duration_ticks: cfg.total_ticks() * 2,
                severity: 1.0,
            })
            .collect();
        let reg = obs::Registry::new();
        let hit = Simulation::new(&net, &ods, cfg)
            .unwrap()
            .with_registry(reg.clone())
            .with_incidents(IncidentSchedule::new(outages))
            .unwrap()
            .run(&tod)
            .unwrap();
        // Single-link trips still arrive (arrival consumes no intersection
        // capacity), but not one vehicle crossed a stop line.
        assert!(hit.stats.is_conserved());
        assert_eq!(
            counter_value(&reg, crate::metrics::TRANSFER_CROSSINGS),
            0,
            "all-red outage must freeze every crossing"
        );
        assert!(counter_value(&reg, crate::metrics::SIGNAL_RED_TICKS) > 0);
    }

    #[test]
    fn incident_schedule_is_validated() {
        let (net, ods) = setup();
        let bad = IncidentSchedule::new(vec![ScheduledIncident {
            kind: IncidentKind::Closure,
            target: IncidentTarget::Link(LinkId(9999)),
            onset_tick: 0,
            duration_ticks: 10,
            severity: 1.0,
        }]);
        assert!(Simulation::new(&net, &ods, quick_cfg(2))
            .unwrap()
            .with_incidents(bad)
            .is_err());
    }

    #[test]
    fn incident_metrics_only_appear_with_a_schedule() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 1.0);
        let cfg = quick_cfg(2);
        let tpi = cfg.ticks_per_interval();
        let clean_reg = obs::Registry::new();
        Simulation::new(&net, &ods, cfg.clone())
            .unwrap()
            .with_registry(clean_reg.clone())
            .run(&tod)
            .unwrap();
        let json = clean_reg.to_json(false);
        assert!(!json.contains(crate::metrics::INCIDENT_TICKS));
        let reg = obs::Registry::new();
        let schedule = IncidentSchedule::new(vec![ScheduledIncident {
            kind: IncidentKind::CapacityDrop,
            target: IncidentTarget::Link(LinkId(1)),
            onset_tick: 0,
            duration_ticks: tpi,
            severity: 0.5,
        }]);
        Simulation::new(&net, &ods, cfg)
            .unwrap()
            .with_registry(reg.clone())
            .with_incidents(schedule)
            .unwrap()
            .run(&tod)
            .unwrap();
        let snap = reg.snapshot(false);
        let ticks = snap
            .iter()
            .find(|m| m.name == crate::metrics::INCIDENT_TICKS)
            .expect("incident tick counter published");
        assert_eq!(ticks.value, obs::SnapshotValue::Counter(tpi));
    }

    #[test]
    fn stats_travel_time_sane() {
        let (net, ods) = setup();
        let tod = TodTensor::filled(ods.len(), 2, 1.0);
        let out = Simulation::new(&net, &ods, quick_cfg(2))
            .unwrap()
            .run(&tod)
            .unwrap();
        if out.stats.arrived > 0 {
            let mtt = out.stats.mean_travel_time_s();
            assert!(mtt > 0.0 && mtt < 3600.0, "mean travel time {mtt}");
        }
    }
}
