//! Scenario overlays: road work, accidents, special events.
//!
//! RQ3 of the paper (Figure 11) compares TOD recovery when "some roads are
//! under maintenance, occurring traffic accidents, or other special
//! cases" — i.e. when the volume->speed mapping of selected links changes
//! while the underlying TOD does not. A [`Scenario`] expresses that: a set
//! of per-link disruptions that scale the link's attainable speed,
//! saturation flow and storage capacity without touching demand.

use roadnet::{LinkId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Degradation applied to one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDisruption {
    /// The affected link.
    pub link: LinkId,
    /// Multiplier on the attainable speed, in (0, 1].
    pub speed_factor: f64,
    /// Multiplier on saturation flow (discharge rate), in (0, 1].
    pub flow_factor: f64,
    /// Multiplier on storage capacity (e.g. a closed lane), in (0, 1].
    pub capacity_factor: f64,
}

impl LinkDisruption {
    /// Road work: speed halved, one effective lane lost.
    pub fn road_work(link: LinkId) -> Self {
        Self {
            link,
            speed_factor: 0.5,
            flow_factor: 0.5,
            capacity_factor: 0.6,
        }
    }

    /// A blocking incident: the link is almost impassable.
    pub fn incident(link: LinkId) -> Self {
        Self {
            link,
            speed_factor: 0.15,
            flow_factor: 0.2,
            capacity_factor: 0.5,
        }
    }
}

/// A set of link disruptions; the "simulator 2" of §V-J.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scenario {
    disruptions: Vec<LinkDisruption>,
}

impl Scenario {
    /// The regular scenario with no disruptions ("simulator 1").
    pub fn regular() -> Self {
        Self::default()
    }

    /// Builds a scenario from disruptions; later entries override earlier
    /// ones for the same link.
    pub fn with_disruptions(disruptions: Vec<LinkDisruption>) -> Self {
        Self { disruptions }
    }

    /// Adds one disruption.
    pub fn add(&mut self, d: LinkDisruption) {
        self.disruptions.push(d);
    }

    /// All disruptions.
    pub fn disruptions(&self) -> &[LinkDisruption] {
        &self.disruptions
    }

    /// True when no link is disrupted.
    pub fn is_regular(&self) -> bool {
        self.disruptions.is_empty()
    }

    /// Effective factors for `link`: `(speed, flow, capacity)`.
    pub fn factors(&self, link: LinkId) -> (f64, f64, f64) {
        self.disruptions
            .iter()
            .rev()
            .find(|d| d.link == link)
            .map(|d| {
                (
                    d.speed_factor.clamp(1e-3, 1.0),
                    d.flow_factor.clamp(1e-3, 1.0),
                    d.capacity_factor.clamp(1e-3, 1.0),
                )
            })
            .unwrap_or((1.0, 1.0, 1.0))
    }

    /// Convenience: road work on a deterministic sample of `count` links,
    /// spread evenly over the network.
    pub fn sample_road_work(net: &RoadNetwork, count: usize) -> Self {
        let m = net.num_links();
        if m == 0 || count == 0 {
            return Self::regular();
        }
        let stride = (m / count.min(m)).max(1);
        let disruptions = (0..m)
            .step_by(stride)
            .take(count)
            .map(|i| LinkDisruption::road_work(LinkId(i)))
            .collect();
        Self { disruptions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::GridSpec;

    #[test]
    fn regular_scenario_is_identity() {
        let s = Scenario::regular();
        assert!(s.is_regular());
        assert_eq!(s.factors(LinkId(0)), (1.0, 1.0, 1.0));
    }

    #[test]
    fn disruption_applies_to_its_link_only() {
        let s = Scenario::with_disruptions(vec![LinkDisruption::road_work(LinkId(2))]);
        assert_eq!(s.factors(LinkId(2)), (0.5, 0.5, 0.6));
        assert_eq!(s.factors(LinkId(3)), (1.0, 1.0, 1.0));
    }

    #[test]
    fn later_disruption_wins() {
        let mut s = Scenario::regular();
        s.add(LinkDisruption::road_work(LinkId(1)));
        s.add(LinkDisruption::incident(LinkId(1)));
        assert_eq!(s.factors(LinkId(1)).0, 0.15);
    }

    #[test]
    fn factors_are_clamped() {
        let s = Scenario::with_disruptions(vec![LinkDisruption {
            link: LinkId(0),
            speed_factor: 0.0,
            flow_factor: 7.0,
            capacity_factor: -1.0,
        }]);
        let (sp, fl, cap) = s.factors(LinkId(0));
        assert!(sp > 0.0);
        assert!(fl <= 1.0);
        assert!(cap > 0.0);
    }

    #[test]
    fn sample_spreads_over_network() {
        let net = GridSpec::new(3, 3).build(0);
        let s = Scenario::sample_road_work(&net, 4);
        assert_eq!(s.disruptions().len(), 4);
        let links: Vec<_> = s.disruptions().iter().map(|d| d.link).collect();
        let mut sorted = links.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "distinct links");
    }

    #[test]
    fn sample_zero_is_regular() {
        let net = GridSpec::new(2, 2).build(0);
        assert!(Scenario::sample_road_work(&net, 0).is_regular());
    }
}
