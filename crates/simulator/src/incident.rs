//! Scheduled network perturbations: closures, capacity drops, signal
//! outages.
//!
//! An [`IncidentSchedule`] is a validated, sorted timeline of
//! [`ScheduledIncident`]s the engine replays deterministically: every
//! effect is a pure function of `(schedule, tick)`, so a run with a given
//! schedule is bit-identical across thread counts and replayable from the
//! fault-plan seed that generated it. The schedule also slices cleanly
//! into per-frame views ([`IncidentSchedule::clipped`]) for the streaming
//! source, which simulates each window in its own tick coordinates.

use roadnet::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an incident does to its target while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IncidentKind {
    /// The link is removed from service: zero entry capacity, routing
    /// masks it out, traffic already on the link crawls off.
    Closure,
    /// Saturation flow (and free-flow speed) scaled by `1 - severity`.
    CapacityDrop,
    /// Signal control fails: severity ≥ 0.5 is all-red, below that the
    /// controller freezes in the phase it held at onset.
    SignalOutage,
}

impl IncidentKind {
    /// Parses the fault-plan spelling of a kind.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "closure" => Some(Self::Closure),
            "capacity_drop" => Some(Self::CapacityDrop),
            "signal_outage" => Some(Self::SignalOutage),
            _ => None,
        }
    }

    /// Stable label (the inverse of [`IncidentKind::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            Self::Closure => "closure",
            Self::CapacityDrop => "capacity_drop",
            Self::SignalOutage => "signal_outage",
        }
    }

    /// Stable numeric code used in flat artifact sections.
    pub fn code(self) -> u8 {
        match self {
            Self::Closure => 0,
            Self::CapacityDrop => 1,
            Self::SignalOutage => 2,
        }
    }

    /// Inverse of [`IncidentKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Closure),
            1 => Some(Self::CapacityDrop),
            2 => Some(Self::SignalOutage),
            _ => None,
        }
    }
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What an incident targets: a single directed link, or an intersection
/// (which resolves to every link feeding it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentTarget {
    /// One directed road segment.
    Link(LinkId),
    /// An intersection: resolves to every approach (incoming link).
    Node(NodeId),
}

// The workspace serde stand-in cannot derive data-carrying enums; render
// the target as a one-key object ({"link": i} | {"node": i}) by hand.
impl Serialize for IncidentTarget {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        let (key, idx) = match self {
            Self::Link(l) => ("link", l.index()),
            Self::Node(n) => ("node", n.index()),
        };
        Value::Obj(vec![(key.to_string(), Value::UInt(idx as u64))])
    }
}

impl Deserialize for IncidentTarget {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
        if let Some(i) = v.get("link").and_then(|x| x.as_u64()) {
            return Ok(Self::Link(LinkId(i as usize)));
        }
        if let Some(i) = v.get("node").and_then(|x| x.as_u64()) {
            return Ok(Self::Node(NodeId(i as usize)));
        }
        Err(serde::Error::custom(
            "incident target: expected {\"link\": i} or {\"node\": i}",
        ))
    }
}

impl IncidentTarget {
    /// Stable numeric code used in flat artifact sections.
    pub fn code(self) -> u8 {
        match self {
            Self::Link(_) => 0,
            Self::Node(_) => 1,
        }
    }

    /// The dense index of the targeted entity.
    pub fn index(self) -> usize {
        match self {
            Self::Link(l) => l.index(),
            Self::Node(n) => n.index(),
        }
    }
}

impl fmt::Display for IncidentTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Link(l) => write!(f, "{l}"),
            Self::Node(n) => write!(f, "{n}"),
        }
    }
}

/// One scheduled perturbation, active over the half-open tick range
/// `[onset_tick, onset_tick + duration_ticks)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledIncident {
    /// What happens to the target.
    pub kind: IncidentKind,
    /// The link or intersection hit.
    pub target: IncidentTarget,
    /// Tick the incident begins.
    pub onset_tick: u64,
    /// How many ticks it lasts.
    pub duration_ticks: u64,
    /// Strength in `(0, 1]`: fraction of capacity removed for drops,
    /// crawl-speed factor for closures, outage mode for signals.
    pub severity: f64,
}

impl ScheduledIncident {
    /// First tick after the incident has cleared.
    pub fn end_tick(&self) -> u64 {
        self.onset_tick.saturating_add(self.duration_ticks)
    }

    /// Whether the incident is active at `tick`.
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.onset_tick && tick < self.end_tick()
    }

    /// Whether the active range intersects the half-open `[start, end)`.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.onset_tick < end && self.end_tick() > start
    }
}

/// A sorted timeline of incidents. Empty schedules are free: the engine
/// skips the perturbation machinery entirely.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IncidentSchedule {
    incidents: Vec<ScheduledIncident>,
}

impl IncidentSchedule {
    /// Builds a schedule, sorting incidents into a canonical order so two
    /// schedules with the same content compare and replay identically.
    pub fn new(mut incidents: Vec<ScheduledIncident>) -> Self {
        incidents.sort_by(|a, b| {
            (a.onset_tick, a.kind, a.target, a.duration_ticks).cmp(&(
                b.onset_tick,
                b.kind,
                b.target,
                b.duration_ticks,
            ))
        });
        Self { incidents }
    }

    /// True when the schedule carries no incidents.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Number of scheduled incidents.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// The incidents in canonical (onset-sorted) order.
    pub fn incidents(&self) -> &[ScheduledIncident] {
        &self.incidents
    }

    /// Number of incidents active at `tick`.
    pub fn active_count(&self, tick: u64) -> usize {
        self.incidents.iter().filter(|i| i.active_at(tick)).count()
    }

    /// Every tick at which the active set changes (onsets and
    /// clearances), sorted and deduplicated. The engine only recomputes
    /// its effective link state at these ticks.
    pub fn boundaries(&self) -> Vec<u64> {
        let mut ticks: Vec<u64> = self
            .incidents
            .iter()
            .flat_map(|i| [i.onset_tick, i.end_tick()])
            .collect();
        ticks.sort_unstable();
        ticks.dedup();
        ticks
    }

    /// Incidents whose active range intersects `[start, end)` ticks.
    pub fn overlapping(&self, start: u64, end: u64) -> Vec<ScheduledIncident> {
        self.incidents
            .iter()
            .filter(|i| i.overlaps(start, end))
            .copied()
            .collect()
    }

    /// The schedule as seen by a sub-run covering global ticks
    /// `[offset, offset + horizon)`, re-based to local tick 0. Incidents
    /// are intersected with the range and dropped when the intersection
    /// is empty — a pure function of `(offset, horizon)`, which is what
    /// makes streaming replay deterministic.
    pub fn clipped(&self, offset: u64, horizon: u64) -> IncidentSchedule {
        let end = offset.saturating_add(horizon);
        let incidents = self
            .incidents
            .iter()
            .filter(|i| i.overlaps(offset, end))
            .map(|i| {
                let onset = i.onset_tick.max(offset);
                let clear = i.end_tick().min(end);
                ScheduledIncident {
                    onset_tick: onset - offset,
                    duration_ticks: clear - onset,
                    ..*i
                }
            })
            .collect();
        IncidentSchedule::new(incidents)
    }

    /// Validates targets against a network and severities against the
    /// `(0, 1]` contract.
    pub fn validate(&self, n_links: usize, n_nodes: usize) -> Result<(), String> {
        for (i, inc) in self.incidents.iter().enumerate() {
            if !(inc.severity > 0.0 && inc.severity <= 1.0) {
                return Err(format!(
                    "incident {i}: severity {} outside (0, 1]",
                    inc.severity
                ));
            }
            if inc.duration_ticks == 0 {
                return Err(format!("incident {i}: zero duration"));
            }
            match inc.target {
                IncidentTarget::Link(l) if l.index() >= n_links => {
                    return Err(format!(
                        "incident {i}: link {l} out of range ({n_links} links)"
                    ));
                }
                IncidentTarget::Node(n) if n.index() >= n_nodes => {
                    return Err(format!(
                        "incident {i}: node {n} out of range ({n_nodes} nodes)"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inc(kind: IncidentKind, onset: u64, dur: u64) -> ScheduledIncident {
        ScheduledIncident {
            kind,
            target: IncidentTarget::Link(LinkId(1)),
            onset_tick: onset,
            duration_ticks: dur,
            severity: 0.8,
        }
    }

    #[test]
    fn activity_and_overlap_are_half_open() {
        let i = inc(IncidentKind::Closure, 10, 5);
        assert!(!i.active_at(9));
        assert!(i.active_at(10));
        assert!(i.active_at(14));
        assert!(!i.active_at(15));
        assert!(i.overlaps(0, 11));
        assert!(i.overlaps(14, 100));
        assert!(!i.overlaps(0, 10));
        assert!(!i.overlaps(15, 100));
    }

    #[test]
    fn schedule_sorts_and_reports_boundaries() {
        let s = IncidentSchedule::new(vec![
            inc(IncidentKind::SignalOutage, 20, 10),
            inc(IncidentKind::Closure, 5, 10),
        ]);
        assert_eq!(s.incidents()[0].onset_tick, 5);
        assert_eq!(s.boundaries(), vec![5, 15, 20, 30]);
        assert_eq!(s.active_count(7), 1);
        assert_eq!(s.active_count(17), 0);
        assert_eq!(s.active_count(25), 1);
    }

    #[test]
    fn clipping_rebases_and_drops_disjoint_incidents() {
        let s = IncidentSchedule::new(vec![inc(IncidentKind::Closure, 10, 20)]);
        // Frame [0, 10): incident has not started.
        assert!(s.clipped(0, 10).is_empty());
        // Frame [10, 20): fully active.
        let c = s.clipped(10, 10);
        assert_eq!(c.incidents()[0].onset_tick, 0);
        assert_eq!(c.incidents()[0].duration_ticks, 10);
        // Frame [25, 35): straddles the clearance at 30.
        let c = s.clipped(25, 10);
        assert_eq!(c.incidents()[0].onset_tick, 0);
        assert_eq!(c.incidents()[0].duration_ticks, 5);
        // Frame [5, 40): onset mid-frame.
        let c = s.clipped(5, 35);
        assert_eq!(c.incidents()[0].onset_tick, 5);
        assert_eq!(c.incidents()[0].duration_ticks, 20);
        // Frame [30, 40): cleared exactly at frame start.
        assert!(s.clipped(30, 10).is_empty());
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            IncidentKind::Closure,
            IncidentKind::CapacityDrop,
            IncidentKind::SignalOutage,
        ] {
            assert_eq!(IncidentKind::from_code(k.code()), Some(k));
            assert_eq!(IncidentKind::parse(k.label()), Some(k));
        }
        assert_eq!(IncidentKind::from_code(9), None);
        assert_eq!(IncidentKind::parse("closur"), None);
    }

    #[test]
    fn validate_rejects_bad_incidents() {
        let mut i = inc(IncidentKind::Closure, 0, 10);
        i.severity = 0.0;
        assert!(IncidentSchedule::new(vec![i]).validate(4, 4).is_err());
        let mut i = inc(IncidentKind::Closure, 0, 0);
        i.severity = 0.5;
        assert!(IncidentSchedule::new(vec![i]).validate(4, 4).is_err());
        let i = inc(IncidentKind::Closure, 0, 10);
        assert!(IncidentSchedule::new(vec![i]).validate(1, 4).is_err());
        assert!(IncidentSchedule::new(vec![i]).validate(4, 4).is_ok());
    }
}
