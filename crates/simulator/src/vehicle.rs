//! Vehicles and the car-following rule.
//!
//! We use a simplified IDM-style kinematic model: a vehicle accelerates
//! toward its desired speed with bounded acceleration, but never moves
//! further than the safe gap to its leader (or to the stop line when the
//! link head is blocked). This produces the macroscopic behaviour the
//! paper relies on — speeds fall as density rises, queues grow at red
//! lights and spill back upstream — at a fraction of full IDM's cost.

use roadnet::LinkId;
use serde::{Deserialize, Serialize};

/// Physical space one car occupies when queued (vehicle length plus
/// standstill gap), metres. Matches [`roadnet::Link::VEHICLE_FOOTPRINT_M`].
pub const FOOTPRINT_M: f64 = 7.5;

/// Queued footprint of a truck, metres.
pub const TRUCK_FOOTPRINT_M: f64 = 15.0;

/// Vehicle class: trucks are longer and accelerate more slowly, which
/// lowers effective capacity on their routes — a realism knob
/// (`SimConfig::truck_fraction`) beyond the paper's car-only fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VehicleClass {
    /// Passenger car.
    Car,
    /// Heavy vehicle.
    Truck,
}

impl VehicleClass {
    /// Queued footprint in metres.
    #[inline]
    pub fn footprint_m(self) -> f64 {
        match self {
            VehicleClass::Car => FOOTPRINT_M,
            VehicleClass::Truck => TRUCK_FOOTPRINT_M,
        }
    }

    /// Multiplier on the acceleration bound.
    #[inline]
    pub fn accel_factor(self) -> f64 {
        match self {
            VehicleClass::Car => 1.0,
            VehicleClass::Truck => 0.5,
        }
    }
}

/// Unique vehicle identifier (dense per simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VehicleId(pub u64);

/// A vehicle travelling along a fixed route.
#[derive(Debug, Clone)]
pub struct Vehicle {
    /// Identifier, assigned at spawn in spawn order.
    pub id: VehicleId,
    /// The route as a sequence of links.
    pub route: std::sync::Arc<Vec<LinkId>>,
    /// Index of the current link within `route`.
    pub leg: usize,
    /// Distance travelled along the current link, metres.
    pub pos_m: f64,
    /// Current speed, m/s.
    pub speed_mps: f64,
    /// Tick at which the vehicle entered the network.
    pub spawn_tick: u64,
    /// Vehicle class (car or truck).
    pub class: VehicleClass,
}

impl Vehicle {
    /// The link the vehicle currently occupies.
    #[inline]
    pub fn current_link(&self) -> LinkId {
        // `leg < route.len()` is a construction invariant (vehicles spawn on
        // a non-empty route and `advance` never walks past the last leg); a
        // wrong index here must crash, not return a fake link.
        // lint: allow(panic) — construction invariant; crash on violation.
        self.route[self.leg]
    }

    /// True when the current link is the route's last.
    #[inline]
    pub fn on_last_leg(&self) -> bool {
        self.leg + 1 == self.route.len()
    }

    /// The next link, if any.
    #[inline]
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.get(self.leg + 1).copied()
    }
}

/// One kinematic update: returns the new `(speed, position)` given the
/// distance headroom available this tick.
///
/// * `desired` — speed the vehicle would like to reach (speed limit x
///   scenario factor);
/// * `headroom_m` — how far the vehicle may travel this tick without
///   hitting its leader / the stop line;
/// * `accel`, `decel` — acceleration bounds (m/s^2), both positive;
/// * `dt` — tick length, seconds.
pub fn follow(
    speed: f64,
    desired: f64,
    headroom_m: f64,
    accel: f64,
    decel: f64,
    dt: f64,
) -> (f64, f64) {
    // Accelerate toward the desired speed, bounded both ways.
    let v_want = desired.min(speed + accel * dt).max(speed - decel * dt);
    // Never out-drive the headroom.
    let v_safe = (headroom_m.max(0.0)) / dt;
    let v_new = v_want.min(v_safe).max(0.0);
    (v_new, v_new * dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerates_toward_desired() {
        let (v, dx) = follow(0.0, 10.0, 1e9, 2.0, 4.5, 1.0);
        assert_eq!(v, 2.0);
        assert_eq!(dx, 2.0);
    }

    #[test]
    fn caps_at_desired_speed() {
        let (v, _) = follow(9.5, 10.0, 1e9, 2.0, 4.5, 1.0);
        assert_eq!(v, 10.0);
    }

    #[test]
    fn slows_for_short_headroom() {
        let (v, dx) = follow(10.0, 10.0, 3.0, 2.0, 4.5, 1.0);
        assert_eq!(v, 3.0);
        assert_eq!(dx, 3.0);
    }

    #[test]
    fn stops_for_zero_headroom() {
        let (v, dx) = follow(10.0, 10.0, 0.0, 2.0, 4.5, 1.0);
        assert_eq!(v, 0.0);
        assert_eq!(dx, 0.0);
    }

    #[test]
    fn negative_headroom_treated_as_zero() {
        let (v, dx) = follow(5.0, 10.0, -2.0, 2.0, 4.5, 1.0);
        assert_eq!(v, 0.0);
        assert_eq!(dx, 0.0);
    }

    #[test]
    fn deceleration_is_bounded_when_headroom_allows() {
        // Headroom allows 8 m but comfortable decel only drops 10 -> 5.5.
        let (v, _) = follow(10.0, 0.0, 8.0, 2.0, 4.5, 1.0);
        assert_eq!(v, 5.5);
    }

    #[test]
    fn speed_never_negative() {
        let (v, _) = follow(1.0, 0.0, 1e9, 2.0, 4.5, 1.0);
        assert!(v >= 0.0);
    }

    #[test]
    fn class_attributes() {
        assert!(VehicleClass::Truck.footprint_m() > VehicleClass::Car.footprint_m());
        assert!(VehicleClass::Truck.accel_factor() < VehicleClass::Car.accel_factor());
    }

    #[test]
    fn vehicle_route_accessors() {
        let v = Vehicle {
            id: VehicleId(0),
            route: std::sync::Arc::new(vec![LinkId(3), LinkId(5)]),
            leg: 0,
            pos_m: 0.0,
            speed_mps: 0.0,
            spawn_tick: 0,
            class: VehicleClass::Car,
        };
        assert_eq!(v.current_link(), LinkId(3));
        assert_eq!(v.next_link(), Some(LinkId(5)));
        assert!(!v.on_last_leg());
    }
}
