//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// How vehicles pick their route at departure (§IV-C: "people will choose
/// the shortest or fastest route based on real-time traffic conditions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Shortest path by physical length, fixed per OD.
    Shortest,
    /// Fastest path at free-flow speeds, fixed per OD.
    FreeFlowFastest,
    /// Fastest path under the speeds observed during the previous completed
    /// interval ("real-time traffic conditions"); falls back to free-flow
    /// for the first interval.
    TimeDependent,
}

/// Signal control strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignalControl {
    /// Two-phase fixed-time plans (the default; matches CityFlow's
    /// synthetic-grid plans).
    FixedTime,
    /// Two-phase vehicle actuation: green holds while demand keeps
    /// arriving, gaps out otherwise (see `signal::ActuatedPlan`).
    Actuated,
}

/// Configuration for one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Integration step in seconds.
    pub tick_s: f64,
    /// Length of one observation interval in seconds (the paper uses
    /// 10-minute intervals).
    pub interval_s: f64,
    /// Number of observation intervals `T` (the paper's 2-hour horizon at
    /// 10-minute intervals gives T = 12).
    pub intervals: usize,
    /// Extra simulated seconds after the demand horizon so late vehicles
    /// can clear (their ticks are not observed).
    pub cooldown_s: f64,
    /// RNG seed: controls spawn-node choice within regions and arrival
    /// jitter.
    pub seed: u64,
    /// Routing policy at departure.
    pub routing: RoutingPolicy,
    /// Maximum vehicle acceleration, m/s^2.
    pub max_accel: f64,
    /// Comfortable deceleration bound used by the safe-gap rule, m/s^2.
    pub max_decel: f64,
    /// Saturation flow per lane, vehicles/second (1800 veh/h/lane at 0.5).
    pub saturation_flow_per_lane: f64,
    /// Traffic-signal cycle length in seconds (fixed-time control).
    pub signal_cycle_s: f64,
    /// Signal control strategy.
    pub signal_control: SignalControl,
    /// Fraction of spawned vehicles that are trucks (longer footprint,
    /// slower acceleration). 0 reproduces the paper's car-only fleet.
    pub truck_fraction: f64,
    /// Record one [`crate::engine::TripRecord`] per spawned vehicle
    /// (needed by the taxi-trajectory sampling pipeline; off by default to
    /// keep large runs lean).
    pub record_trips: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tick_s: 1.0,
            interval_s: 600.0,
            intervals: 12,
            cooldown_s: 600.0,
            seed: 0,
            routing: RoutingPolicy::FreeFlowFastest,
            max_accel: 2.0,
            max_decel: 4.5,
            saturation_flow_per_lane: 0.5,
            signal_cycle_s: 30.0,
            signal_control: SignalControl::FixedTime,
            truck_fraction: 0.0,
            record_trips: false,
        }
    }
}

impl SimConfig {
    /// Sets the number of observation intervals.
    pub fn with_intervals(mut self, t: usize) -> Self {
        self.intervals = t;
        self
    }

    /// Sets the interval length in seconds.
    pub fn with_interval_s(mut self, s: f64) -> Self {
        self.interval_s = s;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Enables per-trip records in the output.
    pub fn with_trip_records(mut self) -> Self {
        self.record_trips = true;
        self
    }

    /// Ticks per observation interval.
    pub fn ticks_per_interval(&self) -> u64 {
        (self.interval_s / self.tick_s).round().max(1.0) as u64
    }

    /// Total observed ticks (demand horizon).
    pub fn horizon_ticks(&self) -> u64 {
        self.ticks_per_interval() * self.intervals as u64
    }

    /// Total simulated ticks including cooldown.
    pub fn total_ticks(&self) -> u64 {
        self.horizon_ticks() + (self.cooldown_s / self.tick_s).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_horizon() {
        let c = SimConfig::default();
        assert_eq!(c.intervals, 12);
        assert_eq!(c.ticks_per_interval(), 600);
        assert_eq!(c.horizon_ticks(), 7200); // 2 hours
        assert_eq!(c.total_ticks(), 7800);
    }

    #[test]
    fn builder_setters() {
        let c = SimConfig::default()
            .with_intervals(4)
            .with_interval_s(300.0)
            .with_seed(9)
            .with_routing(RoutingPolicy::TimeDependent);
        assert_eq!(c.intervals, 4);
        assert_eq!(c.ticks_per_interval(), 300);
        assert_eq!(c.seed, 9);
        assert_eq!(c.routing, RoutingPolicy::TimeDependent);
    }

    #[test]
    fn ticks_never_zero() {
        let c = SimConfig::default().with_interval_s(0.1);
        assert!(c.ticks_per_interval() >= 1);
    }
}
