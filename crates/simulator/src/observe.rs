//! Observation of per-link volume and speed.
//!
//! Matches the paper's data model (§III): for every link `l_j` and interval
//! `t` we record
//!
//! * **volume** `q_{j,t}` — the number of vehicles entering the link during
//!   the interval, and
//! * **speed** `v_{j,t}` — the time-average of the link's instantaneous
//!   space-mean vehicle speed. Ticks where the link is empty contribute the
//!   link's attainable free-flow speed, mirroring how map providers report
//!   free-flowing speed for uncongested roads (the paper's "speed data can
//!   be easily probed by a few vehicles").

use roadnet::{LinkId, LinkTensor};

/// Accumulates observations during a run and finalises into tensors.
///
/// Per-tick recordings land in flat per-link scratch vectors (a plain
/// indexed `+=`, no tensor addressing); the scratch is flushed into the
/// interval tensors once per interval roll. Because every tensor cell
/// receives ticks from exactly one interval, scratch accumulation performs
/// the *same additions in the same order* as direct per-tick tensor writes
/// — the finalised tensors are bit-identical.
#[derive(Debug)]
pub struct Observer {
    t: usize,
    ticks_per_interval: u64,
    /// Interval the scratch vectors currently accumulate.
    cur: usize,
    vol_scratch: Vec<f64>,
    speed_scratch: Vec<f64>,
    count_scratch: Vec<f64>,
    volume: LinkTensor,
    /// Sum of per-tick space-mean speeds, per (link, interval).
    speed_sum: LinkTensor,
    /// Sum of per-tick vehicle counts, per (link, interval).
    count_sum: LinkTensor,
}

impl Observer {
    /// Creates an observer for `m` links over `t` intervals.
    pub fn new(m: usize, t: usize, ticks_per_interval: u64) -> Self {
        Self {
            t,
            ticks_per_interval: ticks_per_interval.max(1),
            cur: 0,
            vol_scratch: vec![0.0; m],
            speed_scratch: vec![0.0; m],
            count_scratch: vec![0.0; m],
            volume: LinkTensor::zeros(m, t),
            speed_sum: LinkTensor::zeros(m, t),
            count_sum: LinkTensor::zeros(m, t),
        }
    }

    /// Moves the scratch accumulators into the tensors for the interval
    /// they belong to and retargets them at `next`.
    fn roll(&mut self, next: usize) {
        self.flush();
        self.cur = next;
    }

    fn flush(&mut self) {
        if self.cur < self.t {
            let rows = self
                .vol_scratch
                .iter()
                .zip(self.speed_scratch.iter())
                .zip(self.count_scratch.iter())
                .enumerate();
            for (li, ((&vol, &spd), &cnt)) in rows {
                let l = LinkId(li);
                self.volume.add_at(l, self.cur, vol);
                self.speed_sum.add_at(l, self.cur, spd);
                self.count_sum.add_at(l, self.cur, cnt);
            }
        }
        self.vol_scratch.fill(0.0);
        self.speed_scratch.fill(0.0);
        self.count_scratch.fill(0.0);
    }

    /// Records a vehicle entering `link` during `interval`. Entries during
    /// the cooldown (interval >= T) are ignored.
    #[inline]
    pub fn record_entry(&mut self, link: LinkId, interval: usize) {
        if interval >= self.t {
            return;
        }
        if interval != self.cur {
            self.roll(interval);
        }
        if let Some(v) = self.vol_scratch.get_mut(link.index()) {
            *v += 1.0;
        }
    }

    /// Records this tick's space-mean speed for `link`: the mean speed of
    /// its vehicles, or `free_flow` when the link is empty.
    #[inline]
    pub fn record_tick(
        &mut self,
        link: LinkId,
        interval: usize,
        vehicle_speed_sum: f64,
        vehicle_count: usize,
        free_flow: f64,
    ) {
        if interval >= self.t {
            return;
        }
        if interval != self.cur {
            self.roll(interval);
        }
        let mean = if vehicle_count == 0 {
            free_flow
        } else {
            vehicle_speed_sum / vehicle_count as f64
        };
        let li = link.index();
        if let (Some(s), Some(c)) = (
            self.speed_scratch.get_mut(li),
            self.count_scratch.get_mut(li),
        ) {
            *s += mean;
            *c += vehicle_count as f64;
        }
    }

    /// Mean speed accumulated so far for `(link, interval)`. Exact once the
    /// interval has completed; partial (biased low) while it is in
    /// progress. Used by time-dependent routing, which only queries
    /// completed intervals.
    pub fn mean_speed(&self, link: LinkId, interval: usize) -> f64 {
        if interval >= self.t {
            return f64::NAN;
        }
        let mut sum = self.speed_sum.get(link, interval);
        // The queried interval may still live in the scratch (routing asks
        // for the just-completed interval before its flush is triggered by
        // the first recording of the new one).
        if interval == self.cur {
            sum += self.speed_scratch.get(link.index()).copied().unwrap_or(0.0);
        }
        sum / self.ticks_per_interval as f64
    }

    /// Finalises into `(volume, speed, occupancy)` tensors. Occupancy is
    /// the time-mean vehicle count on the link per interval — the density
    /// axis of a macroscopic fundamental diagram.
    pub fn finalize(mut self) -> (LinkTensor, LinkTensor, LinkTensor) {
        self.flush();
        let mut speed = self.speed_sum;
        let mut occupancy = self.count_sum;
        let ticks = self.ticks_per_interval as f64;
        speed.map_inplace(|s| s / ticks);
        occupancy.map_inplace(|c| c / ticks);
        (self.volume, speed, occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_counts_entries() {
        let mut o = Observer::new(2, 2, 10);
        o.record_entry(LinkId(0), 0);
        o.record_entry(LinkId(0), 0);
        o.record_entry(LinkId(1), 1);
        let (vol, _, _) = o.finalize();
        assert_eq!(vol.get(LinkId(0), 0), 2.0);
        assert_eq!(vol.get(LinkId(1), 1), 1.0);
        assert_eq!(vol.get(LinkId(1), 0), 0.0);
    }

    #[test]
    fn cooldown_entries_ignored() {
        let mut o = Observer::new(1, 2, 10);
        o.record_entry(LinkId(0), 2);
        o.record_entry(LinkId(0), 99);
        let (vol, _, _) = o.finalize();
        assert_eq!(vol.total(), 0.0);
    }

    #[test]
    fn empty_link_reports_free_flow() {
        let mut o = Observer::new(1, 1, 4);
        for _ in 0..4 {
            o.record_tick(LinkId(0), 0, 0.0, 0, 13.0);
        }
        let (_, speed, _) = o.finalize();
        assert!((speed.get(LinkId(0), 0) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn speed_is_tick_average_of_space_means() {
        let mut o = Observer::new(1, 1, 2);
        // tick 1: two vehicles at 4 and 6 -> mean 5; tick 2: empty -> 13
        o.record_tick(LinkId(0), 0, 10.0, 2, 13.0);
        o.record_tick(LinkId(0), 0, 0.0, 0, 13.0);
        let (_, speed, _) = o.finalize();
        assert!((speed.get(LinkId(0), 0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_is_time_mean_count() {
        let mut o = Observer::new(1, 1, 4);
        o.record_tick(LinkId(0), 0, 20.0, 4, 13.0);
        o.record_tick(LinkId(0), 0, 10.0, 2, 13.0);
        o.record_tick(LinkId(0), 0, 0.0, 0, 13.0);
        o.record_tick(LinkId(0), 0, 0.0, 0, 13.0);
        let (_, _, occ) = o.finalize();
        assert!((occ.get(LinkId(0), 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn congestion_lowers_reported_speed() {
        let mut free = Observer::new(1, 1, 3);
        let mut jam = Observer::new(1, 1, 3);
        for _ in 0..3 {
            free.record_tick(LinkId(0), 0, 0.0, 0, 13.0);
            jam.record_tick(LinkId(0), 0, 2.0, 2, 13.0); // crawling
        }
        let (_, vf, _) = free.finalize();
        let (_, vj, _) = jam.finalize();
        assert!(vj.get(LinkId(0), 0) < vf.get(LinkId(0), 0));
    }
}
