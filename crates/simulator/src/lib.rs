//! # simulator — a deterministic microscopic traffic simulator
//!
//! This crate is the workspace's substitute for CityFlow [Zhang et al.,
//! WWW'19], the micro-simulator the paper uses as its forward map
//! `TOD -> (volume, speed)` (§V-B). It simulates individual vehicles:
//!
//! * car-following with bounded acceleration and safe-gap constraints
//!   ([`vehicle`]),
//! * signalised intersections with fixed-time two-phase plans ([`signal`]),
//! * finite link storage with spillback — congestion propagates upstream,
//!   which is exactly the delayed-influence phenomenon the paper's dynamic
//!   attention network (§IV-C) is designed to learn,
//! * demand spawned from a [`roadnet::TodTensor`] ([`demand`]),
//! * per-link per-interval volume and mean-speed observation ([`observe`]),
//! * scenario overlays (road work / accidents) that degrade selected links
//!   (RQ3, Figure 11) ([`scenario`]).
//!
//! Everything is deterministic given the config seed: identical inputs
//! produce bit-identical observation tensors.
//!
//! ```
//! use roadnet::presets::synthetic_grid;
//! use roadnet::{OdSet, TodTensor};
//! use simulator::{SimConfig, Simulation};
//!
//! let net = synthetic_grid();
//! let ods = OdSet::all_pairs(&net);
//! // 2 vehicles/interval on every OD pair, 4 intervals
//! let tod = TodTensor::filled(ods.len(), 4, 2.0);
//! let cfg = SimConfig::default().with_intervals(4);
//! let out = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
//! assert_eq!(out.volume.rows(), net.num_links());
//! assert!(out.stats.spawned > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod demand;
pub mod engine;
pub mod incident;
pub mod metrics;
pub mod observe;
pub mod scenario;
pub mod signal;
pub mod vehicle;

pub use config::{RoutingPolicy, SignalControl, SimConfig};
pub use engine::{SimOutput, SimStats, Simulation};
pub use incident::{IncidentKind, IncidentSchedule, IncidentTarget, ScheduledIncident};
pub use scenario::{LinkDisruption, Scenario};
