//! Behavioural tests of the traffic model: the macroscopic phenomena the
//! OVS attention network is designed to learn must actually emerge from
//! the microscopic rules.

use roadnet::network::NetworkBuilder;
use roadnet::{LinkId, NodeId, OdPair, OdSet, Point, RegionId, TodTensor};
use simulator::{LinkDisruption, Scenario, SimConfig, Simulation};

/// A corridor of `n` links in a row (one-way), one region per node, with
/// unsignalised intermediate nodes so only car-following dynamics act.
fn corridor(n: usize) -> (roadnet::RoadNetwork, OdSet) {
    let mut b = NetworkBuilder::new();
    let nodes: Vec<NodeId> = (0..=n)
        .map(|i| b.add_node(Point::new(i as f64 * 300.0, 0.0)))
        .collect();
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], 1, 10.0).unwrap();
    }
    for &nd in &nodes {
        b.set_signalized(nd, false).unwrap();
    }
    let net = b.assign_regions_grid(1, n + 1).build().unwrap();
    let ods = OdSet::from_pairs(vec![OdPair::new(
        RegionId(0),
        RegionId(net.num_regions() - 1),
    )
    .unwrap()])
    .unwrap();
    (net, ods)
}

fn cfg(t: usize) -> SimConfig {
    SimConfig::default()
        .with_intervals(t)
        .with_interval_s(300.0)
}

#[test]
fn platoon_travels_downstream_with_delay() {
    let (net, ods) = corridor(6);
    // One burst of demand in the first interval only.
    let mut tod = TodTensor::zeros(1, 4);
    tod.set(roadnet::OdPairId(0), 0, 30.0);
    let out = Simulation::new(&net, &ods, cfg(4))
        .unwrap()
        .run(&tod)
        .unwrap();
    // The first link sees its volume in interval 0; the last link sees a
    // nonzero share later (free-flow crossing of 6 x 300 m at 10 m/s is
    // 180 s < 300 s, but departures spread over the whole interval).
    let first = LinkId(0);
    let last = LinkId(net.num_links() - 1);
    assert!(out.volume.get(first, 0) > 0.0);
    let last_total: f64 = out.volume.row(last).iter().sum();
    assert!(last_total > 0.0, "platoon must reach the end");
    // No volume before it could physically arrive: link 5 starts 1500 m
    // downstream; the earliest arrival is 150 s into interval 0, so all
    // of it lands in intervals 0-1; interval 3 must be empty.
    assert_eq!(out.volume.get(last, 3), 0.0);
}

#[test]
fn bottleneck_spills_back_upstream() {
    let (net, ods) = corridor(4);
    let t = 3;
    let tod = TodTensor::filled(1, t, 80.0);
    let free = Simulation::new(&net, &ods, cfg(t))
        .unwrap()
        .run(&tod)
        .unwrap();
    // Choke the third link hard.
    let choke = LinkId(2);
    let scenario = Scenario::with_disruptions(vec![LinkDisruption {
        link: choke,
        speed_factor: 0.1,
        flow_factor: 0.1,
        capacity_factor: 0.3,
    }]);
    let jam = Simulation::with_scenario(&net, &ods, cfg(t), scenario)
        .unwrap()
        .run(&tod)
        .unwrap();
    // The *upstream* links must also slow down (spillback), even though
    // they are not disrupted themselves.
    let upstream = LinkId(1);
    let mean = |o: &simulator::SimOutput, l: LinkId| o.speed.row(l).iter().sum::<f64>() / t as f64;
    assert!(
        mean(&jam, upstream) < mean(&free, upstream) - 0.5,
        "spillback: upstream {:.2} (jam) vs {:.2} (free)",
        mean(&jam, upstream),
        mean(&free, upstream)
    );
}

#[test]
fn signals_reduce_throughput() {
    // Same corridor, but with signalised intermediate nodes: mean speed
    // must drop relative to the unsignalised version.
    let build = |signals: bool| {
        let mut b = NetworkBuilder::new();
        let nodes: Vec<NodeId> = (0..=5)
            .map(|i| b.add_node(Point::new(i as f64 * 300.0, 0.0)))
            .collect();
        for w in nodes.windows(2) {
            b.add_link(w[0], w[1], 1, 10.0).unwrap();
        }
        if !signals {
            for &nd in &nodes {
                b.set_signalized(nd, false).unwrap();
            }
        }
        let net = b.assign_regions_grid(1, 6).build().unwrap();
        let ods = OdSet::from_pairs(vec![OdPair::new(
            RegionId(0),
            RegionId(net.num_regions() - 1),
        )
        .unwrap()])
        .unwrap();
        let tod = TodTensor::filled(1, 2, 20.0);
        let out = Simulation::new(&net, &ods, cfg(2))
            .unwrap()
            .run(&tod)
            .unwrap();
        out.speed.total() / out.speed.as_slice().len() as f64
    };
    let free_flow = build(false);
    let signalised = build(true);
    assert!(
        signalised < free_flow,
        "signals must slow traffic: {signalised} vs {free_flow}"
    );
}

#[test]
fn storage_capacity_limits_entries() {
    // A single 150 m link holds at most 20 vehicles; pushing far more
    // demand must leave trips queued at the end of a short horizon.
    let mut b = NetworkBuilder::new();
    let a = b.add_node(Point::new(0.0, 0.0));
    let c = b.add_node(Point::new(150.0, 0.0));
    b.add_link(a, c, 1, 10.0).unwrap();
    let net = b.assign_regions_grid(1, 2).build().unwrap();
    let ods = OdSet::from_pairs(vec![OdPair::new(RegionId(0), RegionId(1)).unwrap()]).unwrap();
    let tod = TodTensor::filled(1, 1, 500.0);
    let cfg = SimConfig {
        cooldown_s: 0.0,
        ..SimConfig::default().with_intervals(1).with_interval_s(60.0)
    };
    let out = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
    assert!(out.stats.queued_at_end > 0, "{:?}", out.stats);
    assert!(out.stats.is_conserved());
    // Entries cannot exceed what physically fits + discharges.
    assert!(out.volume.get(LinkId(0), 0) < 100.0);
}

#[test]
fn cooldown_lets_late_vehicles_finish() {
    let (net, ods) = corridor(4);
    // Demand only in the last interval; without cooldown most trips are
    // still en route.
    let mut tod = TodTensor::zeros(1, 2);
    tod.set(roadnet::OdPairId(0), 1, 20.0);
    let no_cool = SimConfig {
        cooldown_s: 0.0,
        ..cfg(2)
    };
    let with_cool = SimConfig {
        cooldown_s: 600.0,
        ..cfg(2)
    };
    let a = Simulation::new(&net, &ods, no_cool)
        .unwrap()
        .run(&tod)
        .unwrap();
    let b = Simulation::new(&net, &ods, with_cool)
        .unwrap()
        .run(&tod)
        .unwrap();
    assert!(b.stats.arrived > a.stats.arrived);
    // Observations must be identical: cooldown ticks are not recorded.
    assert_eq!(a.volume, b.volume);
    assert_eq!(a.speed, b.speed);
}

#[test]
fn time_dependent_routing_avoids_disruption() {
    // Diamond network: a -> {b | c} -> d, equal free-flow costs. Road work
    // on the north branch should shift time-dependent traffic south after
    // the first interval.
    let mut b = NetworkBuilder::new();
    let na = b.add_node(Point::new(0.0, 0.0));
    let nb = b.add_node(Point::new(500.0, 400.0));
    let nc = b.add_node(Point::new(500.0, -400.0));
    let nd = b.add_node(Point::new(1000.0, 0.0));
    b.add_road(na, nb, 1, 10.0).unwrap();
    b.add_road(nb, nd, 1, 10.0).unwrap();
    b.add_road(na, nc, 1, 10.0).unwrap();
    b.add_road(nc, nd, 1, 10.0).unwrap();
    let net = b.assign_regions_grid(1, 2).build().unwrap();
    // region 0 holds a & (one of b/c), region 1 the rest; use node-based
    // OD via regions at the two extremes.
    let ods = OdSet::all_pairs(&net);
    let tod = TodTensor::filled(ods.len(), 3, 10.0);
    let north_out = net.out_links(na)[0];

    let scenario = Scenario::with_disruptions(vec![LinkDisruption::incident(north_out)]);
    let cfg_td = SimConfig::default()
        .with_intervals(3)
        .with_interval_s(300.0)
        .with_routing(simulator::RoutingPolicy::TimeDependent);
    let out = Simulation::with_scenario(&net, &ods, cfg_td, scenario.clone())
        .unwrap()
        .run(&tod)
        .unwrap();
    // With time-dependent routing, later intervals put less volume on the
    // incident link than the first (drivers re-route around it).
    let v0 = out.volume.get(north_out, 0);
    let v2 = out.volume.get(north_out, 2);
    assert!(
        v2 <= v0,
        "rerouting should not increase incident-link volume: {v0} -> {v2}"
    );
}

#[test]
fn trucks_slow_the_network() {
    let (net, ods) = corridor(5);
    let t = 3;
    let tod = TodTensor::filled(1, t, 60.0);
    let mean_speed = |truck_fraction: f64| {
        let cfg = SimConfig {
            truck_fraction,
            ..cfg(t)
        };
        let out = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
        out.speed.total() / out.speed.as_slice().len() as f64
    };
    let cars_only = mean_speed(0.0);
    let mixed = mean_speed(0.5);
    assert!(
        mixed < cars_only,
        "trucks must reduce mean speed: {mixed} vs {cars_only}"
    );
}

#[test]
fn truck_fraction_zero_is_bit_identical_to_default() {
    let (net, ods) = corridor(4);
    let tod = TodTensor::filled(1, 2, 10.0);
    let a = Simulation::new(&net, &ods, cfg(2))
        .unwrap()
        .run(&tod)
        .unwrap();
    let b = Simulation::new(
        &net,
        &ods,
        SimConfig {
            truck_fraction: 0.0,
            ..cfg(2)
        },
    )
    .unwrap()
    .run(&tod)
    .unwrap();
    assert_eq!(a.speed, b.speed);
    assert_eq!(a.volume, b.volume);
}

#[test]
fn actuated_signals_beat_fixed_time_on_asymmetric_demand() {
    // A one-way corridor with signalised nodes carries all the demand;
    // the cross streets are empty. Fixed-time control wastes half of every
    // cycle on the empty phase; actuation should hold green for the
    // corridor and move traffic faster.
    use simulator::SignalControl;
    let mut b = NetworkBuilder::new();
    let nodes: Vec<NodeId> = (0..=5)
        .map(|i| b.add_node(Point::new(i as f64 * 300.0, 0.0)))
        .collect();
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], 1, 10.0).unwrap();
    }
    let net = b.assign_regions_grid(1, 6).build().unwrap();
    let ods = OdSet::from_pairs(vec![OdPair::new(
        RegionId(0),
        RegionId(net.num_regions() - 1),
    )
    .unwrap()])
    .unwrap();
    let tod = TodTensor::filled(1, 2, 25.0);
    let run = |control: SignalControl| {
        let cfg = SimConfig {
            signal_control: control,
            ..cfg(2)
        };
        let out = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
        out.speed.total() / out.speed.as_slice().len() as f64
    };
    let fixed = run(SignalControl::FixedTime);
    let actuated = run(SignalControl::Actuated);
    assert!(
        actuated > fixed,
        "actuation must help one-sided demand: {actuated} vs fixed {fixed}"
    );
}

#[test]
fn fundamental_diagram_emerges() {
    // Across demand levels, per-link (occupancy, speed) samples must show
    // the fundamental-diagram shape: speed decreases as occupancy rises.
    let (net, ods) = corridor(4);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for &demand in &[5.0, 20.0, 40.0, 80.0] {
        let tod = TodTensor::filled(1, 2, demand);
        let out = Simulation::new(&net, &ods, cfg(2))
            .unwrap()
            .run(&tod)
            .unwrap();
        for j in 0..net.num_links() {
            for t in 0..2 {
                let l = LinkId(j);
                samples.push((out.occupancy.get(l, t), out.speed.get(l, t)));
            }
        }
    }
    // Spearman-like check: split by median occupancy; the dense half must
    // be slower on average.
    let mut occs: Vec<f64> = samples.iter().map(|s| s.0).collect();
    occs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = occs[occs.len() / 2];
    let mean_speed = |pred: &dyn Fn(f64) -> bool| {
        let sel: Vec<f64> = samples
            .iter()
            .filter(|(o, _)| pred(*o))
            .map(|(_, v)| *v)
            .collect();
        sel.iter().sum::<f64>() / sel.len().max(1) as f64
    };
    let sparse = mean_speed(&|o| o <= median);
    let dense = mean_speed(&|o| o > median);
    assert!(
        dense < sparse,
        "dense links must be slower: {dense} vs {sparse}"
    );
}
