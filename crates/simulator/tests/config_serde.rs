//! Serde round-trips of the simulator's configuration surface — configs
//! are the deployment artifact users version-control.

use simulator::{LinkDisruption, RoutingPolicy, Scenario, SignalControl, SimConfig};

#[test]
fn sim_config_round_trips() {
    let cfg = SimConfig {
        truck_fraction: 0.2,
        signal_control: SignalControl::Actuated,
        record_trips: true,
        ..SimConfig::default()
            .with_intervals(7)
            .with_interval_s(450.0)
            .with_seed(99)
            .with_routing(RoutingPolicy::TimeDependent)
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.intervals, 7);
    assert_eq!(back.interval_s, 450.0);
    assert_eq!(back.seed, 99);
    assert_eq!(back.routing, RoutingPolicy::TimeDependent);
    assert_eq!(back.signal_control, SignalControl::Actuated);
    assert_eq!(back.truck_fraction, 0.2);
    assert!(back.record_trips);
}

#[test]
fn scenario_round_trips() {
    let s = Scenario::with_disruptions(vec![
        LinkDisruption::road_work(roadnet::LinkId(3)),
        LinkDisruption::incident(roadnet::LinkId(7)),
    ]);
    let json = serde_json::to_string(&s).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back.disruptions().len(), 2);
    assert_eq!(
        back.factors(roadnet::LinkId(3)),
        s.factors(roadnet::LinkId(3))
    );
    assert_eq!(
        back.factors(roadnet::LinkId(7)),
        s.factors(roadnet::LinkId(7))
    );
}

#[test]
fn configs_affect_runs_but_serde_does_not() {
    use roadnet::presets::synthetic_grid;
    use roadnet::{OdSet, TodTensor};
    use simulator::Simulation;
    let net = synthetic_grid();
    let ods = OdSet::all_pairs(&net);
    let tod = TodTensor::filled(ods.len(), 2, 2.0);
    let cfg = SimConfig::default()
        .with_intervals(2)
        .with_interval_s(120.0);
    let json = serde_json::to_string(&cfg).unwrap();
    let cfg2: SimConfig = serde_json::from_str(&json).unwrap();
    let a = Simulation::new(&net, &ods, cfg).unwrap().run(&tod).unwrap();
    let b = Simulation::new(&net, &ods, cfg2)
        .unwrap()
        .run(&tod)
        .unwrap();
    assert_eq!(a.speed, b.speed);
    assert_eq!(a.volume, b.volume);
}
