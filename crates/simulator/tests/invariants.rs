//! Physical-invariant battery for the engine, driven by the obs layer.
//!
//! Each test injects a local [`obs::Registry`] so the assertions see only
//! the counters of its own runs. The engine re-checks its conservation
//! laws *every tick* and counts breaches into `*_violations_total`
//! counters — these tests assert that those monitors exist, fire on the
//! right metrics, and read zero across light, saturated, and disrupted
//! traffic regimes.

use obs::Registry;
use roadnet::presets::synthetic_grid;
use roadnet::{OdSet, RoadNetwork, TodTensor};
use simulator::metrics as m;
use simulator::{RoutingPolicy, SimConfig, SimOutput, Simulation};

fn setup() -> (RoadNetwork, OdSet) {
    let net = synthetic_grid();
    let ods = OdSet::all_pairs(&net);
    (net, ods)
}

/// Runs one simulation against a fresh local registry.
fn run_with_registry(cfg: SimConfig, demand: f64, t: usize) -> (Registry, SimOutput) {
    let (net, ods) = setup();
    let tod = TodTensor::filled(ods.len(), t, demand);
    let reg = Registry::new();
    let out = Simulation::new(&net, &ods, cfg)
        .unwrap()
        .with_registry(reg.clone())
        .run(&tod)
        .unwrap();
    (reg, out)
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.counter(name).get()
}

#[test]
fn conservation_law_holds_at_every_step() {
    for demand in [0.5, 3.0, 20.0] {
        let cfg = SimConfig::default()
            .with_intervals(2)
            .with_interval_s(120.0);
        let (reg, out) = run_with_registry(cfg, demand, 2);
        assert_eq!(
            counter(&reg, m::CONSERVATION_VIOLATIONS),
            0,
            "spawned == arrived + in_network must hold every tick (demand {demand})"
        );
        assert_eq!(
            counter(&reg, m::LINK_CONSERVATION_VIOLATIONS),
            0,
            "per-link transfer bookkeeping must balance (demand {demand})"
        );
        assert!(out.stats.is_conserved());
    }
}

#[test]
fn conservation_holds_under_dynamic_routing() {
    let cfg = SimConfig::default()
        .with_intervals(2)
        .with_interval_s(120.0)
        .with_routing(RoutingPolicy::TimeDependent);
    let (reg, _) = run_with_registry(cfg, 4.0, 2);
    assert_eq!(counter(&reg, m::CONSERVATION_VIOLATIONS), 0);
    assert_eq!(counter(&reg, m::LINK_CONSERVATION_VIOLATIONS), 0);
}

#[test]
fn obs_counters_agree_with_run_stats() {
    let cfg = SimConfig::default()
        .with_intervals(2)
        .with_interval_s(120.0);
    let (reg, out) = run_with_registry(cfg, 3.0, 2);
    assert_eq!(counter(&reg, m::RUNS), 1);
    assert_eq!(counter(&reg, m::SPAWNED), out.stats.spawned);
    assert_eq!(counter(&reg, m::ARRIVED), out.stats.arrived);
    assert_eq!(counter(&reg, m::UNROUTABLE), out.stats.unroutable);
    assert_eq!(counter(&reg, m::ACTIVE_AT_END), out.stats.active_at_end);
    assert_eq!(counter(&reg, m::QUEUED_AT_END), out.stats.queued_at_end);
    // Every arrival and every crossing passes a stop line.
    assert!(counter(&reg, m::TRANSFER_CROSSINGS) >= out.stats.arrived);
    assert!(counter(&reg, m::SIGNAL_GREEN_TICKS) >= counter(&reg, m::TRANSFER_CROSSINGS));
}

#[test]
fn speeds_clamped_and_volumes_non_negative() {
    let cfg = SimConfig::default()
        .with_intervals(3)
        .with_interval_s(120.0);
    let (reg, out) = run_with_registry(cfg, 10.0, 3);
    assert_eq!(
        counter(&reg, m::SPEED_CLAMP_VIOLATIONS),
        0,
        "finalized speeds must stay in [0, v_max]"
    );
    assert_eq!(
        counter(&reg, m::NEGATIVE_VOLUME_VIOLATIONS),
        0,
        "finalized volumes must be non-negative"
    );
    // Cross-check the monitors against the tensors themselves.
    let (net, _) = setup();
    for l in net.links() {
        for t in 0..3 {
            let v = out.speed.get(l.id, t);
            assert!((0.0..=l.speed_limit_mps + 1e-9).contains(&v));
            assert!(out.volume.get(l.id, t) >= 0.0);
        }
    }
}

#[test]
fn spillback_grows_monotonically_with_demand() {
    let spillback_at = |demand: f64| {
        let cfg = SimConfig::default()
            .with_intervals(2)
            .with_interval_s(180.0);
        let (reg, _) = run_with_registry(cfg, demand, 2);
        counter(&reg, m::SPILLBACK_BLOCKED_TICKS)
    };
    let light = spillback_at(0.5);
    let medium = spillback_at(8.0);
    let heavy = spillback_at(40.0);
    assert!(
        heavy > 0,
        "saturating demand must produce spillback-blocked transfers"
    );
    assert!(
        light <= medium && medium <= heavy,
        "spillback must grow with demand: {light} <= {medium} <= {heavy}"
    );
}

#[test]
fn step_histogram_covers_every_tick() {
    let cfg = SimConfig::default()
        .with_intervals(2)
        .with_interval_s(120.0);
    let (reg, _) = run_with_registry(cfg, 2.0, 2);
    let hist = reg.histogram(m::STEP_IN_NETWORK, obs::COUNT_BUCKETS);
    assert_eq!(hist.count(), counter(&reg, m::TICKS));
    assert!(hist.count() > 0);
}

#[test]
fn metrics_snapshot_is_deterministic_across_identical_runs() {
    let run = || {
        let cfg = SimConfig::default()
            .with_intervals(2)
            .with_interval_s(120.0)
            .with_seed(17);
        let (reg, _) = run_with_registry(cfg, 3.0, 2);
        reg.to_json_stable()
    };
    assert_eq!(run(), run(), "same seed must give byte-identical metrics");
}

#[test]
fn local_registry_does_not_leak_into_global() {
    let before = obs::global().counter(m::RUNS).get();
    let cfg = SimConfig::default().with_intervals(1).with_interval_s(60.0);
    let (_reg, _) = run_with_registry(cfg, 1.0, 1);
    assert_eq!(
        obs::global().counter(m::RUNS).get(),
        before,
        "injected registry must fully replace the global sink"
    );
}
