//! End-to-end tests against a live server: endpoint payloads, the
//! conditional-GET round trip, hot-swap behaviour under concurrent
//! readers, byte-identity across thread counts, and corrupt-artifact
//! fallback via the fault injector.

use checkpoint::format::ArtifactBuilder;
use checkpoint::store::{ArtifactStore, Provenance};
use checkpoint::SnapshotSource;
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use fault::storage::corrupt_artifact_bytes;
use fault::StorageFaults;
use ovs_core::artifact::{INCIDENTS_SECTION, OVS_MODEL_KIND};
use ovs_core::estimator::tod_to_matrix;
use roadnet::TodTensor;
use serve::{LoadOptions, ServeOptions, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Self-cleaning temp directory (std only; no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("serve-it-{tag}-{pid}"));
        // A stale directory from a crashed run would leak old artifact
        // versions into the family walk: start clean.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_dataset() -> Dataset {
    let spec = DatasetSpec {
        t: 2,
        interval_s: 300.0,
        train_samples: 1,
        demand_scale: 0.1,
        seed: 5,
    };
    Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
}

/// A minimal `ovs-model` artifact carrying only a recovered TOD, shaped
/// for `dataset` and filled with `level` trips per cell — enough for the
/// read side, without running the trainer.
fn tod_artifact(dataset: &Dataset, level: f64) -> ArtifactBuilder {
    let tod = TodTensor::filled(dataset.n_od(), dataset.n_intervals(), level);
    let mut b = ArtifactBuilder::new(OVS_MODEL_KIND);
    b.add_matrix("recovered_tod", &tod_to_matrix(&tod));
    b
}

fn provenance() -> Provenance {
    Provenance::new(OVS_MODEL_KIND, "{}", 5)
}

fn start_server(store_dir: &Path, threads: usize, poll_ms: u64) -> Server {
    let store = ArtifactStore::open(store_dir).unwrap();
    Server::start(
        store,
        SnapshotSource::Family("tod".into()),
        tiny_dataset(),
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            threads,
            poll_ms,
        },
    )
    .unwrap()
}

/// One raw HTTP exchange; returns (status, headers-as-lines, body).
fn fetch(addr: &str, path: &str, extra_headers: &[&str]) -> (u16, Vec<String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut req = format!("GET {path} HTTP/1.1\r\nHost: test\r\n");
    for h in extra_headers {
        req.push_str(h);
        req.push_str("\r\n");
    }
    req.push_str("Connection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
        headers.push(trimmed.to_string());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, headers, body)
}

fn header_value<'a>(headers: &'a [String], name: &str) -> Option<&'a str> {
    headers.iter().find_map(|h| {
        let (n, v) = h.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

fn body_json(body: &[u8]) -> serde_json::Value {
    serde_json::from_str(std::str::from_utf8(body).unwrap()).unwrap()
}

#[test]
fn endpoints_answer_consistent_json() {
    let tmp = TempDir::new("endpoints");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 2.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 1, 500);
    let addr = server.addr().to_string();

    let (status, _, body) = fetch(&addr, "/healthz", &[]);
    assert_eq!(status, 200);
    assert_eq!(body_json(&body)["status"].as_str(), Some("ok"));

    let (status, headers, body) = fetch(&addr, "/version", &[]);
    assert_eq!(status, 200);
    let version = body_json(&body);
    let fingerprint = version["fingerprint"].as_str().unwrap().to_string();
    assert_eq!(version["artifact"].as_str(), Some("tod-v001"));
    assert_eq!(
        header_value(&headers, "etag"),
        Some(format!("\"{fingerprint}\"").as_str())
    );

    let (status, _, body) = fetch(&addr, "/kpis", &[]);
    assert_eq!(status, 200);
    let kpis = body_json(&body);
    assert_eq!(kpis["fingerprint"].as_str().unwrap(), fingerprint);
    // 2.0 trips per od-interval cell, summed exactly.
    let expected_total = 2.0 * (dataset.n_od() * dataset.n_intervals()) as f64;
    assert!((kpis["total_trips"].as_f64().unwrap() - expected_total).abs() < 1e-9);
    assert!(kpis["masked_speed_rmse"].as_f64().unwrap().is_finite());
    let regions = kpis["regions"].as_array().unwrap();
    assert_eq!(regions.len(), dataset.net.regions().len());
    let out_sum: f64 = regions
        .iter()
        .map(|r| r["outbound_trips"].as_f64().unwrap())
        .sum();
    assert!((out_sum - expected_total).abs() < 1e-9);
    assert!(kpis["recovery"]["store_quarantined_total"]
        .as_u64()
        .is_some());

    let (status, _, body) = fetch(&addr, "/links", &[]);
    assert_eq!(status, 200);
    let links = body_json(&body);
    assert_eq!(links["count"].as_u64().unwrap() as usize, dataset.n_links());
    assert_eq!(links["links"].as_array().unwrap().len(), dataset.n_links());

    let (status, _, body) = fetch(&addr, "/links/0", &[]);
    assert_eq!(status, 200);
    let link = body_json(&body);
    assert_eq!(
        link["speed"].as_array().unwrap().len(),
        dataset.n_intervals()
    );
    assert_eq!(
        link["volume"].as_array().unwrap().len(),
        dataset.n_intervals()
    );

    let (status, _, body) = fetch(&addr, "/od?origin=0&dest=1", &[]);
    assert_eq!(status, 200);
    let od = body_json(&body);
    assert_eq!(od["trips"].as_array().unwrap().len(), dataset.n_intervals());
    assert!(
        (od["total_trips"].as_f64().unwrap() - 2.0 * dataset.n_intervals() as f64).abs() < 1e-9
    );

    let (status, headers, body) = fetch(&addr, "/map/geojson", &[]);
    assert_eq!(status, 200);
    assert_eq!(
        header_value(&headers, "content-type"),
        Some("application/geo+json")
    );
    let gj = body_json(&body);
    assert_eq!(gj["type"].as_str(), Some("FeatureCollection"));
    let feats = gj["features"].as_array().unwrap();
    assert_eq!(feats.len(), dataset.n_links());
    assert!(feats[0]["properties"]["congestion"].as_str().is_some());

    // Request-level failures are 4xx, never 5xx.
    assert_eq!(fetch(&addr, "/nope", &[]).0, 404);
    assert_eq!(fetch(&addr, "/links/999999", &[]).0, 404);
    assert_eq!(fetch(&addr, "/links/abc", &[]).0, 400);
    assert_eq!(fetch(&addr, "/od?origin=0", &[]).0, 400);
    assert_eq!(fetch(&addr, "/od?origin=0&dest=0", &[]).0, 404);

    server.shutdown();
}

#[test]
fn etag_round_trip_across_versions() {
    let tmp = TempDir::new("etag");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 1.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 2, 20);
    let addr = server.addr().to_string();

    // 200 with a validator...
    let (status, headers, _) = fetch(&addr, "/kpis", &[]);
    assert_eq!(status, 200);
    let etag1 = header_value(&headers, "etag").unwrap().to_string();

    // ...replaying it yields a bodyless 304 carrying the same validator.
    let inm = format!("If-None-Match: {etag1}");
    let (status, headers, body) = fetch(&addr, "/kpis", &[&inm]);
    assert_eq!(status, 304);
    assert!(body.is_empty());
    assert_eq!(header_value(&headers, "etag"), Some(etag1.as_str()));
    // Weak validators and wildcard match too.
    let weak = format!("If-None-Match: W/{etag1}");
    assert_eq!(fetch(&addr, "/kpis", &[&weak]).0, 304);
    assert_eq!(fetch(&addr, "/kpis", &["If-None-Match: *"]).0, 304);

    // A new good version lands; the watcher swaps and the stale
    // validator stops matching (fresh 200 with the new validator).
    store
        .save_versioned("tod", &tod_artifact(&dataset, 3.0), &provenance())
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let etag2 = loop {
        let (status, headers, _) = fetch(&addr, "/kpis", &[&inm]);
        if status == 200 {
            break header_value(&headers, "etag").unwrap().to_string();
        }
        assert!(Instant::now() < deadline, "watcher never swapped versions");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_ne!(etag1, etag2);
    let (_, _, body) = fetch(&addr, "/version", &[]);
    assert_eq!(body_json(&body)["artifact"].as_str(), Some("tod-v002"));

    server.shutdown();
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    let tmp = TempDir::new("threads");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 2.0), &provenance())
        .unwrap();
    let single = start_server(tmp.path(), 1, 2_000);
    let multi = start_server(tmp.path(), 4, 2_000);
    let paths = [
        "/healthz",
        "/version",
        "/kpis",
        "/links",
        "/links/1",
        "/od?origin=0&dest=1",
        "/map/geojson",
        "/incidents",
        "/nope",
    ];
    for path in paths {
        let a = fetch(&single.addr().to_string(), path, &[]);
        let b = fetch(&multi.addr().to_string(), path, &[]);
        if path == "/kpis" {
            // The kpis body embeds process-global recovery counters read
            // at view-build time; other tests in this binary move them
            // between the two servers' builds. Compare everything except
            // that live-counter object across servers (within one server
            // it is frozen and checked byte-exact below).
            let without_recovery = |body: &[u8]| {
                let s = std::str::from_utf8(body).unwrap();
                s.split_once(",\"recovery\"")
                    .map(|(prefix, _)| prefix.to_string())
                    .unwrap_or_else(|| s.to_string())
            };
            assert_eq!(a.0, b.0, "divergent status for {path}");
            assert_eq!(
                without_recovery(&a.2),
                without_recovery(&b.2),
                "divergent kpis payload"
            );
        } else {
            assert_eq!(a, b, "divergent response for {path}");
        }
        // Within the multi-threaded server, repeated fetches land on
        // different workers yet return the exact same bytes — this is
        // the thread-count determinism claim.
        for _ in 0..4 {
            let c = fetch(&multi.addr().to_string(), path, &[]);
            assert_eq!(b, c, "non-deterministic response for {path}");
        }
    }
    single.shutdown();
    multi.shutdown();
}

#[test]
fn hot_swap_is_atomic_under_concurrent_readers() {
    let tmp = TempDir::new("hotswap");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 1.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 4, 10);
    let addr = server.addr().to_string();
    let (_, headers, _) = fetch(&addr, "/kpis", &[]);
    let etag1 = header_value(&headers, "etag").unwrap().to_string();

    // Readers hammer /kpis while a new version lands mid-flight. Every
    // response must be internally consistent: the body's fingerprint
    // always equals the ETag header it arrived with.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut etags = std::collections::BTreeSet::new();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let (status, headers, body) = fetch(&addr, "/kpis", &[]);
                assert_eq!(status, 200);
                let etag = header_value(&headers, "etag").unwrap().to_string();
                let fp = body_json(&body)["fingerprint"]
                    .as_str()
                    .unwrap()
                    .to_string();
                assert_eq!(etag, format!("\"{fp}\""), "torn response");
                etags.insert(etag);
            }
            etags
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    store
        .save_versioned("tod", &tod_artifact(&dataset, 4.0), &provenance())
        .unwrap();
    // Wait until the swap is visible, then let readers overlap it a bit.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, headers, _) = fetch(&addr, "/kpis", &[]);
        if header_value(&headers, "etag") != Some(etag1.as_str()) {
            break;
        }
        assert!(Instant::now() < deadline, "watcher never swapped versions");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut seen = std::collections::BTreeSet::new();
    for r in readers {
        seen.extend(r.join().unwrap());
    }
    // Only the two legitimate versions were ever served.
    assert!(seen.len() <= 2, "unexpected etags: {seen:?}");
    assert!(seen.contains(&etag1));

    server.shutdown();
}

#[test]
fn corrupt_newest_version_keeps_old_view_serving() {
    let tmp = TempDir::new("corrupt");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 1.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 2, 10);
    let addr = server.addr().to_string();
    let (_, headers, _) = fetch(&addr, "/kpis", &[]);
    let etag1 = header_value(&headers, "etag").unwrap().to_string();

    // A newer version lands already corrupted on disk: corrupt the bytes
    // before they ever hit the store, so the watcher can only ever see
    // the bad version (no race with its poll loop).
    let name = "tod-v002";
    let mut bytes = tod_artifact(&dataset, 9.0).to_bytes();
    assert!(corrupt_artifact_bytes(
        &mut bytes,
        &StorageFaults {
            bit_flips: 8,
            truncate_bytes: 0,
        },
        42,
    ));
    std::fs::write(store.artifact_path(name), &bytes).unwrap();

    // Give the watcher several poll cycles to notice (and quarantine) it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.artifact_path(name).exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !store.artifact_path(name).exists(),
        "corrupt artifact was never quarantined"
    );

    // The old view keeps serving, untouched.
    let (status, headers, body) = fetch(&addr, "/kpis", &[]);
    assert_eq!(status, 200);
    assert_eq!(header_value(&headers, "etag"), Some(etag1.as_str()));
    assert_eq!(body_json(&body)["artifact"].as_str(), Some("tod-v001"));

    // And a subsequent good version still swaps in. (Quarantining freed
    // the corrupt version's slot, so the store may reassign its number —
    // use the name it actually got.)
    let recovery = store
        .save_versioned("tod", &tod_artifact(&dataset, 2.0), &provenance())
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = fetch(&addr, "/version", &[]);
        if body_json(&body)["artifact"].as_str() == Some(recovery.as_str()) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "recovery version never swapped in"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    server.shutdown();
}

#[test]
fn load_generator_drives_live_server_without_errors() {
    let tmp = TempDir::new("load");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 2.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 2, 1_000);
    let report = serve::load::run(
        &server.addr().to_string(),
        &LoadOptions {
            requests: 70,
            concurrency: 2,
        },
    );
    assert_eq!(report.requests, 70);
    assert_eq!(report.completed, 70);
    assert_eq!(report.failed, 0);
    assert_eq!(report.status_5xx, 0);
    assert_eq!(report.status_2xx, 70);
    assert!(report.rps > 0.0);
    assert!(report.p50_ms >= 0.0 && report.p99_ms >= report.p50_ms);
    let parsed: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(parsed["status_5xx"].as_u64(), Some(0));
    server.shutdown();
}

/// A `tod` artifact that also carries incident provenance rows (7 f64s
/// per incident, see [`INCIDENTS_SECTION`]).
fn incident_artifact(dataset: &Dataset, level: f64, rows: &[f64]) -> ArtifactBuilder {
    let mut b = tod_artifact(dataset, level);
    b.add_f64s(INCIDENTS_SECTION, rows);
    b
}

#[test]
fn incidents_endpoint_serves_provenance() {
    let tmp = TempDir::new("incidents");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    // v001 carries no incident section: the endpoint must serve an empty
    // list, not an error.
    store
        .save_versioned("tod", &tod_artifact(&dataset, 1.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 1, 10);
    let addr = server.addr().to_string();

    let (status, headers, body) = fetch(&addr, "/incidents", &[]);
    assert_eq!(status, 200);
    let empty = body_json(&body);
    assert_eq!(empty["count"].as_u64(), Some(0));
    assert_eq!(empty["active"].as_u64(), Some(0));
    assert_eq!(empty["incidents"].as_array().unwrap().len(), 0);
    let etag = header_value(&headers, "etag").unwrap().to_string();

    // Conditional GET round-trips on the same validator as every other
    // cacheable endpoint.
    let inm = format!("If-None-Match: {etag}");
    let (status, _, body) = fetch(&addr, "/incidents", &[&inm]);
    assert_eq!(status, 304);
    assert!(body.is_empty());

    // v002 straddles one active closure and one future signal outage.
    let rows = [
        0.0, 0.0, 3.0, 600.0, 300.0, 1.0, 1.0, // active closure on link 3
        2.0, 1.0, 1.0, 2000.0, 120.0, 0.5, 2.0, // scheduled outage at node 1
    ];
    store
        .save_versioned(
            "tod",
            &incident_artifact(&dataset, 2.0, &rows),
            &provenance(),
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let incidents = loop {
        let (status, _, body) = fetch(&addr, "/incidents", &[]);
        assert_eq!(status, 200);
        let v = body_json(&body);
        if v["count"].as_u64() == Some(2) {
            break v;
        }
        assert!(
            Instant::now() < deadline,
            "incident version never swapped in"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(incidents["active"].as_u64(), Some(1));
    let list = incidents["incidents"].as_array().unwrap();
    assert_eq!(list[0]["kind"].as_str(), Some("closure"));
    assert_eq!(list[0]["link"].as_u64(), Some(3));
    assert_eq!(list[0]["onset_tick"].as_u64(), Some(600));
    assert_eq!(list[0]["duration_ticks"].as_u64(), Some(300));
    assert_eq!(list[0]["status"].as_str(), Some("active"));
    assert_eq!(list[1]["kind"].as_str(), Some("signal_outage"));
    assert_eq!(list[1]["node"].as_u64(), Some(1));
    assert_eq!(list[1]["status"].as_str(), Some("scheduled"));

    server.shutdown();
}

#[test]
fn hot_swap_with_active_incidents_serves_zero_5xx() {
    let tmp = TempDir::new("incident-swap");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 1.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 4, 10);
    let addr = server.addr().to_string();

    // Readers hammer the incident and kpi endpoints while a snapshot
    // with an active incident hot-swaps in: every response must be 200
    // (or a legitimate 304), never 5xx, and never torn.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for i in 0..4 {
        let addr = addr.clone();
        let stop = stop.clone();
        let path = if i % 2 == 0 { "/incidents" } else { "/kpis" };
        readers.push(std::thread::spawn(move || {
            let mut responses = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let (status, headers, _) = fetch(&addr, path, &[]);
                assert!(
                    status == 200,
                    "{path} answered {status} during incident hot-swap"
                );
                assert!(header_value(&headers, "etag").is_some());
                responses += 1;
            }
            responses
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    let rows = [0.0, 0.0, 0.0, 0.0, 600.0, 1.0, 1.0];
    store
        .save_versioned(
            "tod",
            &incident_artifact(&dataset, 3.0, &rows),
            &provenance(),
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = fetch(&addr, "/incidents", &[]);
        if body_json(&body)["active"].as_u64() == Some(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "incident swap never became visible"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers never completed a request");

    server.shutdown();
}

#[test]
fn oversized_request_head_is_answered_431() {
    let tmp = TempDir::new("slow-client");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let dataset = tiny_dataset();
    store
        .save_versioned("tod", &tod_artifact(&dataset, 1.0), &provenance())
        .unwrap();
    let server = start_server(tmp.path(), 1, 1_000);
    let addr = server.addr().to_string();

    // A request line far past the head budget: the server must cut the
    // read off at the cap and answer 431, not buffer indefinitely.
    let huge_path = format!("/{}", "a".repeat(64 * 1024));
    let (status, _, body) = fetch(&addr, &huge_path, &[]);
    assert_eq!(status, 431);
    assert!(body_json(&body)["error"].as_str().is_some());

    // An oversized header block is rejected the same way.
    let padding = format!("X-Pad: {}", "b".repeat(32 * 1024));
    let (status, _, _) = fetch(&addr, "/healthz", &[&padding]);
    assert_eq!(status, 431);

    // The guard counted both rejects and the server still works.
    let (status, _, _) = fetch(&addr, "/healthz", &[]);
    assert_eq!(status, 200);
    let slow = obs::global().counter("serve_slow_clients_total").get();
    assert!(slow >= 2, "slow-client counter never moved: {slow}");

    server.shutdown();
}
