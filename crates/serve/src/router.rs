//! Endpoint routing and conditional-GET semantics.
//!
//! The router is a pure function `(view, request) -> response`: no IO, no
//! clocks, no shared mutable state. Cacheable endpoints carry the view's
//! snapshot fingerprint as their `ETag`; a request presenting the same
//! validator in `If-None-Match` gets a bodyless `304 Not Modified`.
//! `/healthz` is deliberately *not* cacheable — a probe must always see a
//! live answer.

use crate::http::{Request, Response};
use crate::view::ModelView;

/// The fixed endpoint label set used in metrics and load reports.
pub const ENDPOINTS: &[&str] = &[
    "healthz",
    "version",
    "kpis",
    "links",
    "link",
    "od",
    "map_geojson",
    "incidents",
    "other",
];

/// The metrics label for a request path: one of [`ENDPOINTS`].
pub fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/version" => "version",
        "/kpis" => "kpis",
        "/links" => "links",
        "/od" => "od",
        "/map/geojson" => "map_geojson",
        "/incidents" => "incidents",
        p if p.starts_with("/links/") => "link",
        _ => "other",
    }
}

/// True when the request's `If-None-Match` validator matches `etag`
/// (exact quoted match, a weak `W/` prefix on the client side, or `*`).
fn validator_matches(req: &Request, etag: &str) -> bool {
    let Some(inm) = req.if_none_match() else {
        return false;
    };
    inm.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate == etag || candidate.strip_prefix("W/") == Some(etag)
    })
}

/// Wraps a cacheable body: `304` when the client already holds the
/// current version, `200` with the validator attached otherwise.
fn cacheable(view: &ModelView, req: &Request, body: &str) -> Response {
    if validator_matches(req, view.etag()) {
        Response::not_modified(view.etag())
    } else {
        Response::json(200, body.as_bytes().to_vec()).with_etag(view.etag())
    }
}

/// Routes one request against the current view.
pub fn handle(view: &ModelView, req: &Request) -> Response {
    if req.method != "GET" && req.method != "HEAD" {
        return Response::error(405, "only GET and HEAD are supported");
    }
    match req.path.as_str() {
        "/healthz" => Response::json(200, "{\"status\":\"ok\"}"),
        "/version" => cacheable(view, req, view.version_json()),
        "/kpis" => cacheable(view, req, view.kpis_json()),
        "/links" => cacheable(view, req, view.links_json()),
        "/incidents" => cacheable(view, req, view.incidents_json()),
        "/map/geojson" => {
            let mut resp = cacheable(view, req, view.geojson());
            resp.content_type = "application/geo+json";
            resp
        }
        "/od" => {
            let parse = |key: &str| req.query.get(key).and_then(|v| v.parse::<usize>().ok());
            let (Some(origin), Some(dest)) = (parse("origin"), parse("dest")) else {
                return Response::error(400, "query must be /od?origin=<region>&dest=<region>");
            };
            match view.od_json(origin, dest) {
                Some(body) => cacheable(view, req, &body),
                None => Response::error(404, "unknown od pair"),
            }
        }
        path => {
            if let Some(rest) = path.strip_prefix("/links/") {
                let Ok(id) = rest.parse::<usize>() else {
                    return Response::error(400, "link id must be an integer");
                };
                return match view.link_json(id) {
                    Some(body) => cacheable(view, req, &body),
                    None => Response::error(404, "unknown link"),
                };
            }
            Response::error(404, "unknown endpoint")
        }
    }
}
