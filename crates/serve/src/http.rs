//! Minimal HTTP/1.1 framing: just enough to parse read-only GET traffic
//! and write deterministic responses. Hand-rolled on purpose — the
//! workspace builds with no registry access, and the endpoints only need
//! request line + headers + conditional-GET semantics.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Upper bound on a single request head (request line + headers). A
/// client exceeding it is answered 431 and disconnected. The bound is
/// enforced *while* reading — a request line that never terminates is
/// cut off at the cap instead of growing an unbounded buffer.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request head. Bodies are ignored: every endpoint is a GET.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method token (`GET`, `HEAD`, ...).
    pub method: String,
    /// Decoded path, query string stripped (`/links/3`).
    pub path: String,
    /// Query parameters in key order.
    pub query: BTreeMap<String, String>,
    /// Headers with lowercased names; last occurrence wins.
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// True when the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The `If-None-Match` validator, if the request carries one.
    pub fn if_none_match(&self) -> Option<&str> {
        self.header("if-none-match")
    }
}

/// Outcome of reading one request from a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request head was parsed.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire were not a parseable HTTP/1.1 head.
    Malformed(String),
    /// The request head exceeded [`MAX_HEAD_BYTES`] before completing —
    /// a slow-loris style client or a runaway header block. Answered
    /// `431` and disconnected; counted in `serve_slow_clients_total`.
    TooLarge,
}

/// Reads one `\n`-terminated line into `buf`, consuming at most `limit`
/// bytes from `reader`. Returns `Ok(Some(n))` with the byte count
/// appended (0 means EOF before any byte), or `Ok(None)` when the limit
/// was exhausted before a newline arrived — the caller must treat the
/// head as too large and stop reading. Invalid UTF-8 is replaced lossily
/// rather than erroring: the request will fail to parse downstream.
fn read_line_capped(
    reader: &mut impl BufRead,
    buf: &mut String,
    limit: usize,
) -> io::Result<Option<usize>> {
    let mut taken = 0usize;
    loop {
        if taken >= limit {
            return Ok(None);
        }
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(Some(taken));
        }
        let room = (limit - taken).min(available.len());
        let slice = available.get(..room).unwrap_or(available);
        match slice.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let end = pos + 1;
                buf.push_str(&String::from_utf8_lossy(slice.get(..end).unwrap_or(slice)));
                reader.consume(end);
                return Ok(Some(taken + end));
            }
            None => {
                let n = slice.len();
                buf.push_str(&String::from_utf8_lossy(slice));
                reader.consume(n);
                taken += n;
            }
        }
    }
}

/// Reads one request head from `reader`. Blocks until a full head, EOF,
/// an IO error (timeouts surface as `Err`), or the [`MAX_HEAD_BYTES`]
/// budget is exhausted mid-head ([`ReadOutcome::TooLarge`]).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    let mut total = 0usize;
    match read_line_capped(reader, &mut line, MAX_HEAD_BYTES)? {
        None => return Ok(ReadOutcome::TooLarge),
        Some(0) => return Ok(ReadOutcome::Closed),
        Some(n) => total += n,
    }
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Ok(ReadOutcome::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut headers = BTreeMap::new();
    loop {
        line.clear();
        match read_line_capped(
            reader,
            &mut line,
            MAX_HEAD_BYTES - total.min(MAX_HEAD_BYTES),
        )? {
            None => return Ok(ReadOutcome::TooLarge),
            Some(0) => return Ok(ReadOutcome::Malformed("eof inside header block".into())),
            Some(n) => total += n,
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header: {trimmed:?}")));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    let (path, query) = split_target(target);
    Ok(ReadOutcome::Request(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
    }))
}

/// Splits a request target into path and parsed query parameters.
fn split_target(target: &str) -> (String, BTreeMap<String, String>) {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }
    (path.to_string(), query)
}

/// One response: status, content type, optional validator, body bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code (`200`, `304`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `ETag` header value (already quoted), when the resource has one.
    pub etag: Option<String>,
    /// Body bytes; empty for `304`.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status and body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            etag: None,
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": "..."}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        push_json_string(&mut body, message);
        body.push('}');
        Self::json(status, body.into_bytes())
    }

    /// Attaches a validator (quoted ETag) to the response.
    pub fn with_etag(mut self, etag: &str) -> Self {
        self.etag = Some(etag.to_string());
        self
    }

    /// A bodyless `304 Not Modified` carrying the current validator.
    pub fn not_modified(etag: &str) -> Self {
        Self {
            status: 304,
            content_type: "application/json",
            etag: Some(etag.to_string()),
            body: Vec::new(),
        }
    }
}

/// Canonical reason phrase for the status codes the router produces.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialises a response to the wire. The header set is fixed and emitted
/// in a fixed order, so identical responses are byte-identical no matter
/// which server thread wrote them. `head_only` answers a `HEAD` request:
/// full headers (including the real `Content-Length`) with the body
/// suppressed.
pub fn write_response(
    w: &mut impl Write,
    r: &Response,
    keep_alive: bool,
    head_only: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", r.status, status_text(r.status));
    head.push_str(&format!("Content-Type: {}\r\n", r.content_type));
    head.push_str(&format!("Content-Length: {}\r\n", r.body.len()));
    if let Some(etag) = &r.etag {
        head.push_str(&format!("ETag: {etag}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    if !head_only {
        w.write_all(&r.body)?;
    }
    w.flush()
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a deterministic JSON number for `v`: Rust's shortest
/// round-trip `Display`, with `.0` appended to integral values so the
/// output is unambiguously a float. Non-finite values become `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let out =
            parse("GET /od?origin=2&dest=5 HTTP/1.1\r\nHost: x\r\nIf-None-Match: \"abc\"\r\n\r\n");
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/od");
        assert_eq!(req.query.get("origin").map(String::as_str), Some("2"));
        assert_eq!(req.query.get("dest").map(String::as_str), Some("5"));
        assert_eq!(req.if_none_match(), Some("\"abc\""));
        assert!(!req.wants_close());
    }

    #[test]
    fn empty_stream_is_clean_close() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn garbage_is_malformed_not_error() {
        assert!(matches!(parse("ho ho\r\n\r\n"), ReadOutcome::Malformed(_)));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn runaway_request_line_is_too_large_not_oom() {
        // A request line that never terminates must be cut off at the
        // head budget, not buffered indefinitely.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
        assert!(matches!(parse(&raw), ReadOutcome::TooLarge));
    }

    #[test]
    fn oversized_header_block_is_too_large() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..200 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "b".repeat(200)));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), ReadOutcome::TooLarge));
    }

    #[test]
    fn head_just_under_the_cap_still_parses() {
        let mut raw = String::from("GET /links HTTP/1.1\r\n");
        raw.push_str(&format!("X-Pad: {}\r\n", "c".repeat(1024)));
        raw.push_str("\r\n");
        let ReadOutcome::Request(req) = parse(&raw) else {
            panic!("expected request");
        };
        assert_eq!(req.path, "/links");
        assert_eq!(req.header("x-pad").map(str::len), Some(1024));
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let r = Response::json(200, "{\"a\":1}").with_etag("\"t\"");
        let mut one = Vec::new();
        let mut two = Vec::new();
        write_response(&mut one, &r, true, false).unwrap();
        write_response(&mut two, &r, true, false).unwrap();
        assert_eq!(one, two);
        let text = String::from_utf8(one).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("ETag: \"t\"\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
    }

    #[test]
    fn head_suppresses_body_but_keeps_length() {
        let r = Response::json(200, "{\"a\":1}").with_etag("\"t\"");
        let mut out = Vec::new();
        write_response(&mut out, &r, false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "HEAD must carry no body");
    }

    #[test]
    fn json_number_formatting_is_stable() {
        let mut s = String::new();
        push_json_f64(&mut s, 3.0);
        s.push(',');
        push_json_f64(&mut s, 0.25);
        s.push(',');
        push_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "3.0,0.25,null");
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
