//! Deterministic load generator for the serving layer.
//!
//! `cityod serve bench` drives a running server with a fixed, seedless
//! request schedule: request `j` always targets `PATHS[j % PATHS.len()]`,
//! and worker `i` of `concurrency` handles exactly the requests with
//! `j % concurrency == i` over one keep-alive connection. The schedule —
//! and therefore the server-side work — is identical run to run; only the
//! measured latencies vary. Results land in `BENCH_serve.json`.

use crate::http::push_json_f64;
use crate::router;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The fixed request cycle. Mixes cheap (`/healthz`) and heavy
/// (`/map/geojson`) endpoints so percentiles reflect the real spread.
pub const PATHS: &[&str] = &[
    "/kpis",
    "/links",
    "/od?origin=0&dest=1",
    "/map/geojson",
    "/version",
    "/links/0",
    "/healthz",
];

/// Load run configuration.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Total number of requests across all workers.
    pub requests: usize,
    /// Concurrent keep-alive connections.
    pub concurrency: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            requests: 400,
            concurrency: 4,
        }
    }
}

/// Per-endpoint latency summary inside a [`LoadReport`].
#[derive(Debug, Clone)]
pub struct EndpointLoad {
    /// Endpoint label (see [`router::ENDPOINTS`]).
    pub endpoint: String,
    /// Requests that completed against this endpoint.
    pub requests: usize,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
}

/// The result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests scheduled.
    pub requests: usize,
    /// Requests that produced a parseable response.
    pub completed: usize,
    /// Requests lost to IO errors (connect/write/read failures).
    pub failed: usize,
    /// Responses by status class.
    pub status_2xx: usize,
    /// 3xx responses (304 Not Modified under `If-None-Match` replay).
    pub status_3xx: usize,
    /// 4xx responses.
    pub status_4xx: usize,
    /// 5xx responses.
    pub status_5xx: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub rps: f64,
    /// Median latency over all completed requests, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency over all completed requests, milliseconds.
    pub p99_ms: f64,
    /// Per-endpoint breakdown, in [`PATHS`] order.
    pub per_endpoint: Vec<EndpointLoad>,
}

impl LoadReport {
    /// Renders the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bench\":\"serve\",\"requests\":");
        out.push_str(&self.requests.to_string());
        out.push_str(",\"completed\":");
        out.push_str(&self.completed.to_string());
        out.push_str(",\"failed\":");
        out.push_str(&self.failed.to_string());
        out.push_str(",\"status_2xx\":");
        out.push_str(&self.status_2xx.to_string());
        out.push_str(",\"status_3xx\":");
        out.push_str(&self.status_3xx.to_string());
        out.push_str(",\"status_4xx\":");
        out.push_str(&self.status_4xx.to_string());
        out.push_str(",\"status_5xx\":");
        out.push_str(&self.status_5xx.to_string());
        out.push_str(",\"elapsed_s\":");
        push_json_f64(&mut out, self.elapsed_s);
        out.push_str(",\"rps\":");
        push_json_f64(&mut out, self.rps);
        out.push_str(",\"p50_ms\":");
        push_json_f64(&mut out, self.p50_ms);
        out.push_str(",\"p99_ms\":");
        push_json_f64(&mut out, self.p99_ms);
        out.push_str(",\"per_endpoint\":[");
        for (i, ep) in self.per_endpoint.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"endpoint\":\"");
            out.push_str(&ep.endpoint);
            out.push_str("\",\"requests\":");
            out.push_str(&ep.requests.to_string());
            out.push_str(",\"p50_ms\":");
            push_json_f64(&mut out, ep.p50_ms);
            out.push_str(",\"p99_ms\":");
            push_json_f64(&mut out, ep.p99_ms);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// One completed request's record: index into [`PATHS`], status code,
/// latency in milliseconds.
type Sample = (usize, u16, f64);

/// Runs the deterministic schedule against `addr` and aggregates a
/// [`LoadReport`].
pub fn run(addr: &str, opts: &LoadOptions) -> LoadReport {
    let concurrency = opts.concurrency.max(1);
    let requests = opts.requests.max(1);
    // lint: allow(determinism) — wall-clock measurement of a live server
    // is the whole point of a load run; it never feeds model state.
    let started = std::time::Instant::now();
    let mut handles = Vec::with_capacity(concurrency);
    for worker in 0..concurrency {
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            run_worker(&addr, worker, concurrency, requests)
        }));
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(requests);
    let mut failed = 0usize;
    for handle in handles {
        match handle.join() {
            Ok((worker_samples, worker_failed)) => {
                samples.extend(worker_samples);
                failed += worker_failed;
            }
            Err(_) => failed += 1,
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
    aggregate(requests, samples, failed, elapsed_s)
}

/// One worker: requests `j` with `j % concurrency == worker`, in order,
/// over a single keep-alive connection (reconnecting once per failure).
fn run_worker(
    addr: &str,
    worker: usize,
    concurrency: usize,
    requests: usize,
) -> (Vec<Sample>, usize) {
    let mut samples = Vec::new();
    let mut failed = 0usize;
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    let mut j = worker;
    while j < requests {
        let path_idx = j % PATHS.len();
        let path = PATHS.get(path_idx).copied().unwrap_or("/healthz");
        if conn.is_none() {
            conn = connect(addr);
        }
        let Some((reader, writer)) = conn.as_mut() else {
            failed += 1;
            j += concurrency;
            continue;
        };
        // lint: allow(determinism) — per-request latency sample for the
        // bench report only.
        let start = std::time::Instant::now();
        match exchange(reader, writer, path) {
            Some(status) => {
                samples.push((path_idx, status, start.elapsed().as_secs_f64() * 1e3));
            }
            None => {
                failed += 1;
                conn = None;
            }
        }
        j += concurrency;
    }
    (samples, failed)
}

/// Opens one keep-alive connection to `addr`.
fn connect(addr: &str) -> Option<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream.try_clone().ok()?);
    Some((reader, stream))
}

/// Writes one GET and reads the full response; returns the status code.
fn exchange(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, path: &str) -> Option<u16> {
    let head = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nAccept: application/json\r\n\r\n");
    writer.write_all(head.as_bytes()).ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    if line.is_empty() {
        return None;
    }
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
    }
    Some(status)
}

/// Folds raw samples into the final report.
fn aggregate(requests: usize, samples: Vec<Sample>, failed: usize, elapsed_s: f64) -> LoadReport {
    let completed = samples.len();
    let mut status_2xx = 0;
    let mut status_3xx = 0;
    let mut status_4xx = 0;
    let mut status_5xx = 0;
    for &(_, status, _) in &samples {
        match status {
            200..=299 => status_2xx += 1,
            300..=399 => status_3xx += 1,
            400..=499 => status_4xx += 1,
            _ => status_5xx += 1,
        }
    }
    let mut all: Vec<f64> = samples.iter().map(|&(_, _, ms)| ms).collect();
    let (p50_ms, p99_ms) = (percentile(&mut all, 0.50), percentile(&mut all, 0.99));
    let mut per_endpoint = Vec::with_capacity(PATHS.len());
    for (idx, path) in PATHS.iter().enumerate() {
        let mut lat: Vec<f64> = samples
            .iter()
            .filter(|&&(p, _, _)| p == idx)
            .map(|&(_, _, ms)| ms)
            .collect();
        let n = lat.len();
        per_endpoint.push(EndpointLoad {
            endpoint: endpoint_of(path).to_string(),
            requests: n,
            p50_ms: percentile(&mut lat, 0.50),
            p99_ms: percentile(&mut lat, 0.99),
        });
    }
    LoadReport {
        requests,
        completed,
        failed,
        status_2xx,
        status_3xx,
        status_4xx,
        status_5xx,
        elapsed_s,
        rps: completed as f64 / elapsed_s,
        p50_ms,
        p99_ms,
        per_endpoint,
    }
}

/// Endpoint label for a scheduled path (query string stripped first).
fn endpoint_of(path: &str) -> &'static str {
    let bare = path.split('?').next().unwrap_or(path);
    router::endpoint_label(bare)
}

/// Nearest-rank percentile over `values` (sorted in place); `0.0` when
/// empty.
fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((values.len() - 1) as f64 * q).round() as usize;
    values.get(rank).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut vs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut vs, 0.0), 1.0);
        assert_eq!(percentile(&mut vs, 1.0), 4.0);
        assert_eq!(percentile(&mut vs, 0.5), 3.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn schedule_covers_every_worker_disjointly() {
        // Request j is owned by exactly worker j % concurrency: the union
        // over workers is [0, requests) with no overlap.
        let (requests, concurrency) = (23usize, 4usize);
        let mut owned = vec![0u8; requests];
        for w in 0..concurrency {
            let mut j = w;
            while j < requests {
                if let Some(slot) = owned.get_mut(j) {
                    *slot += 1;
                }
                j += concurrency;
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = aggregate(
            3,
            vec![(0, 200, 1.5), (1, 200, 2.5), (2, 404, 0.5)],
            0,
            0.01,
        );
        let text = report.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(parsed["bench"].as_str(), Some("serve"));
        assert_eq!(parsed["completed"].as_u64(), Some(3));
        assert_eq!(parsed["status_4xx"].as_u64(), Some(1));
        assert!(parsed["rps"].as_f64().unwrap_or(0.0) > 0.0);
        let eps = parsed["per_endpoint"].as_array().expect("array");
        assert_eq!(eps.len(), PATHS.len());
    }

    #[test]
    fn endpoint_labels_strip_queries() {
        assert_eq!(endpoint_of("/od?origin=0&dest=1"), "od");
        assert_eq!(endpoint_of("/map/geojson"), "map_geojson");
        assert_eq!(endpoint_of("/healthz"), "healthz");
    }
}
