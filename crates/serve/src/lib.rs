//! `serve` — read-side query layer over recovered traffic OD artifacts.
//!
//! The training side of the workspace writes verified model/TOD artifacts
//! into an [`checkpoint::store::ArtifactStore`]; this crate is the
//! read side. It hosts a zero-dependency HTTP/1.1 server that answers
//! city-KPI, per-link, per-OD-pair and GeoJSON map queries out of an
//! immutable [`checkpoint::Snapshot`], hot-swapping to newer good
//! artifact versions as the trainer lands them.
//!
//! Layering (each module pure with respect to the ones above it):
//!
//! * [`http`] — request parsing, deterministic response framing, JSON
//!   primitives.
//! * [`view`] — [`view::ModelView`]: per-snapshot prerendered bodies.
//! * [`router`] — pure `(view, request) -> response` dispatch with
//!   conditional-GET (`ETag` / `If-None-Match` / `304`).
//! * [`server`] — sockets, worker threads, the snapshot watcher loop.
//! * [`load`] — the deterministic load generator behind
//!   `cityod serve bench`.
//!
//! Responses are byte-identical across thread counts because all
//! rendering happens once per snapshot in [`view::ModelView::build`];
//! request handling is lookup plus fixed-order header serialisation.

#![warn(missing_docs)]

pub mod error;
pub mod http;
pub mod load;
pub mod router;
pub mod server;
pub mod view;

pub use error::{Result, ServeError};
pub use load::{LoadOptions, LoadReport};
pub use server::{ServeOptions, Server};
pub use view::ModelView;
