//! The serving loop: a hand-rolled HTTP/1.1 listener with hot-swappable
//! model views.
//!
//! Worker threads share one non-blocking listener and accept in a short
//! sleep loop; each connection is handled to completion with keep-alive.
//! The current [`ModelView`] lives behind `RwLock<Arc<ModelView>>`:
//! readers clone the `Arc` (wait-free for practical purposes), the
//! watcher thread replaces it atomically when the [`SnapshotWatcher`]
//! observes a new good artifact version. A request therefore sees either
//! the old view or the new one in full — never a torn mix — and an
//! artifact that fails view rebuild leaves the last good view serving.

use crate::error::{Result, ServeError};
use crate::http::{read_request, write_response, ReadOutcome, Response};
use crate::router;
use crate::view::ModelView;
use checkpoint::store::ArtifactStore;
use checkpoint::{
    default_watch_interval_ms, RetryPolicy, SnapshotSource, SnapshotWatcher, SystemClock,
};
use datagen::Dataset;
use obs::Registry;
use std::io::{BufReader, BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
// lint: allow(determinism) — Instant powers the socket pacing guard only.
use std::time::{Duration, Instant};

/// How long an idle keep-alive connection may sit before the worker
/// reclaims the thread.
const READ_TIMEOUT_MS: u64 = 2_000;

/// Total wall-clock budget for receiving one request head, armed at its
/// first byte. A client trickling bytes slower than this (slow-loris) is
/// disconnected and counted in `serve_slow_clients_total` — each worker
/// thread handles one connection at a time, so a stalled head would
/// otherwise pin a worker for as long as the peer keeps the socket warm.
const REQUEST_DEADLINE_MS: u64 = 5_000;

/// Accept-loop back-off while the listener has no pending connection.
const ACCEPT_IDLE_MS: u64 = 2;

/// Latency histogram bounds (seconds) for `serve_latency_seconds`.
const LATENCY_BOUNDS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
];

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks a free port (reported by
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker (accept + request) threads.
    pub threads: usize,
    /// Base snapshot poll interval for the hot-swap watcher, in
    /// milliseconds. Consecutive polls that resolve no artifact back the
    /// cadence off exponentially, capped at
    /// `poll_ms * checkpoint::WATCH_BACKOFF_CAP` (see
    /// [`SnapshotWatcher::next_poll_delay_ms`]).
    pub poll_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            // Environment-aware: CITYOD_WATCH_INTERVAL_MS overrides the
            // built-in 200 ms, shared with `cityod stream run`.
            poll_ms: default_watch_interval_ms(),
        }
    }
}

/// A running server: bound address plus the handles needed to stop it.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts serving `source` out of `store`, using `dataset` for
    /// geometry and observations. Fails fast when no good artifact
    /// resolves or its view cannot be built.
    pub fn start(
        store: ArtifactStore,
        source: SnapshotSource,
        dataset: Dataset,
        opts: &ServeOptions,
    ) -> Result<Server> {
        let dataset = Arc::new(dataset);
        let watcher = Arc::new(
            SnapshotWatcher::new(store, source, RetryPolicy::default())
                .with_poll_interval(opts.poll_ms),
        );
        watcher.poll(&SystemClock)?;
        let snapshot = watcher
            .current()
            .ok_or_else(|| ServeError::NoArtifact(watcher.source().target().to_string()))?;
        let view = Arc::new(ModelView::build(snapshot, dataset.clone())?);
        let state = Arc::new(RwLock::new(view));

        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(opts.threads.max(1) + 1);
        for _ in 0..opts.threads.max(1) {
            let listener = listener.try_clone()?;
            let state = state.clone();
            let stop = shutdown.clone();
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &state, &stop);
            }));
        }
        {
            let watcher = watcher.clone();
            let state = state.clone();
            let dataset = dataset.clone();
            let stop = shutdown.clone();
            threads.push(std::thread::spawn(move || {
                watch_loop(&watcher, &state, &dataset, &stop);
            }));
        }
        Ok(Server {
            addr,
            shutdown,
            threads,
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every thread to stop and joins them.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

/// One worker: accept until shutdown, handling each connection inline.
fn accept_loop(listener: &TcpListener, state: &RwLock<Arc<ModelView>>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                obs::global().counter("serve_connections_total").inc();
                let _ = handle_connection(stream, state, shutdown);
            }
            Err(_) => {
                // WouldBlock (no pending connection) or a transient
                // accept failure: back off briefly either way.
                std::thread::sleep(Duration::from_millis(ACCEPT_IDLE_MS));
            }
        }
    }
}

/// Read-side wrapper enforcing a per-request total deadline on top of
/// the per-read socket timeout. The deadline arms when the first byte of
/// a request head arrives and is cleared after the request is served;
/// every read in between shrinks its socket timeout to the remaining
/// budget, so a slow-loris client dribbling one byte per poll cannot
/// hold a worker past [`REQUEST_DEADLINE_MS`].
struct PacedStream {
    inner: TcpStream,
    // lint: allow(determinism) — wall-clock deadline for socket pacing.
    deadline: Option<Instant>,
    expired: bool,
}

impl PacedStream {
    fn new(inner: TcpStream) -> Self {
        Self {
            inner,
            deadline: None,
            expired: false,
        }
    }

    /// Disarms the deadline between requests (keep-alive idle time is
    /// governed by the plain read timeout, not the request budget).
    fn clear(&mut self) {
        self.deadline = None;
    }

    /// True when a read failed because the request deadline lapsed
    /// rather than the socket breaking.
    fn expired(&self) -> bool {
        self.expired
    }
}

impl Read for PacedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // lint: allow(determinism) — wall-clock pacing guard for the
        // socket layer only; never reaches a response body.
        let per_read = match self.deadline {
            Some(deadline) => {
                // lint: allow(determinism) — pacing guard, socket layer only.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    self.expired = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "request head deadline exceeded",
                    ));
                }
                remaining.min(Duration::from_millis(READ_TIMEOUT_MS))
            }
            None => Duration::from_millis(READ_TIMEOUT_MS),
        };
        self.inner.set_read_timeout(Some(per_read))?;
        let n = self.inner.read(buf)?;
        if self.deadline.is_none() && n > 0 {
            // lint: allow(determinism) — arms the pacing deadline only.
            self.deadline = Some(Instant::now() + Duration::from_millis(REQUEST_DEADLINE_MS));
        }
        Ok(n)
    }
}

/// Serves one keep-alive connection until the peer closes, an error
/// occurs, or shutdown is signalled.
fn handle_connection(
    stream: TcpStream,
    state: &RwLock<Arc<ModelView>>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(PacedStream::new(stream.try_clone()?));
    let mut writer = BufWriter::new(stream);
    while !shutdown.load(Ordering::SeqCst) {
        match read_request(&mut reader) {
            Ok(ReadOutcome::Request(req)) => {
                reader.get_mut().clear();
                let keep_alive = !req.wants_close();
                let view: Arc<ModelView> = state
                    .read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .clone();
                // lint: allow(determinism) — request latency measurement;
                // feeds the Timing-tagged histogram only, never a body.
                let start = std::time::Instant::now();
                let resp = router::handle(&view, &req);
                record_request(router::endpoint_label(&req.path), &resp, start.elapsed());
                write_response(&mut writer, &resp, keep_alive, req.method == "HEAD")?;
                if !keep_alive {
                    break;
                }
            }
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Malformed(msg)) => {
                let resp = Response::error(400, &msg);
                record_request("other", &resp, Duration::ZERO);
                write_response(&mut writer, &resp, false, false)?;
                break;
            }
            Ok(ReadOutcome::TooLarge) => {
                obs::global().counter("serve_slow_clients_total").inc();
                let resp = Response::error(431, "request head exceeds the size budget");
                record_request("other", &resp, Duration::ZERO);
                write_response(&mut writer, &resp, false, false)?;
                break;
            }
            // Read timeout on an idle keep-alive connection, an expired
            // request deadline, or a broken socket: reclaim the worker.
            Err(_) => {
                if reader.get_ref().expired() {
                    obs::global().counter("serve_slow_clients_total").inc();
                }
                break;
            }
        }
    }
    Ok(())
}

/// Records the per-endpoint request counter (Stable) and latency
/// histogram (Timing).
fn record_request(endpoint: &str, resp: &Response, elapsed: Duration) {
    let reg = obs::global();
    let status = resp.status.to_string();
    reg.counter_with(
        "serve_requests_total",
        &[("endpoint", endpoint), ("status", &status)],
    )
    .inc();
    reg.timing_histogram(
        &Registry::key("serve_latency_seconds", &[("endpoint", endpoint)]),
        LATENCY_BOUNDS,
    )
    .observe(elapsed.as_secs_f64());
}

/// The hot-swap loop: poll the watcher, rebuild the view on change, and
/// never replace a serving view with a broken one. The sleep between
/// polls is the watcher's own suggestion
/// ([`SnapshotWatcher::next_poll_delay_ms`]): the base interval while
/// artifacts resolve, backed off exponentially (capped) while the store
/// stays empty — a server pointed at a family its stream has not
/// published yet does not hammer the filesystem.
fn watch_loop(
    watcher: &SnapshotWatcher,
    state: &RwLock<Arc<ModelView>>,
    dataset: &Arc<Dataset>,
    shutdown: &AtomicBool,
) {
    let reg = obs::global();
    while !shutdown.load(Ordering::SeqCst) {
        // Sleep in short slices so shutdown stays responsive even with
        // long (backed-off) poll delays.
        let poll_ms = watcher.next_poll_delay_ms();
        let mut slept = 0u64;
        while slept < poll_ms && !shutdown.load(Ordering::SeqCst) {
            let slice = (poll_ms - slept).min(10);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match watcher.poll(&SystemClock) {
            Ok(true) => {
                let Some(snapshot) = watcher.current() else {
                    continue;
                };
                match ModelView::build(snapshot, dataset.clone()) {
                    Ok(view) => {
                        let mut slot = state
                            .write()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        *slot = Arc::new(view);
                        reg.counter("serve_view_swaps_total").inc();
                    }
                    Err(_) => {
                        // The artifact verified but cannot be served
                        // (e.g. no TOD section): keep the old view.
                        reg.counter("serve_view_rebuild_errors_total").inc();
                    }
                }
            }
            Ok(false) => {}
            Err(_) => {
                reg.counter("serve_watch_poll_errors_total").inc();
            }
        }
    }
}
