//! Typed failure modes of the serving layer.

use std::fmt;

/// Everything that can go wrong while building a model view or running
/// the server. Request-level problems (bad paths, bad query parameters)
/// are *not* errors — they become 4xx responses in the router.
#[derive(Debug)]
pub enum ServeError {
    /// Artifact loading or verification failed.
    Checkpoint(checkpoint::CheckpointError),
    /// Network/tensor layer failure (shape mismatch, simulation error).
    Net(roadnet::RoadnetError),
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The snapshot source resolved to no good artifact at startup.
    NoArtifact(String),
    /// The artifact verifies but carries no recovered TOD tensor, so
    /// there is nothing to serve.
    MissingTod(String),
    /// The artifact's TOD shape does not match the serving dataset.
    ShapeMismatch {
        /// What the dataset implies.
        expected: String,
        /// What the artifact holds.
        actual: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "artifact error: {e}"),
            Self::Net(e) => write!(f, "network error: {e}"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::NoArtifact(what) => {
                write!(f, "no good artifact found for '{what}'")
            }
            Self::MissingTod(name) => write!(
                f,
                "artifact '{name}' holds no recovered TOD tensor (save with \
                 `cityod checkpoint save` to include it)"
            ),
            Self::ShapeMismatch { expected, actual } => write!(
                f,
                "artifact TOD shape mismatch: dataset implies {expected}, artifact holds {actual}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            Self::Net(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<checkpoint::CheckpointError> for ServeError {
    fn from(e: checkpoint::CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<roadnet::RoadnetError> for ServeError {
    fn from(e: roadnet::RoadnetError) -> Self {
        Self::Net(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
