//! The model view: everything the endpoints serve, derived once per
//! snapshot.
//!
//! A [`ModelView`] is built when a [`Snapshot`] is installed (at startup
//! and on every hot swap) and is immutable afterwards: the recovered TOD
//! is extracted from the artifact, re-simulated once over the serving
//! dataset to obtain per-link speed/volume fields, and the heavy response
//! bodies (`/kpis`, `/links`, `/map/geojson`, `/version`) are prerendered
//! as byte strings. Request handling is then pure lookup — no wall-clock,
//! no RNG, no mutation — which is what makes responses byte-identical
//! across server thread counts.

use crate::error::{Result, ServeError};
use crate::http::{push_json_f64, push_json_string};
use checkpoint::Snapshot;
use datagen::dataset::simulate;
use datagen::Dataset;
use eval::metrics::masked_speed_rmse;
use roadnet::{LinkId, LinkTensor, OdPair, TodTensor};
use std::sync::Arc;

/// Stable counters surfaced under `"recovery"` in `/kpis`: the trainer's
/// self-healing and storage-quarantine tallies.
pub const RECOVERY_COUNTERS: &[&str] = &[
    "trainer_v2s_rollbacks_total",
    "trainer_v2s_nonfinite_total",
    "trainer_tod2v_rollbacks_total",
    "trainer_tod2v_nonfinite_total",
    "trainer_fit_rollbacks_total",
    "trainer_fit_nonfinite_total",
    "trainer_fit_lr_backoffs_total",
    "trainer_fit_diverged_total",
    "store_quarantined_total",
    "store_retries_total",
    "snapshot_watcher_swaps_total",
];

/// Immutable, fully prerendered serving state for one snapshot.
#[derive(Debug)]
pub struct ModelView {
    snapshot: Snapshot,
    dataset: Arc<Dataset>,
    etag: String,
    tod: TodTensor,
    speed: LinkTensor,
    volume: LinkTensor,
    masked_rmse: f64,
    version_json: String,
    kpis_json: String,
    links_json: String,
    geojson: String,
    incidents_json: String,
}

impl ModelView {
    /// Builds the view: extract the recovered TOD, validate its shape
    /// against the serving dataset, re-simulate it for link fields, and
    /// prerender every whole-collection response body.
    pub fn build(snapshot: Snapshot, dataset: Arc<Dataset>) -> Result<Self> {
        let tod = ovs_core::artifact::recovered_tod(snapshot.artifact())?
            .ok_or_else(|| ServeError::MissingTod(snapshot.name().to_string()))?;
        if tod.rows() != dataset.n_od() || tod.num_intervals() != dataset.n_intervals() {
            return Err(ServeError::ShapeMismatch {
                expected: format!("{} x {}", dataset.n_od(), dataset.n_intervals()),
                actual: format!("{} x {}", tod.rows(), tod.num_intervals()),
            });
        }
        let out = simulate(&dataset.net, &dataset.ods, &dataset.sim_config, &tod)?;
        let mask = vec![true; dataset.n_links() * dataset.n_intervals()];
        let masked_rmse = masked_speed_rmse(&dataset.observed_speed, &out.speed, &mask)?;
        let etag = snapshot.etag();
        let version_json = render_version(&snapshot, &dataset);
        let kpis_json = render_kpis(&snapshot, &dataset, &tod, masked_rmse);
        let links_json = render_links(&dataset, &out.speed, &out.volume);
        let geojson =
            roadnet::export::to_geojson_fields(&dataset.net, Some(&out.speed), Some(&out.volume));
        let incidents_json = render_incidents(&snapshot)?;
        Ok(Self {
            snapshot,
            dataset,
            etag,
            tod,
            speed: out.speed,
            volume: out.volume,
            masked_rmse,
            version_json,
            kpis_json,
            links_json,
            geojson,
            incidents_json,
        })
    }

    /// The snapshot the view was built from.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The serving dataset (geometry + observations).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The quoted validator every cacheable endpoint reports.
    pub fn etag(&self) -> &str {
        &self.etag
    }

    /// Masked speed RMSE of the re-simulated fields vs the observations.
    pub fn masked_rmse(&self) -> f64 {
        self.masked_rmse
    }

    /// Prerendered `/version` body.
    pub fn version_json(&self) -> &str {
        &self.version_json
    }

    /// Prerendered `/kpis` body.
    pub fn kpis_json(&self) -> &str {
        &self.kpis_json
    }

    /// Prerendered `/links` body.
    pub fn links_json(&self) -> &str {
        &self.links_json
    }

    /// Prerendered `/map/geojson` body.
    pub fn geojson(&self) -> &str {
        &self.geojson
    }

    /// Prerendered `/incidents` body: the network-incident provenance the
    /// stream driver published alongside this snapshot's window (empty
    /// list when the artifact carries no incident section).
    pub fn incidents_json(&self) -> &str {
        &self.incidents_json
    }

    /// Renders one link's detail body, or `None` for an unknown id.
    pub fn link_json(&self, id: usize) -> Option<String> {
        let link = self.dataset.net.links().get(id)?;
        let mut out = String::from("{\"link\":");
        out.push_str(&id.to_string());
        out.push_str(",\"from\":");
        out.push_str(&link.from.index().to_string());
        out.push_str(",\"to\":");
        out.push_str(&link.to.index().to_string());
        out.push_str(",\"length_m\":");
        push_json_f64(&mut out, link.length_m);
        out.push_str(",\"lanes\":");
        out.push_str(&link.lanes.to_string());
        out.push_str(",\"speed_limit_mps\":");
        push_json_f64(&mut out, link.speed_limit_mps);
        push_series(&mut out, "speed", self.speed.row(LinkId(id)));
        push_series(&mut out, "volume", self.volume.row(LinkId(id)));
        out.push('}');
        Some(out)
    }

    /// Renders one OD pair's slice body, or `None` when the pair is not
    /// part of the serving OD set.
    pub fn od_json(&self, origin: usize, dest: usize) -> Option<String> {
        let pair = OdPair::new(roadnet::RegionId(origin), roadnet::RegionId(dest)).ok()?;
        let id = self.dataset.ods.index_of(pair)?;
        let row = self.tod.row(id);
        let mut out = String::from("{\"origin\":");
        out.push_str(&origin.to_string());
        out.push_str(",\"dest\":");
        out.push_str(&dest.to_string());
        out.push_str(",\"od_pair\":");
        out.push_str(&id.index().to_string());
        out.push_str(",\"total_trips\":");
        push_json_f64(&mut out, row.iter().sum());
        push_series(&mut out, "trips", row);
        out.push('}');
        Some(out)
    }
}

/// Appends `,"{name}":[v0,v1,...]` to `out`.
fn push_series(out: &mut String, name: &str, values: &[f64]) {
    out.push(',');
    push_json_string(out, name);
    out.push_str(":[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f64(out, v);
    }
    out.push(']');
}

fn render_version(snapshot: &Snapshot, dataset: &Dataset) -> String {
    let mut out = String::from("{\"artifact\":");
    push_json_string(&mut out, snapshot.name());
    out.push_str(",\"fingerprint\":");
    push_json_string(&mut out, snapshot.fingerprint());
    out.push_str(",\"kind\":");
    push_json_string(&mut out, snapshot.artifact().kind());
    out.push_str(",\"size_bytes\":");
    out.push_str(&snapshot.size().to_string());
    out.push_str(",\"dataset\":");
    push_json_string(&mut out, &dataset.name);
    if let Some(p) = snapshot.provenance() {
        out.push_str(",\"seed\":");
        out.push_str(&p.seed.to_string());
        out.push_str(",\"git\":");
        push_json_string(&mut out, &p.git);
    }
    out.push('}');
    out
}

fn render_kpis(snapshot: &Snapshot, dataset: &Dataset, tod: &TodTensor, rmse: f64) -> String {
    let regions = dataset.net.regions();
    let mut outbound = vec![0.0f64; regions.len()];
    let mut inbound = vec![0.0f64; regions.len()];
    for (id, pair) in dataset.ods.iter() {
        let trips = tod.row_total(id);
        if let Some(o) = outbound.get_mut(pair.origin.index()) {
            *o += trips;
        }
        if let Some(i) = inbound.get_mut(pair.destination.index()) {
            *i += trips;
        }
    }
    let mut out = String::from("{\"artifact\":");
    push_json_string(&mut out, snapshot.name());
    out.push_str(",\"fingerprint\":");
    push_json_string(&mut out, snapshot.fingerprint());
    out.push_str(",\"total_trips\":");
    push_json_f64(&mut out, tod.total());
    out.push_str(",\"masked_speed_rmse\":");
    push_json_f64(&mut out, rmse);
    out.push_str(",\"intervals\":");
    out.push_str(&dataset.n_intervals().to_string());
    out.push_str(",\"od_pairs\":");
    out.push_str(&dataset.n_od().to_string());
    out.push_str(",\"regions\":[");
    for (i, region) in regions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"region\":");
        out.push_str(&i.to_string());
        out.push_str(",\"name\":");
        push_json_string(&mut out, &region.name);
        out.push_str(",\"population\":");
        push_json_f64(&mut out, region.population);
        out.push_str(",\"outbound_trips\":");
        push_json_f64(&mut out, outbound.get(i).copied().unwrap_or(0.0));
        out.push_str(",\"inbound_trips\":");
        push_json_f64(&mut out, inbound.get(i).copied().unwrap_or(0.0));
        out.push('}');
    }
    out.push_str("],\"recovery\":{");
    for (i, name) in RECOVERY_COUNTERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        out.push_str(&obs::global().counter(name).get().to_string());
    }
    out.push_str("}}");
    out
}

fn render_links(dataset: &Dataset, speed: &LinkTensor, volume: &LinkTensor) -> String {
    let mut out = String::from("{\"links\":[");
    for (i, link) in dataset.net.links().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"link\":");
        out.push_str(&i.to_string());
        out.push_str(",\"length_m\":");
        push_json_f64(&mut out, link.length_m);
        out.push_str(",\"lanes\":");
        out.push_str(&link.lanes.to_string());
        out.push_str(",\"mean_speed\":");
        push_json_f64(&mut out, mean(speed.row(LinkId(i))));
        out.push_str(",\"mean_volume\":");
        push_json_f64(&mut out, mean(volume.row(LinkId(i))));
        out.push('}');
    }
    out.push_str("],\"count\":");
    out.push_str(&dataset.n_links().to_string());
    out.push('}');
    out
}

/// Renders the `/incidents` body from the artifact's
/// [`ovs_core::artifact::INCIDENTS_SECTION`] rows (7 f64s per incident:
/// kind code, target code, target index, onset tick, duration ticks,
/// severity, window-relative status). Artifacts published by a batch run
/// or an incident-free stream carry no section and serve an empty list.
fn render_incidents(snapshot: &Snapshot) -> Result<String> {
    let section = ovs_core::artifact::INCIDENTS_SECTION;
    let rows = if snapshot.artifact().has(section) {
        snapshot.artifact().f64s(section)?
    } else {
        Vec::new()
    };
    let mut out = String::from("{\"artifact\":");
    push_json_string(&mut out, snapshot.name());
    out.push_str(",\"incidents\":[");
    let mut count = 0usize;
    let mut active = 0usize;
    for row in rows.chunks_exact(7) {
        let field = |j: usize| row.get(j).copied().unwrap_or(0.0);
        if count > 0 {
            out.push(',');
        }
        count += 1;
        let kind = simulator::IncidentKind::from_code(field(0) as u8)
            .map(|k| k.label())
            .unwrap_or("unknown");
        out.push_str("{\"kind\":");
        push_json_string(&mut out, kind);
        out.push(',');
        push_json_string(&mut out, if field(1) as u8 == 1 { "node" } else { "link" });
        out.push(':');
        out.push_str(&(field(2) as u64).to_string());
        out.push_str(",\"onset_tick\":");
        out.push_str(&(field(3) as u64).to_string());
        out.push_str(",\"duration_ticks\":");
        out.push_str(&(field(4) as u64).to_string());
        out.push_str(",\"severity\":");
        push_json_f64(&mut out, field(5));
        let status = match field(6) as u8 {
            0 => "past",
            1 => "active",
            _ => "scheduled",
        };
        if status == "active" {
            active += 1;
        }
        out.push_str(",\"status\":");
        push_json_string(&mut out, status);
        out.push('}');
    }
    out.push_str("],\"count\":");
    out.push_str(&count.to_string());
    out.push_str(",\"active\":");
    out.push_str(&active.to_string());
    out.push('}');
    Ok(out)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
