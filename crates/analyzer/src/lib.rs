//! cityod-lint — static analysis for the city-od workspace.
//!
//! A zero-dependency linter enforcing the properties the OVS reproduction
//! stakes its credibility on (see DESIGN.md §9):
//!
//! * **D — determinism**: no `HashMap`/`HashSet`, wall-clock, environment
//!   or thread-identity reads in stable-output crates;
//! * **P — panic-safety**: `unwrap`/`expect`/panicking macros/bare slice
//!   indexing in hot-crate library code are budgeted by a committed
//!   ratchet baseline and can only decrease;
//! * **S — shape soundness**: `Sequential`/`SeqSequential` layer stacks
//!   must chain their declared in/out dimensions;
//! * **U — unsafe audit**: every `unsafe` requires a `// SAFETY:` comment.
//!
//! Run with `cargo run -p analyzer -- check [--json] [--rule D|P|S|U]
//! [--baseline <path>] [--update-baseline]`.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

use baseline::Baseline;
use report::Report;
use rules::{determinism_pass, panic_pass, shape_pass, unsafe_pass, Finding, Rule};
use source::{FileKind, SourceFile};
use std::path::{Path, PathBuf};

/// Crates on the stable-output path: rule D (determinism) and rule P
/// (panic-safety) apply to their non-test library code.
pub const PROTECTED_CRATES: [&str; 9] = [
    "simulator",
    "roadnet",
    "neural",
    "ovs-core",
    "checkpoint",
    "obs",
    "fault",
    "serve",
    "stream",
];

/// Options for one check run.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Restrict to one rule (`None` = all).
    pub rule: Option<Rule>,
    /// Baseline path override.
    pub baseline: Option<PathBuf>,
    /// Rewrite the baseline to the observed counts after checking.
    pub update_baseline: bool,
}

/// Runs every applicable rule pass over one analysed file and applies
/// allow-comment suppression. This is the single entry both the CLI
/// driver and the fixture tests go through.
pub fn check_file(file: &SourceFile, only: Option<Rule>) -> Vec<Finding> {
    let protected = PROTECTED_CRATES.contains(&file.crate_name.as_str());
    let mut findings = Vec::new();
    let want = |r: Rule| only.is_none() || only == Some(r);
    if want(Rule::Determinism) && protected && file.kind == FileKind::Lib {
        findings.extend(determinism_pass(file));
    }
    if want(Rule::Panic) && protected && file.kind == FileKind::Lib {
        findings.extend(panic_pass(file));
    }
    if want(Rule::Shape) {
        findings.extend(shape_pass(file));
    }
    if want(Rule::UnsafeAudit) {
        findings.extend(unsafe_pass(file));
    }
    findings.retain(|f| !file.is_allowed(f.rule, f.line));
    findings
}

/// Analyses a whole workspace tree and builds the report.
pub fn check_workspace(root: &Path, opts: &CheckOptions) -> Result<Report, String> {
    let items = walk::discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if items.is_empty() {
        return Err(format!("no .rs files found under {}", root.display()));
    }
    let mut findings = Vec::new();
    for item in &items {
        let src =
            std::fs::read_to_string(&item.abs).map_err(|e| format!("reading {}: {e}", item.rel))?;
        let file = SourceFile::new(&item.rel, &item.crate_name, item.kind, &src);
        findings.extend(check_file(&file, opts.rule));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let baseline_path = baseline_path(root, opts);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        Err(_) => Baseline::default(),
    };
    let rep = Report::build(findings, &baseline);

    if opts.update_baseline {
        let next = Baseline::from_counts(&rep.counts);
        std::fs::write(&baseline_path, next.to_toml())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    }
    Ok(rep)
}

/// Resolves the baseline path: explicit flag, else `analyzer/baseline.toml`
/// under the root when present (the ISSUE-documented location), else the
/// crate-local `crates/analyzer/baseline.toml`.
pub fn baseline_path(root: &Path, opts: &CheckOptions) -> PathBuf {
    if let Some(p) = &opts.baseline {
        return p.clone();
    }
    let issue_loc = root.join("analyzer/baseline.toml");
    if issue_loc.exists() {
        return issue_loc;
    }
    root.join("crates/analyzer/baseline.toml")
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
