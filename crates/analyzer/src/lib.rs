//! cityod-lint — static analysis for the city-od workspace.
//!
//! A zero-dependency linter enforcing the properties the OVS reproduction
//! stakes its credibility on (see DESIGN.md §9):
//!
//! * **D — determinism**: no `HashMap`/`HashSet`, wall-clock, environment
//!   or thread-identity reads in stable-output crates;
//! * **P — panic-safety**: `unwrap`/`expect`/panicking macros/bare slice
//!   indexing in hot-crate library code are budgeted by a committed
//!   ratchet baseline and can only decrease;
//! * **S — shape soundness**: `Sequential`/`SeqSequential` layer stacks
//!   must chain their declared in/out dimensions;
//! * **U — unsafe audit**: every `unsafe` requires a `// SAFETY:` comment;
//! * **C — concurrency discipline**: no `static mut`, no lock guard held
//!   across a call into another locking function, no `RwLock` write
//!   under a live read guard, no spawned thread without a join;
//! * **M — metrics contract**: counters end `_total`, timing instruments
//!   end `_seconds` (`_per_sec` for rate gauges), label keys sorted,
//!   Stable metrics never fed from wall-clock sources;
//! * **A — hot-path allocation**: no heap allocation in functions
//!   reachable from the `Workspace` step path or a `// lint: hot` root.
//!
//! Rules C/M/A are *cross-file*: the driver first builds a
//! [`symbols::WorkspaceIndex`] (fn/impl symbol table, per-crate string
//! consts, and an intra-crate name-based call graph) over every analysed
//! file, then runs the passes with that index in hand (DESIGN.md §14).
//!
//! Run with `cargo run -p analyzer -- check [--json] [--rule D|P|S|U|C|M|A]
//! [--baseline <path>] [--update-baseline]`.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod walk;

use baseline::Baseline;
use report::Report;
use rules::{
    alloc_pass, concurrency_pass, determinism_pass, metrics_pass, panic_pass, shape_pass,
    unsafe_pass, Finding, Rule,
};
use source::{FileKind, SourceFile};
use std::path::{Path, PathBuf};
use symbols::WorkspaceIndex;

/// Crates on the stable-output path: rule D (determinism) and rule C
/// (concurrency) apply to their non-test library code, and rule P
/// (panic-safety) ratchets them.
pub const PROTECTED_CRATES: [&str; 11] = [
    "simulator",
    "roadnet",
    "neural",
    "ovs-core",
    "checkpoint",
    "obs",
    "fault",
    "serve",
    "stream",
    "datagen",
    "analyzer",
];

/// Crates under the panic-debt ratchet (rule P) but not (yet) on the
/// stable-output path: tooling whose debt we burn down without claiming
/// determinism. A crate graduates into [`PROTECTED_CRATES`] when its
/// baseline budget reaches zero and rule D holds — as `analyzer` did
/// once its lexer grew sentinel accessors and its debt hit zero.
pub const RATCHETED_EXTRAS: [&str; 1] = ["bench"];

/// True when rule P's ratchet applies to this crate.
pub fn is_ratcheted(crate_name: &str) -> bool {
    PROTECTED_CRATES.contains(&crate_name) || RATCHETED_EXTRAS.contains(&crate_name)
}

/// Options for one check run.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Restrict to one rule (`None` = all).
    pub rule: Option<Rule>,
    /// Baseline path override.
    pub baseline: Option<PathBuf>,
    /// Rewrite the baseline to the observed counts after checking.
    pub update_baseline: bool,
}

/// Checks a set of analysed files as one workspace: phase 1 builds the
/// [`WorkspaceIndex`] (symbol table + call graph) over *all* files,
/// phase 2 runs every applicable rule pass per file with the index in
/// hand, then applies allow-comment suppression. This is the single
/// entry the CLI driver, the fixture tests and the self-lint test go
/// through.
pub fn check_files(files: &[SourceFile], only: Option<Rule>) -> Vec<Finding> {
    let idx = WorkspaceIndex::build(files);
    let want = |r: Rule| only.is_none() || only == Some(r);
    let mut findings = Vec::new();
    for (ix, file) in files.iter().enumerate() {
        let protected = PROTECTED_CRATES.contains(&file.crate_name.as_str());
        let lib = file.kind == FileKind::Lib;
        let mut local = Vec::new();
        if want(Rule::Determinism) && protected && lib {
            local.extend(determinism_pass(file));
        }
        if want(Rule::Panic) && is_ratcheted(&file.crate_name) && lib {
            local.extend(panic_pass(file));
        }
        if want(Rule::Shape) {
            local.extend(shape_pass(file));
        }
        if want(Rule::UnsafeAudit) {
            local.extend(unsafe_pass(file));
        }
        if want(Rule::Concurrency) && protected && lib {
            local.extend(concurrency_pass(file, ix, &idx));
        }
        if want(Rule::Metrics) && lib {
            local.extend(metrics_pass(file, &idx));
        }
        if want(Rule::Alloc) && lib {
            local.extend(alloc_pass(file, ix, &idx));
        }
        local.retain(|f| !file.is_allowed(f.rule, f.line));
        findings.append(&mut local);
    }
    findings
}

/// Single-file convenience wrapper around [`check_files`]: the call
/// graph, const index and hot set only see this one file.
pub fn check_file(file: &SourceFile, only: Option<Rule>) -> Vec<Finding> {
    check_files(std::slice::from_ref(file), only)
}

/// Analyses a whole workspace tree and builds the report.
pub fn check_workspace(root: &Path, opts: &CheckOptions) -> Result<Report, String> {
    let items = walk::discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if items.is_empty() {
        return Err(format!("no .rs files found under {}", root.display()));
    }
    let mut files = Vec::with_capacity(items.len());
    for item in &items {
        let src =
            std::fs::read_to_string(&item.abs).map_err(|e| format!("reading {}: {e}", item.rel))?;
        files.push(SourceFile::new(
            &item.rel,
            &item.crate_name,
            item.kind,
            &src,
        ));
    }
    let mut findings = check_files(&files, opts.rule);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let baseline_path = baseline_path(root, opts);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        Err(_) => Baseline::default(),
    };
    let rep = Report::build(findings, &baseline);

    if opts.update_baseline {
        let next = Baseline::from_counts(&rep.counts);
        std::fs::write(&baseline_path, next.to_toml())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    }
    Ok(rep)
}

/// Resolves the baseline path: explicit flag, else `analyzer/baseline.toml`
/// under the root when present (the ISSUE-documented location), else the
/// crate-local `crates/analyzer/baseline.toml`.
pub fn baseline_path(root: &Path, opts: &CheckOptions) -> PathBuf {
    if let Some(p) = &opts.baseline {
        return p.clone();
    }
    let issue_loc = root.join("analyzer/baseline.toml");
    if issue_loc.exists() {
        return issue_loc;
    }
    root.join("crates/analyzer/baseline.toml")
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
