//! Per-file analysis context: lexed tokens, test-region mask, allow
//! annotations and crate attribution.

use crate::lexer::{lex, tok, Comment, Lexed, TokKind, Token};
use crate::rules::Rule;

/// Where a file sits relative to the library/test split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<c>/src/**` or the root `src/**` — library code.
    Lib,
    /// `tests/`, `examples/`, `benches/` — never on the stable path.
    TestLike,
}

/// An `// lint: allow(<rule>) — reason` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the annotation is on.
    pub line: u32,
    /// Rule being suppressed.
    pub rule: Rule,
    /// Whether a non-empty justification follows the rule name.
    pub has_reason: bool,
}

/// One source file, lexed and classified, ready for the rule passes.
pub struct SourceFile {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// Owning crate name (e.g. `simulator`), or the root package name.
    pub crate_name: String,
    /// Library vs test-like location.
    pub kind: FileKind,
    /// Token stream (comments and literal bodies stripped).
    pub tokens: Vec<Token>,
    /// Per-token flag: true when the token is inside a `#[cfg(test)]`
    /// item or a `#[test]` function.
    pub in_test: Vec<bool>,
    /// Comment side channel.
    pub comments: Vec<Comment>,
    /// Allow annotations parsed from the comments.
    pub allows: Vec<Allow>,
    /// Raw source lines, for snippets.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and classifies one file.
    pub fn new(path: &str, crate_name: &str, kind: FileKind, src: &str) -> Self {
        let Lexed { tokens, comments } = lex(src);
        let in_test = test_mask(&tokens);
        let allows = parse_allows(&comments);
        Self {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            tokens,
            in_test,
            comments,
            allows,
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    /// True when token `i` is inside a test region (see [`test_mask`]).
    pub fn masked(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// The trimmed source text of a 1-based line, for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// True when a finding of `rule` at `line` is suppressed by an allow
    /// annotation on the same line or up to two lines above it.
    pub fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.has_reason && a.line <= line && line <= a.line + 2)
    }

    /// True when some comment within `above..=line` contains `needle`
    /// (used for `SAFETY:` lookup).
    pub fn comment_near(&self, line: u32, above: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(above);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains(needle))
    }
}

/// Computes the per-token test mask: tokens covered by a `#[cfg(test)]`
/// item (typically `mod tests { … }`) or a `#[test]` function.
///
/// The walk is syntactic: after a matching attribute (and any further
/// attributes), the next item extends either to the first `;` at bracket
/// depth zero or through the matching `}` of the first `{` opened.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attr(tokens, i) {
            let end = item_end(tokens, after_attr);
            for m in mask.iter_mut().take(end).skip(i) {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If the tokens at `i` start a `#[cfg(test)]` / `#[test]` attribute
/// (possibly followed by more attributes), returns the index just past
/// the final attribute.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = attr_body(tokens, i)?;
    // j points at the first token inside `#[ … ]`.
    let is_test = if tokens.get(j)?.is_ident("test") {
        true
    } else if tokens.get(j)?.is_ident("cfg")
        && tokens.get(j + 1)?.is_punct('(')
        && tokens.get(j + 2)?.is_ident("test")
        && matches!(tokens.get(j + 3), Some(t) if t.is_punct(')') || t.is_punct(','))
    {
        // `#[cfg(test)]` or `#[cfg(test, …)]` — but not `#[cfg(not(test))]`.
        true
    } else {
        false
    };
    if !is_test {
        return None;
    }
    // Skip past this attribute's closing `]`, then any further attributes.
    let mut depth = 0i32;
    while j < tokens.len() {
        if tok(tokens, j).is_punct('[') {
            depth += 1;
        } else if tok(tokens, j).is_punct(']') {
            if depth == 0 {
                j += 1;
                break;
            }
            depth -= 1;
        }
        j += 1;
    }
    while let Some(next) = attr_body(tokens, j) {
        // Another attribute: skip it whole.
        let mut k = next;
        let mut d = 0i32;
        while k < tokens.len() {
            if tok(tokens, k).is_punct('[') {
                d += 1;
            } else if tok(tokens, k).is_punct(']') {
                if d == 0 {
                    k += 1;
                    break;
                }
                d -= 1;
            }
            k += 1;
        }
        j = k;
    }
    Some(j)
}

/// If tokens at `i` start `#[`, returns the index of the first token of
/// the attribute body.
fn attr_body(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[') {
        Some(i + 2)
    } else {
        None
    }
}

/// Returns the token index just past the item starting at `i`: through
/// the matching `}` of its first top-level `{`, or past the first `;`
/// seen before any brace.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut paren = 0i32;
    while j < tokens.len() {
        let t = tok(tokens, j);
        if t.is_punct(';') && paren == 0 {
            return j + 1;
        }
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('{') {
            // Body found: skip to its matching close brace.
            let mut depth = 1i32;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if tok(tokens, j).is_punct('{') {
                    depth += 1;
                } else if tok(tokens, j).is_punct('}') {
                    depth -= 1;
                }
                j += 1;
            }
            return j;
        }
        j += 1;
    }
    j
}

/// Parses `lint: allow(<rule>) <reason>` annotations out of comments.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let Some((_, after_marker)) = c.text.split_once("lint:") else {
            continue;
        };
        let Some(body) = after_marker.trim_start().strip_prefix("allow(") else {
            continue;
        };
        let Some((rule_name, after_close)) = body.split_once(')') else {
            continue;
        };
        let Some(rule) = Rule::from_name(rule_name.trim()) else {
            continue;
        };
        let reason = after_close.trim_matches(|ch: char| !ch.is_alphanumeric());
        out.push(Allow {
            line: c.line,
            rule,
            has_reason: !reason.trim().is_empty(),
        });
    }
    out
}

/// True when `text` is a Rust keyword — used to tell `arr[i]` indexing
/// apart from constructs like `let [a, b] = …` or `return [x];`.
pub fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "yield"
    )
}

/// True when the token can syntactically *end* an expression, meaning a
/// following `[` is an index operation.
pub fn ends_expression(t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => !is_keyword(&t.text),
        TokKind::Punct => t.is_punct(')') || t.is_punct(']'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new("x.rs", "x", FileKind::Lib, src)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f =
            sf("fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}");
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test[unwrap_idx]);
        let lib_idx = f.tokens.iter().position(|t| t.is_ident("lib")).unwrap();
        let tail_idx = f.tokens.iter().position(|t| t.is_ident("tail")).unwrap();
        assert!(!f.in_test[lib_idx]);
        assert!(
            !f.in_test[tail_idx],
            "mask must end at the mod's close brace"
        );
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let f = sf("#[test]\nfn t() { x.unwrap(); }\nfn lib() {}");
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test[unwrap_idx]);
        let lib_idx = f.tokens.iter().position(|t| t.is_ident("lib")).unwrap();
        assert!(!f.in_test[lib_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = sf("#[cfg(not(test))]\nfn lib() { x.unwrap(); }");
        assert!(f.in_test.iter().all(|&m| !m));
    }

    #[test]
    fn allow_annotations_parse() {
        let f = sf("// lint: allow(determinism) — wall clock feeds Timing metrics only\nlet t = Instant::now();");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, Rule::Determinism);
        assert!(f.allows[0].has_reason);
        assert!(f.is_allowed(Rule::Determinism, 2));
        assert!(!f.is_allowed(Rule::Panic, 2));
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let f = sf("// lint: allow(panic)\nx.unwrap();");
        assert_eq!(f.allows.len(), 1);
        assert!(!f.allows[0].has_reason);
        assert!(!f.is_allowed(Rule::Panic, 2));
    }
}
