//! Check results: hard errors, budgeted debt, and rendering (human and
//! JSON — the JSON encoder is hand-rolled to keep the crate
//! zero-dependency).

use crate::baseline::{Baseline, KINDS};
use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One over-budget `(crate, kind)` bucket.
#[derive(Debug, Clone)]
pub struct BudgetViolation {
    /// Crate whose debt grew.
    pub crate_name: String,
    /// Panic-kind bucket (`unwrap`, `expect`, `panic`, `indexing`).
    pub kind: String,
    /// Observed count.
    pub count: u64,
    /// Budgeted count from `baseline.toml`.
    pub budget: u64,
}

/// Outcome of one `check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed D/S/U findings — always errors.
    pub errors: Vec<Finding>,
    /// All unsuppressed P findings (the debt inventory).
    pub debt: Vec<Finding>,
    /// Observed P counts per `(crate, kind)`.
    pub counts: BTreeMap<(String, String), u64>,
    /// Buckets whose count exceeds the baseline budget.
    pub over_budget: Vec<BudgetViolation>,
    /// Buckets whose count dropped below budget (ratchet can tighten).
    pub slack: Vec<BudgetViolation>,
}

impl Report {
    /// Builds the report from raw findings and the baseline.
    pub fn build(findings: Vec<Finding>, baseline: &Baseline) -> Self {
        let mut r = Report::default();
        for f in findings {
            if f.rule == Rule::Panic {
                *r.counts
                    .entry((f.crate_name.clone(), f.kind.to_string()))
                    .or_insert(0) += 1;
                r.debt.push(f);
            } else {
                r.errors.push(f);
            }
        }
        // Compare counts to budgets over the union of crates seen in
        // either place, so a stale baseline entry still surfaces slack.
        let mut crates: Vec<String> = r.counts.keys().map(|(c, _)| c.clone()).collect();
        crates.extend(baseline.budgets.keys().cloned());
        crates.sort();
        crates.dedup();
        for crate_name in crates {
            for kind in KINDS {
                let count = r
                    .counts
                    .get(&(crate_name.clone(), kind.to_string()))
                    .copied()
                    .unwrap_or(0);
                let budget = baseline.budget(&crate_name, kind);
                let v = BudgetViolation {
                    crate_name: crate_name.clone(),
                    kind: kind.to_string(),
                    count,
                    budget,
                };
                if count > budget {
                    r.over_budget.push(v);
                } else if count < budget {
                    r.slack.push(v);
                }
            }
        }
        r
    }

    /// True when the check passes.
    pub fn ok(&self) -> bool {
        self.errors.is_empty() && self.over_budget.is_empty()
    }

    /// Process exit code for the CLI.
    pub fn exit_code(&self) -> i32 {
        if self.ok() {
            0
        } else {
            1
        }
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.errors {
            let _ = writeln!(
                s,
                "error[{}/{}]: {}:{}: {}\n    {}",
                f.rule.code(),
                f.kind,
                f.file,
                f.line,
                f.message,
                f.snippet
            );
        }
        for v in &self.over_budget {
            let _ = writeln!(
                s,
                "error[P/ratchet]: crate `{}` has {} `{}` finding(s), budget is {} — \
                 new panic-debt is not allowed (see baseline.toml)",
                v.crate_name, v.count, v.kind, v.budget
            );
            for f in self
                .debt
                .iter()
                .filter(|f| f.crate_name == v.crate_name && f.kind == v.kind)
            {
                let _ = writeln!(s, "    {}:{}: {}", f.file, f.line, f.snippet);
            }
        }
        for v in &self.slack {
            let _ = writeln!(
                s,
                "note: crate `{}` `{}` debt is {} but budget is {} — run with \
                 --update-baseline to ratchet down",
                v.crate_name, v.kind, v.count, v.budget
            );
        }
        let debt_total: u64 = self.counts.values().sum();
        let _ = writeln!(
            s,
            "cityod-lint: {} error(s), {} over-budget bucket(s), {} budgeted debt finding(s)",
            self.errors.len(),
            self.over_budget.len(),
            debt_total
        );
        let _ = writeln!(
            s,
            "cityod-lint: {}",
            if self.ok() { "PASS" } else { "FAIL" }
        );
        s
    }

    /// Machine-readable rendering, following the `obs::to_json_stable`
    /// conventions: byte-stable output for identical inputs, keys in
    /// alphabetical order at every level, one entry per line. CI uploads
    /// this as the `cityod-lint.json` artifact.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        let mut first = true;
        for f in self.errors.iter().chain(self.debt.iter()) {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\n    {{\"crate\": \"{}\", \"file\": \"{}\", \"kind\": \"{}\", \"line\": {}, \
                 \"message\": \"{}\", \"rule\": \"{}\", \"snippet\": \"{}\"}}",
                json_escape(&f.crate_name),
                json_escape(&f.file),
                json_escape(f.kind),
                f.line,
                json_escape(&f.message),
                f.rule.code(),
                json_escape(&f.snippet)
            );
        }
        s.push_str("\n  ],\n  \"format_version\": 1,\n  \"ok\": ");
        s.push_str(if self.ok() { "true" } else { "false" });
        s.push_str(",\n  \"over_budget\": [");
        first = true;
        for v in &self.over_budget {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\n    {{\"budget\": {}, \"count\": {}, \"crate\": \"{}\", \"kind\": \"{}\"}}",
                v.budget,
                v.count,
                json_escape(&v.crate_name),
                json_escape(&v.kind)
            );
        }
        s.push_str("\n  ],\n  \"rule_counts\": {");
        let mut rules: Vec<Rule> = Rule::all().to_vec();
        rules.sort_by_key(|r| r.code());
        first = true;
        for r in rules {
            if !first {
                s.push(',');
            }
            first = false;
            let n = self
                .errors
                .iter()
                .chain(self.debt.iter())
                .filter(|f| f.rule == r)
                .count();
            let _ = write!(s, "\n    \"{}\": {}", r.code(), n);
        }
        let debt_total: u64 = self.counts.values().sum();
        let _ = write!(
            s,
            "\n  }},\n  \"summary\": {{\"debt\": {}, \"errors\": {}, \"over_budget\": {}}}\n}}\n",
            debt_total,
            self.errors.len(),
            self.over_budget.len()
        );
        s
    }
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn finding(rule: Rule, kind: &'static str, crate_name: &str) -> Finding {
        let f = SourceFile::new("f.rs", crate_name, FileKind::Lib, "x\n");
        Finding::new(&f, rule, kind, 1, "msg".to_string())
    }

    #[test]
    fn dsu_findings_are_errors() {
        let r = Report::build(
            vec![finding(Rule::Determinism, "hashmap", "simulator")],
            &Baseline::default(),
        );
        assert!(!r.ok());
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn panic_findings_ratchet_against_budget() {
        let base = Baseline::parse("[roadnet]\nunwrap = 1\n").unwrap();
        let one = Report::build(vec![finding(Rule::Panic, "unwrap", "roadnet")], &base);
        assert!(one.ok(), "within budget");
        let two = Report::build(
            vec![
                finding(Rule::Panic, "unwrap", "roadnet"),
                finding(Rule::Panic, "unwrap", "roadnet"),
            ],
            &base,
        );
        assert!(!two.ok(), "over budget");
        assert_eq!(two.over_budget.len(), 1);
        assert_eq!(two.over_budget[0].count, 2);
    }

    #[test]
    fn slack_is_reported_not_fatal() {
        let base = Baseline::parse("[roadnet]\nunwrap = 5\n").unwrap();
        let r = Report::build(vec![finding(Rule::Panic, "unwrap", "roadnet")], &base);
        assert!(r.ok());
        assert_eq!(r.slack.len(), 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Report::build(
            vec![finding(Rule::Shape, "shape-mismatch", "neural")],
            &Baseline::default(),
        );
        let j = r.render_json();
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("\"rule\": \"S\""));
        assert!(json_escape("a\"b\\c\nd") == "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_is_byte_stable_with_alphabetical_keys() {
        let r = Report::build(
            vec![
                finding(Rule::Shape, "shape-mismatch", "neural"),
                finding(Rule::Metrics, "counter-name", "serve"),
            ],
            &Baseline::default(),
        );
        let a = r.render_json();
        let b = r.render_json();
        assert_eq!(a, b, "identical inputs must render byte-identically");
        assert!(a.contains("\"format_version\": 1"));
        // Keys inside a finding object are alphabetical.
        let pos = |k: &str| a.find(k).unwrap_or_else(|| panic!("missing {k}"));
        assert!(pos("\"crate\"") < pos("\"file\""));
        assert!(pos("\"file\"") < pos("\"kind\""));
        assert!(pos("\"kind\"") < pos("\"line\""));
        assert!(pos("\"line\"") < pos("\"message\""));
        // Per-rule counts are present for all seven rules, sorted by code.
        assert!(a.contains("\"A\": 0"));
        assert!(a.contains("\"M\": 1"));
        assert!(a.contains("\"S\": 1"));
        assert!(pos("\"A\":") < pos("\"C\":"));
        assert!(pos("\"C\":") < pos("\"D\":"));
    }
}
