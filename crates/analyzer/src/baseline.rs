//! The panic-debt ratchet baseline.
//!
//! `baseline.toml` records, per crate and per panic-kind, how many rule-P
//! findings are currently tolerated. The check fails when any count
//! *exceeds* its budget and suggests tightening when a count drops below
//! it — debt can only go down. Rules D, S and U have no budgets: their
//! only escape hatch is an inline justified allow comment.
//!
//! The format is a deliberately tiny TOML subset (tables of integer
//! keys, `#` comments) so the analyzer stays zero-dependency:
//!
//! ```toml
//! [simulator]
//! unwrap = 0
//! expect = 2
//! panic = 0
//! indexing = 57
//! ```

use std::collections::BTreeMap;

/// Budget keys, in canonical order.
pub const KINDS: [&str; 4] = ["unwrap", "expect", "panic", "indexing"];

/// Per-crate, per-kind budgets. Missing entries mean zero budget.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// `crate -> kind -> budget`.
    pub budgets: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// The budget for `(crate, kind)`; absent entries are 0.
    pub fn budget(&self, crate_name: &str, kind: &str) -> u64 {
        self.budgets
            .get(crate_name)
            .and_then(|m| m.get(kind))
            .copied()
            .unwrap_or(0)
    }

    /// Parses the TOML subset. Unknown lines are errors — a silently
    /// ignored budget would defeat the ratchet.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut out = Baseline::default();
        let mut current: Option<String> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                out.budgets.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!("baseline line {}: expected `key = value`", ln + 1));
            };
            let Some(table) = current.clone() else {
                return Err(format!(
                    "baseline line {}: key outside a [crate] table",
                    ln + 1
                ));
            };
            let key = key.trim();
            if !KINDS.contains(&key) {
                return Err(format!(
                    "baseline line {}: unknown kind `{key}` (expected one of {KINDS:?})",
                    ln + 1
                ));
            }
            let val: u64 = val.trim().parse().map_err(|_| {
                format!(
                    "baseline line {}: `{}` is not an integer",
                    ln + 1,
                    val.trim()
                )
            })?;
            if let Some(t) = out.budgets.get_mut(&table) {
                t.insert(key.to_string(), val);
            }
        }
        Ok(out)
    }

    /// Serialises the baseline back to the TOML subset.
    pub fn to_toml(&self) -> String {
        let mut s = String::from(
            "# cityod-lint panic-debt ratchet (rule P). Counts may only decrease.\n\
             # Regenerate with: cargo run -p analyzer -- check --update-baseline\n",
        );
        for (crate_name, kinds) in &self.budgets {
            s.push_str(&format!("\n[{crate_name}]\n"));
            for k in KINDS {
                let v = kinds.get(k).copied().unwrap_or(0);
                s.push_str(&format!("{k} = {v}\n"));
            }
        }
        s
    }

    /// Builds a baseline whose budgets equal the observed counts.
    pub fn from_counts(counts: &BTreeMap<(String, String), u64>) -> Self {
        let mut out = Baseline::default();
        for ((crate_name, kind), &n) in counts {
            out.budgets
                .entry(crate_name.clone())
                .or_default()
                .insert(kind.clone(), n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "[simulator]\nunwrap = 1\nindexing = 40\n\n[roadnet]\nexpect = 3\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.budget("simulator", "indexing"), 40);
        assert_eq!(b.budget("simulator", "expect"), 0);
        assert_eq!(b.budget("roadnet", "expect"), 3);
        assert_eq!(b.budget("neural", "unwrap"), 0);
        let b2 = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(b2.budget("simulator", "indexing"), 40);
        assert_eq!(b2.budget("roadnet", "expect"), 3);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n[x]\nunwrap = 2 # inline\n").unwrap();
        assert_eq!(b.budget("x", "unwrap"), 2);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        assert!(Baseline::parse("[x]\nfoo = 1\n").is_err());
        assert!(Baseline::parse("unwrap = 1\n").is_err());
        assert!(Baseline::parse("[x]\nunwrap = lots\n").is_err());
    }
}
