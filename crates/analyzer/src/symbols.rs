//! Workspace symbol table and intra-crate call-graph approximation.
//!
//! The cross-file passes (rules C, M and A) need more than a per-file
//! token stream: they must know which functions exist, what they call,
//! which ones acquire locks, and which ones sit on the hot training
//! path. This module builds that view syntactically from the lexed
//! token streams — no type information, no name resolution beyond
//! "same crate, same identifier", which is deliberately conservative:
//!
//! * **Function index** — every `fn` item with a body, attributed to its
//!   crate, file and (when inside an `impl Type` block) its type.
//! * **String-constant index** — `const NAME: &str = "…";` items, so a
//!   metric registered as `reg.counter(m::RUNS)` resolves to the literal
//!   name declared in a sibling file of the same crate.
//! * **Call edges** — `ident(` inside a body is an edge to every same-
//!   crate function with that name. Method calls conflate across types;
//!   for the properties linted here (lock acquisition, heap allocation)
//!   over-approximation is the safe direction, and it is also what makes
//!   `dyn Layer` dispatch visible without type analysis.
//! * **Locking closure** — a function is *locking* when its body calls
//!   `.lock()` / `.read()` / `.write()` with no arguments (the std
//!   `Mutex`/`RwLock` acquisition shapes) or calls a same-crate locking
//!   function. Rule C flags guards held across calls into these.
//! * **Hot closure** — a function is *hot* when it mentions
//!   [`Workspace`] in its signature, is a method of `Workspace` itself,
//!   carries a `// lint: hot` annotation, or is called (same crate) by a
//!   hot function. A `// lint: cold` annotation is the inverse barrier:
//!   the closure never marks such a function nor propagates through it —
//!   used for documented compat shims that delegate to the allocating
//!   legacy path and for warmup-only constructors. Rule A flags heap-
//!   allocating constructs inside hot functions, making the zero-alloc
//!   invariant reviewable statically.
//!
//! [`Workspace`]: https://docs.rs/ (neural::workspace::Workspace)

use crate::lexer::{tok, TokKind, Token};
use crate::source::{is_keyword, FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// `flags[id]` for the per-fn bit vectors, tolerating an out-of-range id.
fn flag(flags: &[bool], id: usize) -> bool {
    flags.get(id).copied().unwrap_or(false)
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an `impl Type` block, else the bare name.
    pub qual: String,
    /// Index of the owning file in the [`WorkspaceIndex`] file list.
    pub file_ix: usize,
    /// Owning crate.
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[fn, {)` of the signature in the owning file.
    pub sig: (usize, usize),
    /// Token range `[{, }]` of the body in the owning file (inclusive).
    pub body: (usize, usize),
    /// True inside `#[cfg(test)]` / `#[test]` regions or test-like files.
    pub is_test: bool,
    /// Carries a `// lint: hot` annotation.
    pub hot_annotated: bool,
    /// Carries a `// lint: cold` annotation — a barrier the hot closure
    /// never enters (compat shims, warmup-only constructors).
    pub cold_annotated: bool,
    /// Signature mentions `Workspace`, or the fn is an `impl Workspace`
    /// method — the hot-path roots.
    pub workspace_root: bool,
    /// Body acquires a std lock directly (`.lock()`/`.read()`/`.write()`
    /// with empty argument lists).
    pub locks_directly: bool,
    /// Names this body calls (`ident(` and `.ident(`), deduplicated.
    pub calls: BTreeSet<String>,
}

/// A `const NAME: &str = "value";` item.
#[derive(Debug, Clone)]
pub struct StrConst {
    /// Constant name.
    pub name: String,
    /// The literal value.
    pub value: String,
}

/// Cross-file facts for one whole `check` run.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Every function with a body, in file order.
    pub fns: Vec<FnInfo>,
    /// `(crate, fn name) -> fn ids` — the call-graph edge target set.
    by_name: BTreeMap<(String, String), Vec<usize>>,
    /// `(crate, const name) -> literal value`.
    consts: BTreeMap<(String, String), String>,
    /// Per-fn: acquires a lock directly or transitively (same crate).
    locking: Vec<bool>,
    /// Per-fn: on the hot path (workspace root, annotated, or reachable
    /// from one within its crate).
    hot: Vec<bool>,
}

impl WorkspaceIndex {
    /// Builds the index over every analysed file.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut idx = WorkspaceIndex::default();
        for (file_ix, file) in files.iter().enumerate() {
            scan_file(file, file_ix, &mut idx);
        }
        for (id, f) in idx.fns.iter().enumerate() {
            idx.by_name
                .entry((f.crate_name.clone(), f.name.clone()))
                .or_default()
                .push(id);
        }
        idx.locking = idx.closure(|f| f.locks_directly, Direction::CalleeToCaller);
        idx.hot = idx.closure(
            |f| !f.is_test && !f.cold_annotated && (f.workspace_root || f.hot_annotated),
            Direction::CallerToCallee,
        );
        idx
    }

    /// The functions of `files[file_ix]`, in declaration order.
    pub fn fns_in_file(&self, file_ix: usize) -> impl Iterator<Item = (usize, &FnInfo)> {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file_ix == file_ix)
    }

    /// Resolves a constant by trailing path segment within `crate_name`.
    pub fn const_value(&self, crate_name: &str, name: &str) -> Option<&str> {
        self.consts
            .get(&(crate_name.to_string(), name.to_string()))
            .map(String::as_str)
    }

    /// True when the call edge (see [`call_edge`]) can reach a locking
    /// function in `crate_name`.
    pub fn is_locking_call(&self, crate_name: &str, edge: &str) -> bool {
        self.edge_targets(crate_name, edge)
            .iter()
            .any(|&id| flag(&self.locking, id))
    }

    /// True when fn `id` is on the hot path.
    pub fn is_hot(&self, id: usize) -> bool {
        flag(&self.hot, id)
    }

    /// True when fn `id` acquires locks directly or transitively.
    pub fn is_locking(&self, id: usize) -> bool {
        flag(&self.locking, id)
    }

    /// The hot-path function set of one crate, as `Type::name` qualified
    /// names — what the reachability regression test asserts against.
    pub fn hot_set(&self, crate_name: &str) -> BTreeSet<String> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(id, f)| f.crate_name == crate_name && flag(&self.hot, *id))
            .map(|(_, f)| f.qual.clone())
            .collect()
    }

    /// Monotone fixed point of `seed` propagated along same-crate call
    /// edges in the given direction.
    fn closure(&self, seed: impl Fn(&FnInfo) -> bool, dir: Direction) -> Vec<bool> {
        let mut marked: Vec<bool> = self.fns.iter().map(&seed).collect();
        loop {
            let mut changed = false;
            for (id, f) in self.fns.iter().enumerate() {
                match dir {
                    // Locking: a caller of a marked callee becomes marked.
                    Direction::CalleeToCaller if !flag(&marked, id) => {
                        let calls_marked = f.calls.iter().any(|callee| {
                            self.edge_targets(&f.crate_name, callee)
                                .iter()
                                .any(|&t| flag(&marked, t))
                        });
                        if calls_marked {
                            if let Some(m) = marked.get_mut(id) {
                                *m = true;
                                changed = true;
                            }
                        }
                    }
                    // Hot: the callees of a marked caller become marked.
                    Direction::CallerToCallee if flag(&marked, id) => {
                        for callee in &f.calls {
                            for t in self.edge_targets(&f.crate_name, callee) {
                                // `cold` fns are barriers: reachability
                                // stops at (and never propagates through)
                                // a documented compat shim or warmup-only
                                // constructor.
                                let barrier = self
                                    .fns
                                    .get(t)
                                    .is_none_or(|g| g.is_test || g.cold_annotated);
                                if !flag(&marked, t) && !barrier {
                                    if let Some(m) = marked.get_mut(t) {
                                        *m = true;
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                return marked;
            }
        }
    }

    /// Resolves a call edge to candidate same-crate functions.
    ///
    /// * `.name` (method call) — every fn named `name`: receiver types
    ///   are unknown at token level, and this conflation is exactly what
    ///   makes `dyn Layer` dispatch visible;
    /// * `Qual::name` (path call) — only fns whose qualified name
    ///   matches, so `Adam::new` does not drag in every other `new`;
    /// * `name` (bare call) — free functions only.
    fn edge_targets(&self, crate_name: &str, edge: &str) -> Vec<usize> {
        let (name, filter): (&str, Option<&str>) = if let Some(m) = edge.strip_prefix('.') {
            (m, None)
        } else if let Some((_, m)) = edge.rsplit_once("::") {
            (m, Some(edge))
        } else {
            (edge, Some(edge))
        };
        let Some(ids) = self
            .by_name
            .get(&(crate_name.to_string(), name.to_string()))
        else {
            return Vec::new();
        };
        ids.iter()
            .copied()
            .filter(|&id| filter.is_none_or(|q| self.fns.get(id).is_some_and(|f| f.qual == q)))
            .collect()
    }
}

/// Classifies the call at token `i` (an identifier) into a call-graph
/// edge: `.name` for method calls, `Qual::name` for path calls (last
/// path segment qualifies), bare `name` for free-fn calls. `None` when
/// the token is not a call site.
pub fn call_edge(toks: &[Token], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident || is_keyword(&t.text) {
        return None;
    }
    if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    let prev = i.checked_sub(1).map(|p| tok(toks, p));
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return None; // a definition, not a call
    }
    if prev.is_some_and(|p| p.is_punct('.')) {
        return Some(format!(".{}", t.text));
    }
    if i >= 3 && tok(toks, i - 1).is_punct(':') && tok(toks, i - 2).is_punct(':') {
        let q = tok(toks, i - 3);
        if q.kind == TokKind::Ident {
            return Some(format!("{}::{}", q.text, t.text));
        }
        return None; // `::<…>::call` shapes we don't resolve
    }
    Some(t.text.clone())
}

#[derive(Debug, Clone, Copy)]
enum Direction {
    /// Propagate from callee to caller (transitive "calls into").
    CalleeToCaller,
    /// Propagate from caller to callee (reachability).
    CallerToCallee,
}

/// Scans one file for `impl` context, `fn` items and string constants.
fn scan_file(file: &SourceFile, file_ix: usize, idx: &mut WorkspaceIndex) {
    let toks = &file.tokens;
    // Stack of `(brace_depth_when_opened, type_name)` for impl blocks.
    let mut impls: Vec<(i32, String)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = tok(toks, i);
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            if let Some(&(d, _)) = impls.last() {
                if depth < d {
                    impls.pop();
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((type_name, open_ix)) = impl_type_name(toks, i) {
                impls.push((depth + 1, type_name));
                depth += 1;
                i = open_ix + 1;
                continue;
            }
        }
        // `trait T { … }` qualifies its default methods just like an
        // impl block: the trait name is the first ident after `trait`.
        if t.is_ident("trait") {
            if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                let mut j = i + 2;
                while j < toks.len() && !tok(toks, j).is_punct('{') && !tok(toks, j).is_punct(';') {
                    j += 1;
                }
                if toks.get(j).is_some_and(|b| b.is_punct('{')) {
                    impls.push((depth + 1, name.text.clone()));
                    depth += 1;
                    i = j + 1;
                    continue;
                }
            }
        }
        if t.is_ident("const") {
            if let Some((c, next)) = scan_const(toks, i) {
                idx.consts
                    .insert((file.crate_name.clone(), c.name.clone()), c.value);
                i = next;
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(mut f) = scan_fn(file, toks, i) {
                f.file_ix = file_ix;
                if let Some((_, ty)) = impls.last() {
                    f.qual = format!("{ty}::{}", f.name);
                    if ty == "Workspace" {
                        f.workspace_root = true;
                    }
                    // `Self::helper(…)` edges resolve against the impl type.
                    let selfs: Vec<String> = f
                        .calls
                        .iter()
                        .filter(|c| c.starts_with("Self::"))
                        .cloned()
                        .collect();
                    for s in selfs {
                        f.calls.remove(&s);
                        if let Some(rest) = s.strip_prefix("Self::") {
                            f.calls.insert(format!("{ty}::{rest}"));
                        }
                    }
                }
                // The body braces were consumed by the fn scan; resume
                // after it without disturbing `depth`.
                let next = f.body.1 + 1;
                idx.fns.push(f);
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

/// For an `impl` at token `i`, the implemented type name and the index
/// of the opening `{`. Handles `impl Type`, `impl<T> Type<T>`,
/// `impl Trait for Type` and trait paths; gives up (returns `None`) on
/// shapes it does not understand, which merely loses impl attribution.
fn impl_type_name(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip generic parameter list.
    j = skip_angles(toks, j);
    // Collect path segments until `for`, `{` or `where`.
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        let t = tok(toks, j);
        if t.is_punct('{') {
            let name = if saw_for { after_for } else { last_ident };
            return name.map(|n| (n, j));
        }
        if t.is_ident("for") {
            saw_for = true;
            j += 1;
            continue;
        }
        if t.is_ident("where") {
            // Skip the clause up to the opening brace.
            while j < toks.len() && !tok(toks, j).is_punct('{') {
                j += 1;
            }
            continue;
        }
        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            if saw_for {
                after_for = Some(t.text.clone());
            } else {
                last_ident = Some(t.text.clone());
            }
            j = skip_angles(toks, j + 1);
            continue;
        }
        j += 1;
    }
    None
}

/// Skips a balanced `<…>` group starting at `j`, if present.
fn skip_angles(toks: &[Token], j: usize) -> usize {
    if !toks.get(j).is_some_and(|t| t.is_punct('<')) {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        if tok(toks, k).is_punct('<') {
            depth += 1;
        } else if tok(toks, k).is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        } else if tok(toks, k).is_punct('{') || tok(toks, k).is_punct(';') {
            // Not a generic list after all (comparison operator).
            return j;
        }
        k += 1;
    }
    j
}

/// Scans a `const NAME: … str … = "value";` item at token `i`. Returns
/// the constant and the index past the terminating `;`.
fn scan_const(toks: &[Token], i: usize) -> Option<(StrConst, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident || is_keyword(&name_tok.text) {
        return None; // `const fn`, `const {`, associated const generics…
    }
    if !toks.get(i + 2)?.is_punct(':') {
        return None;
    }
    let mut j = i + 3;
    let mut saw_str_type = false;
    while j < toks.len() && !tok(toks, j).is_punct('=') {
        if tok(toks, j).is_punct(';') || tok(toks, j).is_punct('{') {
            return None;
        }
        if tok(toks, j).is_ident("str") {
            saw_str_type = true;
        }
        j += 1;
    }
    let value_tok = toks.get(j + 1)?;
    let value = value_tok.str_content()?;
    if !saw_str_type || !toks.get(j + 2)?.is_punct(';') {
        return None;
    }
    Some((
        StrConst {
            name: name_tok.text.clone(),
            value: value.to_string(),
        },
        j + 3,
    ))
}

/// Scans the `fn` item starting at token `i`; `None` for body-less trait
/// method declarations.
fn scan_fn(file: &SourceFile, toks: &[Token], i: usize) -> Option<FnInfo> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Signature: up to the first `{` or `;` at bracket depth zero.
    let mut j = i + 2;
    let mut depth = 0i32;
    let body_open = loop {
        let t = toks.get(j)?;
        if depth == 0 && t.is_punct(';') {
            return None; // declaration without a body
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            break j;
        }
        j += 1;
    };
    // Body: match the braces.
    let mut k = body_open + 1;
    let mut bdepth = 1i32;
    while k < toks.len() && bdepth > 0 {
        if tok(toks, k).is_punct('{') {
            bdepth += 1;
        } else if tok(toks, k).is_punct('}') {
            bdepth -= 1;
        }
        k += 1;
    }
    let body_close = k - 1;

    let workspace_root = toks
        .get(i..body_open)
        .unwrap_or(&[])
        .iter()
        .any(|t| t.is_ident("Workspace"));
    let mut calls = BTreeSet::new();
    let mut locks_directly = false;
    for c in body_open..body_close {
        let t = tok(toks, c);
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        if let Some(edge) = call_edge(toks, c) {
            let prev = c.checked_sub(1).map(|p| tok(toks, p));
            calls.insert(edge);
            if prev.is_some_and(|p| p.is_punct('.'))
                && matches!(t.text.as_str(), "lock" | "read" | "write")
                && toks.get(c + 2).is_some_and(|n| n.is_punct(')'))
            {
                locks_directly = true;
            }
        }
    }

    let line = tok(toks, i).line;
    let annotated = |word: &str| {
        file.comments.iter().any(|c| {
            c.line + 2 >= line
                && c.line <= line
                && c.text
                    .split_once("lint:")
                    .map(|(_, rest)| rest.trim_start().starts_with(word))
                    .unwrap_or(false)
        })
    };
    let hot_annotated = annotated("hot");
    let cold_annotated = annotated("cold");

    Some(FnInfo {
        name: name_tok.text.clone(),
        qual: name_tok.text.clone(),
        file_ix: 0,
        crate_name: file.crate_name.clone(),
        line,
        sig: (i, body_open),
        body: (body_open, body_close),
        is_test: file.kind == FileKind::TestLike || file.in_test.get(i).copied().unwrap_or(false),
        hot_annotated,
        cold_annotated,
        workspace_root,
        locks_directly,
        calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn index(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, WorkspaceIndex) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(path, src)| SourceFile::new(path, "x", FileKind::Lib, src))
            .collect();
        let idx = WorkspaceIndex::build(&files);
        (files, idx)
    }

    fn fn_by_name<'a>(idx: &'a WorkspaceIndex, name: &str) -> (usize, &'a FnInfo) {
        idx.fns
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not indexed"))
    }

    #[test]
    fn fns_and_impl_methods_are_indexed() {
        let (_, idx) = index(&[(
            "a.rs",
            "struct S;\nimpl S {\n    fn method(&self) -> u32 { helper() }\n}\nfn helper() -> u32 { 1 }\n",
        )]);
        assert_eq!(idx.fns.len(), 2);
        let (_, m) = fn_by_name(&idx, "method");
        assert_eq!(m.qual, "S::method");
        assert!(m.calls.contains("helper"));
        let (_, h) = fn_by_name(&idx, "helper");
        assert_eq!(h.qual, "helper");
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let (_, idx) = index(&[(
            "a.rs",
            "trait T {\n    fn decl(&self) -> u32;\n    fn with_default(&self) -> u32 { 2 }\n}\n",
        )]);
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "with_default");
        assert_eq!(idx.fns[0].qual, "T::with_default");
    }

    #[test]
    fn consts_resolve_across_files_within_a_crate() {
        let (_, idx) = index(&[
            ("m.rs", "pub const RUNS: &str = \"sim_runs_total\";\n"),
            ("e.rs", "fn f() {}\n"),
        ]);
        assert_eq!(idx.const_value("x", "RUNS"), Some("sim_runs_total"));
        assert_eq!(idx.const_value("x", "OTHER"), None);
        assert_eq!(idx.const_value("y", "RUNS"), None);
    }

    #[test]
    fn locking_propagates_to_callers() {
        let (_, idx) = index(&[(
            "a.rs",
            "fn low(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n\
             fn mid(m: &std::sync::Mutex<u32>) -> u32 { low(m) }\n\
             fn free() -> u32 { 3 }\n",
        )]);
        let (low, _) = fn_by_name(&idx, "low");
        let (mid, _) = fn_by_name(&idx, "mid");
        let (free, _) = fn_by_name(&idx, "free");
        assert!(idx.is_locking(low));
        assert!(idx.is_locking(mid), "locking must propagate to callers");
        assert!(!idx.is_locking(free));
        assert!(idx.is_locking_call("x", "mid"));
        assert!(!idx.is_locking_call("x", "free"));
    }

    #[test]
    fn io_read_with_arguments_is_not_lock_acquisition() {
        let (_, idx) = index(&[(
            "a.rs",
            "fn io(r: &mut impl std::io::Read, buf: &mut [u8]) { let _ = r.read(buf); }\n",
        )]);
        let (io, _) = fn_by_name(&idx, "io");
        assert!(!idx.is_locking(io));
    }

    #[test]
    fn hot_propagates_from_workspace_roots_and_annotations() {
        let (_, idx) = index(&[(
            "a.rs",
            "fn forward_ws(ws: &mut Workspace) { kernel() }\n\
             fn kernel() { deep() }\n\
             fn deep() {}\n\
             // lint: hot — annotated root\n\
             fn annotated() { deep2() }\n\
             fn deep2() {}\n\
             fn cold() {}\n",
        )]);
        for name in ["forward_ws", "kernel", "deep", "annotated", "deep2"] {
            let (id, _) = fn_by_name(&idx, name);
            assert!(idx.is_hot(id), "{name} must be hot");
        }
        let (cold, _) = fn_by_name(&idx, "cold");
        assert!(!idx.is_hot(cold));
        let hot = idx.hot_set("x");
        assert!(hot.contains("forward_ws") && hot.contains("deep2"));
    }

    #[test]
    fn cold_annotation_is_a_propagation_barrier() {
        let (_, idx) = index(&[(
            "a.rs",
            "// lint: cold — compat shim, allocating path by design\n\
             fn forward_ws(ws: &mut Workspace) { legacy() }\n\
             fn legacy() { helper() }\n\
             fn helper() {}\n",
        )]);
        for name in ["forward_ws", "legacy", "helper"] {
            let (id, _) = fn_by_name(&idx, name);
            assert!(!idx.is_hot(id), "{name} must stay cold behind the barrier");
        }
    }

    #[test]
    fn cold_callee_stops_propagation_but_siblings_stay_hot() {
        let (_, idx) = index(&[(
            "a.rs",
            "fn step(ws: &mut Workspace) { init(); kernel(); }\n\
             // lint: cold — warmup-only constructor\n\
             fn init() { build() }\n\
             fn build() {}\n\
             fn kernel() {}\n",
        )]);
        let (k, _) = fn_by_name(&idx, "kernel");
        assert!(idx.is_hot(k));
        for name in ["init", "build"] {
            let (id, _) = fn_by_name(&idx, name);
            assert!(!idx.is_hot(id), "{name} must stay cold");
        }
    }

    #[test]
    fn workspace_impl_methods_are_roots() {
        let (_, idx) = index(&[(
            "w.rs",
            "pub struct Workspace;\nimpl Workspace {\n    fn take_buf(&mut self, n: usize) {}\n}\n",
        )]);
        let (id, f) = fn_by_name(&idx, "take_buf");
        assert_eq!(f.qual, "Workspace::take_buf");
        assert!(idx.is_hot(id));
    }

    #[test]
    fn test_fns_are_not_hot_roots() {
        let (_, idx) = index(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(ws: &mut Workspace) { helper(); }\n}\nfn helper() {}\n",
        )]);
        let (id, f) = fn_by_name(&idx, "t");
        assert!(f.is_test);
        assert!(!idx.is_hot(id));
        let (h, _) = fn_by_name(&idx, "helper");
        assert!(!idx.is_hot(h), "test callers must not mark lib fns hot");
    }
}
