//! Workspace discovery: which `.rs` files exist, which crate owns them,
//! and whether they are library or test-like code.

use crate::source::FileKind;
use std::path::{Path, PathBuf};

/// One file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Owning crate (directory name under `crates/`, or the root package).
    pub crate_name: String,
    /// Library vs test-like location.
    pub kind: FileKind,
}

/// Name used for files belonging to the workspace root package.
pub const ROOT_CRATE: &str = "city-od";

/// Directory subtrees never analysed: build output, vendored stand-ins
/// (external code, not ours to lint) and the analyzer's own deliberately
/// violating test fixtures.
const SKIP: [&str; 3] = ["target", "vendor", "crates/analyzer/tests/fixtures"];

/// Finds every analysable `.rs` file under `root`.
pub fn discover(root: &Path) -> std::io::Result<Vec<WorkItem>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        // Sorted traversal keeps output and JSON byte-stable across
        // platforms and runs.
        entries.sort();
        for path in entries {
            let rel = relpath(root, &path);
            if SKIP.iter().any(|s| rel == *s) || rel.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                if let Some((crate_name, kind)) = classify(&rel) {
                    out.push(WorkItem {
                        abs: path,
                        rel,
                        crate_name,
                        kind,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Workspace-relative `/`-separated path.
fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Maps a relative path to `(crate, kind)`; `None` for files outside any
/// analysable tree (e.g. stray scripts).
fn classify(rel: &str) -> Option<(String, FileKind)> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", c, "src", ..] => Some((c.to_string(), FileKind::Lib)),
        ["crates", c, "tests" | "examples" | "benches", ..] => {
            Some((c.to_string(), FileKind::TestLike))
        }
        ["src", ..] => Some((ROOT_CRATE.to_string(), FileKind::Lib)),
        ["tests" | "examples" | "benches", ..] => {
            Some((ROOT_CRATE.to_string(), FileKind::TestLike))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/simulator/src/engine.rs"),
            Some(("simulator".into(), FileKind::Lib))
        );
        assert_eq!(
            classify("crates/neural/tests/gradcheck.rs"),
            Some(("neural".into(), FileKind::TestLike))
        );
        assert_eq!(
            classify("src/bin/cityod.rs"),
            Some((ROOT_CRATE.into(), FileKind::Lib))
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some((ROOT_CRATE.into(), FileKind::TestLike))
        );
        assert_eq!(classify("build.rs"), None);
    }
}
