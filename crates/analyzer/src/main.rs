//! CLI for cityod-lint.
//!
//! ```text
//! cargo run -p analyzer -- check [--json] [--rule D|P|S|U|C|M|A]
//!     [--baseline <path>] [--root <path>] [--update-baseline]
//! ```
//!
//! Exits 0 when the workspace is clean (all D/S/U/C/M/A findings
//! suppressed or absent, all P debt within the ratchet baseline), 1
//! otherwise, 2 on usage or I/O errors.

use analyzer::rules::Rule;
use analyzer::{check_workspace, find_root, CheckOptions};
use std::path::PathBuf;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            return if args.is_empty() { 2 } else { 0 };
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            return 2;
        }
    }

    let mut opts = CheckOptions::default();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--rule" => match it.next().and_then(|r| Rule::from_name(r)) {
                Some(r) => opts.rule = Some(r),
                None => {
                    eprintln!("--rule expects one of D, P, S, U, C, M, A\n{USAGE}");
                    return 2;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => opts.baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline expects a path\n{USAGE}");
                    return 2;
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root expects a path\n{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return 2;
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a workspace root (no ancestor Cargo.toml with [workspace]); pass --root");
            return 2;
        }
    };

    match check_workspace(&root, &opts) {
        Ok(rep) => {
            if json {
                print!("{}", rep.render_json());
            } else {
                print!("{}", rep.render_text());
            }
            rep.exit_code()
        }
        Err(e) => {
            eprintln!("cityod-lint: {e}");
            2
        }
    }
}

const USAGE: &str = "cityod-lint — static analysis for the city-od workspace

USAGE:
    cargo run -p analyzer -- check [FLAGS]

FLAGS:
    --json               machine-readable findings (stable key order)
    --rule <R>           run a single rule pass (D|P|S|U|C|M|A)
    --baseline <path>    ratchet baseline (default: crates/analyzer/baseline.toml)
    --root <path>        workspace root (default: nearest [workspace] ancestor)
    --update-baseline    rewrite the baseline to the observed debt counts

RULES:
    D  determinism     no HashMap/HashSet, wall-clock, env or thread-id reads
                       on the stable-output path
    P  panic-safety    unwrap/expect/panic!/indexing debt, ratcheted by baseline
    S  shape soundness layer-stack in/out dims must chain
    U  unsafe audit    every `unsafe` needs a SAFETY comment
    C  concurrency     no static mut, guard-across-lock, write-under-read
                       or unjoined spawn in protected crates
    M  metrics         counters end _total, timing metrics end _seconds,
                       sorted label keys, no Stable metric fed from wall clock
    A  hot-path alloc  no heap allocation reachable from the Workspace
                       step path (or any `// lint: hot` root)";
