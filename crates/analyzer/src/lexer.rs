//! A small hand-rolled Rust lexer.
//!
//! The rule passes need a *token* view of the source — one where string
//! literals and comments can never produce false positives ("HashMap"
//! inside a doc comment is not a determinism violation) and where every
//! token knows its line. Full Rust grammar is not needed; the lexer
//! understands exactly the surface forms that matter for linting:
//!
//! * line and (nested) block comments — stripped from the token stream but
//!   retained in a side channel, because `// lint: allow(..)` and
//!   `// SAFETY:` annotations live in comments;
//! * string / raw-string / byte-string / char literals — collapsed to a
//!   single `Str`/`Char` token so their contents are invisible to the
//!   identifier-matching rules; the raw source slice of a `Str` is kept
//!   in `text` so the metrics-contract pass can inspect literal metric
//!   names via [`Token::str_content`];
//! * lifetimes vs char literals (`'a` vs `'a'`);
//! * identifiers, numbers, and single-character punctuation.

/// What a token is. Only the distinctions the rule passes need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String, raw-string or byte-string literal (contents dropped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime such as `'a` (contents dropped).
    Lifetime,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of the token.
    pub kind: TokKind,
    /// Source text for `Ident`/`Num`/`Punct`; for `Str` the raw literal
    /// including quotes and prefixes; empty for `Char`/`Lifetime`.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct
            && self.text.len() == 1
            && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// For a `Str` token, the literal contents with the `b`/`r`/`#`
    /// prefixes and the quotes stripped; `None` for other kinds.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let s = self
            .text
            .trim_start_matches(['b', 'r'])
            .trim_start_matches('#');
        let s = s.strip_prefix('"').unwrap_or(s);
        let s = s.trim_end_matches('#');
        Some(s.strip_suffix('"').unwrap_or(s))
    }
}

/// Sentinel returned by [`tok`] past the end of a stream: an empty
/// `Punct` that matches no identifier and no punctuation character, so
/// every lookahead test fails uniformly at EOF.
static EOF_TOKEN: Token = Token {
    kind: TokKind::Punct,
    text: String::new(),
    line: 0,
};

/// Token at `i`, or the EOF sentinel past the end — scan loops and
/// lookaheads need no per-site bounds checks.
pub fn tok(toks: &[Token], i: usize) -> &Token {
    toks.get(i).unwrap_or(&EOF_TOKEN)
}

/// A comment, kept out-of-band for allow/SAFETY annotation lookup.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and literal bodies stripped.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Byte at `i`, or `0` past the end. The scanner only ever compares
/// against printable ASCII or classifier methods that reject NUL, so the
/// sentinel uniformly fails every test and ends every lookahead — the
/// loops below need no per-site bounds checks.
fn at(b: &[u8], i: usize) -> u8 {
    b.get(i).copied().unwrap_or(0)
}

/// `&src[a..b]` without the panic branch: an out-of-range or non-boundary
/// span (impossible by construction) yields `""`.
fn span(src: &str, a: usize, b: usize) -> &str {
    src.get(a..b).unwrap_or("")
}

/// Lexes `src`. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behaviour a linter wants on mid-edit files.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            for &c in b.get($range).unwrap_or(&[]) {
                if c == b'\n' {
                    line += 1;
                }
            }
        };
    }

    while i < b.len() {
        let c = at(b, i);
        // --- whitespace ------------------------------------------------
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // --- comments --------------------------------------------------
        if c == b'/' && at(b, i + 1) == b'/' {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && at(b, j) != b'\n' {
                j += 1;
            }
            let text = span(src, start, j)
                .trim_start_matches('/')
                .trim()
                .to_string();
            out.comments.push(Comment { line, text });
            i = j;
            continue;
        }
        if c == b'/' && at(b, i + 1) == b'*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1u32;
            let mut j = start;
            while j < b.len() && depth > 0 {
                if at(b, j) == b'/' && at(b, j + 1) == b'*' {
                    depth += 1;
                    j += 2;
                } else if at(b, j) == b'*' && at(b, j + 1) == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: span(src, start, end).trim().to_string(),
            });
            bump_lines!(i..j);
            i = j;
            continue;
        }
        // --- raw / byte strings ---------------------------------------
        if c == b'r' || c == b'b' {
            if let Some((j, is_str)) = scan_raw_or_byte(b, i) {
                out.tokens.push(Token {
                    kind: if is_str { TokKind::Str } else { TokKind::Char },
                    text: if is_str {
                        span(src, i, j).to_string()
                    } else {
                        String::new()
                    },
                    line,
                });
                bump_lines!(i..j);
                i = j;
                continue;
            }
        }
        // --- plain strings --------------------------------------------
        if c == b'"' {
            let j = scan_quoted(b, i + 1, b'"');
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: span(src, i, j).to_string(),
                line,
            });
            bump_lines!(i..j);
            i = j;
            continue;
        }
        // --- char literal vs lifetime ---------------------------------
        if c == b'\'' {
            if let Some(j) = scan_char_literal(b, i) {
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = j;
            } else {
                // Lifetime: consume ident chars after the quote.
                let mut j = i + 1;
                while at(b, j) == b'_' || at(b, j).is_ascii_alphanumeric() {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // --- identifiers ----------------------------------------------
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            let mut j = i;
            while at(b, j) == b'_' || at(b, j).is_ascii_alphanumeric() {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: span(src, start, j).to_string(),
                line,
            });
            i = j;
            continue;
        }
        // --- numbers ---------------------------------------------------
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < b.len() {
                let d = at(b, j);
                if d.is_ascii_alphanumeric() || d == b'_' {
                    // Exponent sign: `1e-9` / `1E+3`.
                    if (d == b'e' || d == b'E')
                        && (at(b, j + 1) == b'+' || at(b, j + 1) == b'-')
                        && at(b, j + 2).is_ascii_digit()
                    {
                        j += 2;
                    }
                    j += 1;
                } else if d == b'.' && at(b, j + 1).is_ascii_digit() {
                    // Decimal point, but not the start of a `..` range.
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: span(src, start, j).to_string(),
                line,
            });
            i = j;
            continue;
        }
        // --- punctuation -----------------------------------------------
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Scans a raw string `r"…"`/`r#"…"#`, byte string `b"…"`, raw byte string
/// `br#"…"#` or byte char `b'…'` starting at `i`. Returns `(end, is_str)`
/// or `None` when the prefix is just an identifier.
fn scan_raw_or_byte(b: &[u8], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    // `br` prefix.
    if at(b, i) == b'b' && at(b, j) == b'r' {
        j += 1;
    }
    let raw = at(b, i) == b'r' || (j > i + 1);
    if raw {
        let mut hashes = 0usize;
        while at(b, j) == b'#' {
            hashes += 1;
            j += 1;
        }
        if at(b, j) == b'"' {
            // Scan until `"` followed by `hashes` hashes.
            j += 1;
            while j < b.len() {
                if at(b, j) == b'"' && (1..=hashes).all(|k| at(b, j + k) == b'#') {
                    return Some((j + 1 + hashes, true));
                }
                j += 1;
            }
            return Some((b.len(), true));
        }
        return None;
    }
    // `b"…"` or `b'…'`.
    if at(b, i) == b'b' {
        if at(b, j) == b'"' {
            return Some((scan_quoted(b, j + 1, b'"'), true));
        }
        if at(b, j) == b'\'' {
            return scan_char_literal(b, j).map(|e| (e, false));
        }
    }
    None
}

/// Scans a quoted literal body starting *after* the opening quote;
/// returns the index just past the closing quote (or EOF).
fn scan_quoted(b: &[u8], mut j: usize, quote: u8) -> usize {
    while j < b.len() {
        if at(b, j) == b'\\' {
            j += 2;
        } else if at(b, j) == quote {
            return j + 1;
        } else {
            j += 1;
        }
    }
    b.len()
}

/// Tries to scan a char literal at `i` (pointing at the opening `'`).
/// Returns the end index, or `None` when this is a lifetime instead.
fn scan_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let j = i + 1;
    if j >= b.len() {
        return None;
    }
    if at(b, j) == b'\\' {
        // Escaped char: scan to the closing quote.
        return Some(scan_quoted(b, j, b'\''));
    }
    // `'x'` — exactly one (possibly multi-byte) char then a quote.
    let mut k = j + 1;
    // Skip UTF-8 continuation bytes.
    while (at(b, k) & 0xC0) == 0x80 {
        k += 1;
    }
    if at(b, k) == b'\'' {
        return Some(k + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_are_stripped_but_kept() {
        let l = lex("let x = 1; // HashMap here\n/* Instant */ let y = 2;");
        assert!(idents("let x = 1; // HashMap here")
            .iter()
            .all(|i| i != "HashMap"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "HashMap here");
        assert_eq!(l.comments[1].text, "Instant");
    }

    #[test]
    fn strings_hide_their_contents() {
        assert!(!idents(r#"let s = "HashMap::new()";"#).contains(&"HashMap".to_string()));
        assert!(!idents(r##"let s = r#"unwrap()"#;"##).contains(&"unwrap".to_string()));
        assert!(!idents(r#"let s = b"panic";"#).contains(&"panic".to_string()));
    }

    #[test]
    fn str_tokens_keep_contents() {
        let l = lex("let a = \"sim_runs_total\"; let f = format!(\"t_{tag}_total\");");
        let strs: Vec<&str> = l.tokens.iter().filter_map(|t| t.str_content()).collect();
        assert_eq!(strs, ["sim_runs_total", "t_{tag}_total"]);
        let raw = lex(r##"let r = r#"raw_total"#;"##);
        let strs: Vec<&str> = raw.tokens.iter().filter_map(|t| t.str_content()).collect();
        assert_eq!(strs, ["raw_total"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { let f = 1e-9; let g = 0.5..=1.0; }");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1e-9", "0.5", "1.0"]);
    }

    #[test]
    fn lines_are_tracked_across_block_comments() {
        let l = lex("a\n/*\n\n*/\nb");
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[1].line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.tokens.len(), 1);
        assert!(l.tokens[0].is_ident("x"));
    }
}
