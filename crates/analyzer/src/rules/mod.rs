//! The rule passes.
//!
//! Each pass walks a [`SourceFile`] token stream and emits [`Finding`]s.
//! Suppression (`// lint: allow(<rule>) — reason`) and the panic-debt
//! ratchet are applied by the driver in [`crate::run`], not here, so the
//! passes stay pure and trivially testable.

mod alloc;
mod concurrency;
mod determinism;
mod metrics_contract;
mod panic;
mod shape;
mod unsafety;

pub use alloc::alloc_pass;
pub use concurrency::concurrency_pass;
pub use determinism::determinism_pass;
pub use metrics_contract::metrics_pass;
pub use panic::panic_pass;
pub use shape::shape_pass;
pub use unsafety::unsafe_pass;

use crate::source::SourceFile;

/// The seven rules, named as in the CLI (`--rule D|P|S|U|C|M|A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D — determinism: no unordered-map iteration sources, wall-clock or
    /// environment reads on the stable-output path.
    Determinism,
    /// P — panic-safety: no unwrap/expect/panic!/unreachable! or bare
    /// slice indexing in non-test library code of the hot crates.
    Panic,
    /// S — shape soundness: layer-stack in/out dimensions must chain.
    Shape,
    /// U — unsafe audit: every `unsafe` needs a `// SAFETY:` comment.
    UnsafeAudit,
    /// C — concurrency discipline: no `static mut`, no guard held across
    /// another locking call, no write-under-read, no unjoined spawns.
    Concurrency,
    /// M — metrics contract: `_total`/`_seconds` suffixes, sorted label
    /// keys, Stable metrics never fed from Timing sources.
    Metrics,
    /// A — hot-path allocation: no heap allocation in functions reachable
    /// from the `Workspace` step path or a `// lint: hot` root.
    Alloc,
}

impl Rule {
    /// One-letter CLI code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Determinism => "D",
            Rule::Panic => "P",
            Rule::Shape => "S",
            Rule::UnsafeAudit => "U",
            Rule::Concurrency => "C",
            Rule::Metrics => "M",
            Rule::Alloc => "A",
        }
    }

    /// Human name, also used in allow annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Panic => "panic",
            Rule::Shape => "shape",
            Rule::UnsafeAudit => "unsafe",
            Rule::Concurrency => "concurrency",
            Rule::Metrics => "metrics",
            Rule::Alloc => "alloc",
        }
    }

    /// Parses a CLI code or allow-annotation name.
    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "D" | "determinism" => Some(Rule::Determinism),
            "P" | "panic" => Some(Rule::Panic),
            "S" | "shape" => Some(Rule::Shape),
            "U" | "unsafe" => Some(Rule::UnsafeAudit),
            "C" | "concurrency" => Some(Rule::Concurrency),
            "M" | "metrics" => Some(Rule::Metrics),
            "A" | "alloc" => Some(Rule::Alloc),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 7] {
        [
            Rule::Determinism,
            Rule::Panic,
            Rule::Shape,
            Rule::UnsafeAudit,
            Rule::Concurrency,
            Rule::Metrics,
            Rule::Alloc,
        ]
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Machine-readable sub-kind (`unwrap`, `hashmap`, `shape-mismatch`, …).
    /// Panic-rule kinds are the ratchet-budget keys in `baseline.toml`.
    pub kind: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line.
    pub snippet: String,
    /// Explanation and suggested fix.
    pub message: String,
}

impl Finding {
    /// Builds a finding, pulling the snippet out of `file`.
    pub fn new(
        file: &SourceFile,
        rule: Rule,
        kind: &'static str,
        line: u32,
        message: String,
    ) -> Self {
        Self {
            rule,
            kind,
            file: file.path.clone(),
            crate_name: file.crate_name.clone(),
            line,
            snippet: file.snippet(line),
            message,
        }
    }
}
