//! Rule D — determinism.
//!
//! The OVS pipeline's golden-file and resume-equivalence guarantees
//! require that every byte of stable output is a pure function of config
//! and seed. On the stable-output path this pass denies:
//!
//! * `HashMap` / `HashSet` — iteration order is randomised per process
//!   (SipHash keys), so *any* use is one refactor away from leaking
//!   nondeterministic order into output. Use `BTreeMap` / `BTreeSet`.
//! * `SystemTime` / `Instant` — wall-clock reads.
//! * `std::env::var` / `env::vars` — environment reads.
//! * `thread::current` and `ThreadId` — thread-identity reads.
//!
//! Legitimate uses (timing-tagged metrics, provenance timestamps, thread
//! pool sizing) carry `// lint: allow(determinism) — reason`.

use super::{Finding, Rule};
use crate::source::SourceFile;

/// Runs the determinism pass over a file that is on the stable-output
/// path. Test regions are skipped: test-only nondeterminism cannot leak
/// into shipped output.
pub fn determinism_pass(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.masked(i) {
            continue;
        }
        let (kind, what, instead): (&'static str, &str, &str) = if t.is_ident("HashMap") {
            (
                "hashmap",
                "HashMap",
                "BTreeMap (deterministic iteration order)",
            )
        } else if t.is_ident("HashSet") {
            (
                "hashset",
                "HashSet",
                "BTreeSet (deterministic iteration order)",
            )
        } else if t.is_ident("SystemTime") {
            (
                "wall-clock",
                "SystemTime",
                "data derived from config or seed",
            )
        } else if t.is_ident("Instant") {
            (
                "wall-clock",
                "Instant",
                "tick counters derived from the simulation clock",
            )
        } else if t.is_ident("ThreadId") {
            ("thread-id", "ThreadId", "explicit worker indices")
        } else if is_path_call(file, i, "env", &["var", "var_os", "vars"]) {
            (
                "env-read",
                "env::var",
                "explicit configuration plumbed through SimConfig",
            )
        } else if is_path_call(file, i, "thread", &["current"]) {
            ("thread-id", "thread::current", "explicit worker indices")
        } else {
            continue;
        };
        out.push(Finding::new(
            file,
            Rule::Determinism,
            kind,
            t.line,
            format!(
                "`{what}` on the stable-output path ({}): prefer {instead}, or justify with \
                 `// lint: allow(determinism) — reason`",
                file.crate_name
            ),
        ));
    }
    out
}

/// True when token `i` is `base` followed by `:: member` with `member`
/// in `members` (matches both `std::env::var(..)` and `env::var(..)`).
fn is_path_call(file: &SourceFile, i: usize, base: &str, members: &[&str]) -> bool {
    let t = crate::lexer::tok(&file.tokens, i);
    if !t.is_ident(base) {
        return false;
    }
    let c1 = file.tokens.get(i + 1);
    let c2 = file.tokens.get(i + 2);
    let m = file.tokens.get(i + 3);
    matches!((c1, c2), (Some(a), Some(b)) if a.is_punct(':') && b.is_punct(':'))
        && matches!(m, Some(t) if members.iter().any(|mm| t.is_ident(mm)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn run(src: &str) -> Vec<Finding> {
        determinism_pass(&SourceFile::new("f.rs", "simulator", FileKind::Lib, src))
    }

    #[test]
    fn flags_hashmap_and_wall_clock() {
        let f = run("use std::collections::HashMap;\nlet t = std::time::Instant::now();");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].kind, "hashmap");
        assert_eq!(f[1].kind, "wall-clock");
    }

    #[test]
    fn flags_env_reads_but_not_env_ident_alone() {
        assert_eq!(run("let v = std::env::var(\"X\");").len(), 1);
        assert_eq!(run("let env = 3; let w = env + 1;").len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}");
        assert!(f.is_empty());
    }

    #[test]
    fn btree_is_fine() {
        assert!(run("use std::collections::{BTreeMap, BTreeSet};").is_empty());
    }
}
