//! Rule A — hot-path allocation.
//!
//! PR 8 made the training step allocation-free and locked it in with a
//! counting-allocator test (`neural/tests/zero_alloc.rs`). That test
//! only catches a regression after it lands; this pass makes the
//! invariant reviewable at lint time. Functions *reachable from the
//! `Workspace` step path* — any fn whose signature mentions `Workspace`,
//! any `impl Workspace` method, or anything annotated `// lint: hot`,
//! plus everything they (transitively, same-crate) call — must not
//! contain heap-allocating constructs:
//!
//! `Vec::new` / `Vec::with_capacity` / `vec![…]`, `Box::new`,
//! `String::new` / `String::from` / `format!`, `.to_vec()`,
//! `.to_string()`, `.to_owned()`, `.clone()` and `.collect()`
//! (kind `hot-alloc`).
//!
//! The reachability set is the caller→callee closure from
//! [`WorkspaceIndex::hot_set`]; name conflation across `impl` blocks is
//! deliberate — it is what makes `dyn Layer` dispatch visible to a
//! token-level analysis. Warm-up-only allocations (pool refills on a
//! miss) are real but intentional: suppress them with
//! `// lint: allow(alloc) — reason`.

use super::{Finding, Rule};
use crate::lexer::{tok, TokKind, Token};
use crate::source::SourceFile;
use crate::symbols::WorkspaceIndex;

/// `Type::method` pairs that allocate.
const PATH_ALLOCS: [(&str, &str); 5] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
];

/// `.method(` / `.method::<…>(` calls that allocate.
const METHOD_ALLOCS: [&str; 5] = ["to_vec", "to_string", "to_owned", "clone", "collect"];

/// Macros that allocate.
const MACRO_ALLOCS: [&str; 2] = ["vec", "format"];

/// Runs the hot-path allocation pass over one library file.
pub fn alloc_pass(file: &SourceFile, file_ix: usize, idx: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    for (id, f) in idx.fns_in_file(file_ix) {
        if f.is_test || !idx.is_hot(id) {
            continue;
        }
        scan_body(file, &f.qual, f.body.0, f.body.1, &mut out);
    }
    out
}

fn scan_body(
    file: &SourceFile,
    qual: &str,
    body_open: usize,
    body_close: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    for i in (body_open + 1)..body_close {
        if file.masked(i) {
            continue;
        }
        let t = tok(toks, i);
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some(construct) = alloc_construct(toks, i, t) {
            out.push(Finding::new(
                file,
                Rule::Alloc,
                "hot-alloc",
                t.line,
                format!(
                    "`{construct}` allocates inside `{qual}`, which is reachable from \
                     the Workspace step path: reuse a workspace buffer (`take`/`give`) \
                     or hoist the allocation out of the step loop"
                ),
            ));
        }
    }
}

/// If the identifier at `i` is an allocating construct, its display name.
fn alloc_construct(toks: &[Token], i: usize, t: &Token) -> Option<String> {
    // `Type::method(` — require the *pair* so `Matrix::new` stays clean.
    for (ty, m) in PATH_ALLOCS {
        if t.is_ident(ty)
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident(m))
        {
            return Some(format!("{ty}::{m}"));
        }
    }
    // `vec![…]` / `format!(…)`.
    for m in MACRO_ALLOCS {
        if t.is_ident(m) && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            return Some(format!("{m}!"));
        }
    }
    // `.to_vec(` / `.clone(` / `.collect(` / `.collect::<…>(`.
    let dotted = i.checked_sub(1).is_some_and(|p| tok(toks, p).is_punct('.'));
    if dotted {
        for m in METHOD_ALLOCS {
            if t.is_ident(m) {
                let next = toks.get(i + 1);
                let called = next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'));
                if called {
                    return Some(format!(".{m}()"));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use crate::symbols::WorkspaceIndex;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::new("f.rs", "neural", FileKind::Lib, src);
        let files = vec![f];
        let idx = WorkspaceIndex::build(&files);
        alloc_pass(&files[0], 0, &idx)
    }

    #[test]
    fn allocation_in_workspace_fn_is_flagged() {
        let src = "\
use crate::workspace::Workspace;
fn step(ws: &mut Workspace) -> Vec<f64> {
    let v = Vec::new();
    v
}
";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "hot-alloc");
        assert!(f[0].message.contains("Vec::new"));
    }

    #[test]
    fn allocation_reached_through_a_call_is_flagged() {
        let src = "\
use crate::workspace::Workspace;
fn helper(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
fn step(ws: &mut Workspace, n: usize) -> Vec<f64> {
    helper(n)
}
";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("vec!"));
        assert!(f[0].message.contains("helper"));
    }

    #[test]
    fn lint_hot_annotation_roots_the_set() {
        let src = "\
// lint: hot — called from the step loop via dyn dispatch
fn apply(x: &mut [f64]) {
    let s = format!(\"{}\", x.len());
    let _ = s;
}
";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("format!"));
    }

    #[test]
    fn cold_functions_may_allocate() {
        let src = "\
fn build(n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    v.extend((0..n).map(|_| 0.0));
    v.clone()
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn clone_and_collect_on_hot_path_are_flagged() {
        let src = "\
use crate::workspace::Workspace;
fn step(ws: &mut Workspace, xs: &[f64]) -> f64 {
    let ys = xs.to_vec();
    let zs: Vec<f64> = ys.iter().map(|v| v * 2.0).collect();
    let s = zs.clone();
    s.iter().sum()
}
";
        let mut kinds: Vec<String> = run(src)
            .into_iter()
            .map(|f| f.message.split('`').nth(1).unwrap_or_default().to_string())
            .collect();
        kinds.sort();
        assert_eq!(kinds, [".clone()", ".collect()", ".to_vec()"]);
    }

    #[test]
    fn non_allocating_paths_named_new_are_clean() {
        let src = "\
use crate::workspace::Workspace;
fn step(ws: &mut Workspace) -> f64 {
    let m = Matrix::new(3, 3);
    m.sum()
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "\
use crate::workspace::Workspace;
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut ws = super::Workspace::new();
        let v: Vec<f64> = Vec::new();
        let _ = (v, &mut ws);
    }
}
";
        assert!(run(src).is_empty());
    }
}
