//! Rule M — metrics contract.
//!
//! Every `obs` registration site is cross-checked against the naming and
//! stability conventions the metrics-golden CI job relies on:
//!
//! * counters must end in `_total` (kind `counter-name`);
//! * timing instruments (`timer`, `timer_with`, `timing_histogram`) must
//!   end in `_seconds`; `timing_gauge` may also end in `_per_sec` for
//!   rate gauges (kind `timing-name`);
//! * literal label slices passed to `*_with` must already be in sorted
//!   key order — `Registry::key` sorts at runtime, but sorted source is
//!   what keeps the golden files reviewable (kind `label-order`);
//! * Stable-class registrations (`counter*`, `gauge*`, `histogram*`)
//!   must not be fed from wall-clock sources in the same statement —
//!   Timing values vary run-to-run and would break byte-stable snapshots
//!   (kind `stable-from-timing`).
//!
//! Metric names are resolved from string literals, `format!("…")` bodies
//! (the suffix check sees through `{placeholders}`), same-crate `const
//! NAME: &str` items via the workspace index, and `Registry::key(…)` /
//! `Self::key(…)` wrappers. Unresolvable first arguments are skipped —
//! the pass never guesses.

use super::{Finding, Rule};
use crate::lexer::{tok, TokKind, Token};
use crate::source::SourceFile;
use crate::symbols::WorkspaceIndex;

/// Registration methods and their contract class.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Class {
    Counter,
    Timing,
    /// Gauges/histograms: stable-class, but no name-suffix contract.
    OtherStable,
}

fn classify_method(name: &str) -> Option<(Class, bool)> {
    // (class, takes_labels)
    match name {
        "counter" => Some((Class::Counter, false)),
        "counter_with" => Some((Class::Counter, true)),
        "gauge" | "histogram" => Some((Class::OtherStable, false)),
        "gauge_with" | "histogram_with" => Some((Class::OtherStable, true)),
        "timer" | "timing_gauge" | "timing_histogram" => Some((Class::Timing, false)),
        "timer_with" => Some((Class::Timing, true)),
        _ => None,
    }
}

/// Identifiers that mark a wall-clock (Timing) data source.
const TIMING_SOURCES: [&str; 7] = [
    "Instant",
    "SystemTime",
    "elapsed",
    "as_secs_f64",
    "as_millis",
    "as_micros",
    "as_nanos",
];

/// Runs the metrics-contract pass over one library file.
pub fn metrics_pass(file: &SourceFile, idx: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.masked(i) {
            continue;
        }
        let t = tok(toks, i);
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some((class, takes_labels)) = classify_method(&t.text) else {
            continue;
        };
        // Must be a method call: `.counter(…)` — skips the definitions in
        // the obs registry itself (`fn counter(` has `fn` before it).
        let is_method = i.checked_sub(1).is_some_and(|p| tok(toks, p).is_punct('.'));
        if !is_method || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let method: String = t.text.clone();
        let line = t.line;
        if let Some(name) = resolve_name(file, idx, toks, i + 2) {
            check_name(file, &method, class, &name, line, &mut out);
        }
        if takes_labels {
            check_labels(file, toks, i + 2, line, &mut out);
        }
        if class != Class::Timing {
            check_stable_source(file, toks, i, line, &mut out);
        }
    }
    out
}

/// Suffix contract per class.
fn check_name(
    file: &SourceFile,
    method: &str,
    class: Class,
    name: &str,
    line: u32,
    out: &mut Vec<Finding>,
) {
    match class {
        Class::Counter if !name.ends_with("_total") => out.push(Finding::new(
            file,
            Rule::Metrics,
            "counter-name",
            line,
            format!(
                "counter `{name}` must end in `_total` (obs naming contract; the \
                 metrics-golden job keys on it)"
            ),
        )),
        Class::Timing => {
            let ok = name.ends_with("_seconds")
                || (method == "timing_gauge" && name.ends_with("_per_sec"));
            if !ok {
                out.push(Finding::new(
                    file,
                    Rule::Metrics,
                    "timing-name",
                    line,
                    format!(
                        "timing metric `{name}` must end in `_seconds` (or `_per_sec` \
                         for a `timing_gauge` rate): unit-suffixed names keep dashboards \
                         self-describing"
                    ),
                ));
            }
        }
        _ => {}
    }
}

/// Resolves the metric name starting at the token index of the first
/// argument. Returns `None` when the name is not statically known.
fn resolve_name(
    file: &SourceFile,
    idx: &WorkspaceIndex,
    toks: &[Token],
    mut j: usize,
) -> Option<String> {
    // Strip leading `&`s (`&format!`, `&Registry::key(…)`).
    while toks.get(j).is_some_and(|t| t.is_punct('&')) {
        j += 1;
    }
    let t = toks.get(j)?;
    if t.kind == TokKind::Str {
        return t.str_content().map(str::to_string);
    }
    if t.kind != TokKind::Ident {
        return None;
    }
    // `format!("…", …)`
    if t.is_ident("format") && toks.get(j + 1).is_some_and(|n| n.is_punct('!')) {
        let lit = toks.get(j + 3)?;
        return lit.str_content().map(str::to_string);
    }
    // `Registry::key(inner, …)` / `Self::key(…)` / `obs::Registry::key(…)`
    // — recurse into the inner name argument.
    let mut k = j;
    while toks.get(k)?.kind == TokKind::Ident
        && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
        && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
    {
        k += 3;
    }
    let last = toks.get(k)?;
    if last.is_ident("key") && toks.get(k + 1).is_some_and(|n| n.is_punct('(')) && k > j {
        return resolve_name(file, idx, toks, k + 2);
    }
    // A bare or path-qualified constant: resolve the final segment in the
    // same crate's string-const index.
    if last.kind == TokKind::Ident
        && toks
            .get(k + 1)
            .is_some_and(|n| n.is_punct(',') || n.is_punct(')'))
    {
        return idx
            .const_value(&file.crate_name, &last.text)
            .map(str::to_string);
    }
    None
}

/// Checks a literal `&[("k", v), …]` second argument for sorted,
/// duplicate-free label keys. Non-literal label args are skipped.
fn check_labels(
    file: &SourceFile,
    toks: &[Token],
    args_start: usize,
    line: u32,
    out: &mut Vec<Finding>,
) {
    // Find the comma ending the first argument (depth-aware).
    let mut depth = 0i32;
    let mut j = args_start;
    loop {
        let Some(t) = toks.get(j) else { return };
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                return; // single-argument call
            }
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            j += 1;
            break;
        }
        j += 1;
    }
    while toks.get(j).is_some_and(|t| t.is_punct('&')) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return;
    }
    // Collect the first string literal inside each `( … )` tuple.
    let mut keys: Vec<String> = Vec::new();
    let mut d = 0i32;
    let mut in_tuple = false;
    j += 1;
    while let Some(t) = toks.get(j) {
        if t.is_punct('(') {
            d += 1;
            in_tuple = d == 1;
        } else if t.is_punct(')') {
            d -= 1;
        } else if t.is_punct(']') && d == 0 {
            break;
        } else if in_tuple && t.kind == TokKind::Str {
            if let Some(k) = t.str_content() {
                keys.push(k.to_string());
            }
            in_tuple = false;
        }
        j += 1;
    }
    for w in keys.windows(2) {
        let (a, b) = (
            w.first().cloned().unwrap_or_default(),
            w.get(1).cloned().unwrap_or_default(),
        );
        if a >= b {
            out.push(Finding::new(
                file,
                Rule::Metrics,
                "label-order",
                line,
                format!(
                    "label keys must be sorted and unique in source (`\"{}\"` before \
                     `\"{}\"`): `Registry::key` sorts at runtime, but sorted literals \
                     keep golden snapshots diffable",
                    b, a
                ),
            ));
            break;
        }
    }
}

/// Flags a Stable-class registration whose statement touches a timing
/// source (`Instant`, `elapsed`, `as_secs_f64`, …).
fn check_stable_source(
    file: &SourceFile,
    toks: &[Token],
    method_ix: usize,
    line: u32,
    out: &mut Vec<Finding>,
) {
    let end = statement_end(toks, method_ix);
    for t in toks.get(method_ix..end).unwrap_or(&[]) {
        if t.kind == TokKind::Ident && TIMING_SOURCES.contains(&t.text.as_str()) {
            out.push(Finding::new(
                file,
                Rule::Metrics,
                "stable-from-timing",
                line,
                format!(
                    "Stable-class metric fed from wall-clock source `{}`: timing values \
                     vary run-to-run and break byte-stable snapshots — use a `timing_*` \
                     instrument instead",
                    t.text
                ),
            ));
            return;
        }
    }
}

/// Token index just past the `;` ending the statement containing
/// `method_ix` (bracket-aware, bounded by an unmatched `}`).
fn statement_end(toks: &[Token], method_ix: usize) -> usize {
    let mut depth = 0i32;
    let mut j = method_ix;
    while j < toks.len() {
        let t = tok(toks, j);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use crate::symbols::WorkspaceIndex;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::new("f.rs", "simulator", FileKind::Lib, src);
        let files = vec![f];
        let idx = WorkspaceIndex::build(&files);
        metrics_pass(&files[0], &idx)
    }

    #[test]
    fn bad_counter_suffix_is_flagged() {
        let f = run("fn f(reg: &obs::Registry) { reg.counter(\"sim_runs\").inc(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "counter-name");
    }

    #[test]
    fn good_counter_is_clean() {
        assert!(
            run("fn f(reg: &obs::Registry) { reg.counter(\"sim_runs_total\").inc(); }").is_empty()
        );
    }

    #[test]
    fn const_names_resolve_across_the_crate() {
        let src = "\
pub const RUNS: &str = \"sim_runs\";
fn f(reg: &obs::Registry) { reg.counter(RUNS).inc(); }
";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("sim_runs"));
    }

    #[test]
    fn format_suffix_sees_through_placeholders() {
        assert!(run(
            "fn f(reg: &obs::Registry, tag: &str) { reg.counter(&format!(\"t_{tag}_total\")).inc(); }"
        )
        .is_empty());
        let f = run(
            "fn f(reg: &obs::Registry, tag: &str) { reg.counter(&format!(\"t_{tag}_count\")).inc(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "counter-name");
    }

    #[test]
    fn registry_key_wrapper_resolves_inner_name() {
        let f = run(
            "fn f(reg: &obs::Registry) { reg.histogram(&obs::Registry::key(\"h\", &[(\"a\", \"1\")])).observe(1.0); }",
        );
        // histogram has no suffix contract; the inner name resolves but is fine.
        assert!(f.is_empty());
        let f = run(
            "fn f(reg: &obs::Registry) { reg.counter(&obs::Registry::key(\"h\", &[(\"a\", \"1\")])).inc(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "counter-name");
    }

    #[test]
    fn timing_names_require_seconds() {
        let f = run("fn f(reg: &obs::Registry) { reg.timing_histogram(\"lat_ms\"); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "timing-name");
        assert!(
            run("fn f(reg: &obs::Registry) { reg.timing_histogram(\"lat_seconds\"); }").is_empty()
        );
        // `_per_sec` is allowed for rate gauges only.
        assert!(
            run("fn f(reg: &obs::Registry) { reg.timing_gauge(\"steps_per_sec\"); }").is_empty()
        );
        let f = run("fn f(reg: &obs::Registry) { reg.timer(\"steps_per_sec\"); }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unsorted_labels_are_flagged() {
        let f = run(
            "fn f(reg: &obs::Registry) { reg.counter_with(\"x_total\", &[(\"b\", \"1\"), (\"a\", \"2\")]).inc(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "label-order");
        assert!(run(
            "fn f(reg: &obs::Registry) { reg.counter_with(\"x_total\", &[(\"a\", \"1\"), (\"b\", \"2\")]).inc(); }"
        )
        .is_empty());
    }

    #[test]
    fn duplicate_labels_are_flagged() {
        let f = run(
            "fn f(reg: &obs::Registry) { reg.counter_with(\"x_total\", &[(\"a\", \"1\"), (\"a\", \"2\")]).inc(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "label-order");
    }

    #[test]
    fn stable_metric_fed_from_elapsed_is_flagged() {
        let f = run(
            "fn f(reg: &obs::Registry, t: std::time::Instant) { reg.gauge(\"x\").set(t.elapsed().as_secs_f64()); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "stable-from-timing");
    }

    #[test]
    fn timing_metric_fed_from_elapsed_is_fine() {
        assert!(run(
            "fn f(reg: &obs::Registry, t: std::time::Instant) { reg.timing_gauge(\"x_seconds\").set(t.elapsed().as_secs_f64()); }"
        )
        .is_empty());
    }

    #[test]
    fn unresolvable_names_are_skipped() {
        assert!(
            run("fn f(reg: &obs::Registry, name: &str) { reg.counter(name).inc(); }").is_empty()
        );
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { obs::global().counter(\"x\").inc(); }\n}"
        )
        .is_empty());
    }
}
