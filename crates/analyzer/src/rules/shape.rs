//! Rule S — NN shape soundness.
//!
//! The `neural` layer stacks only discover dimension mismatches when the
//! first batch hits `Matrix::matmul` and panics. This pass finds every
//! `Sequential::new(vec![..])` / `SeqSequential::new(vec![..])`
//! construction and statically chains the declared layer signatures:
//!
//! | constructor                          | in → out            |
//! |--------------------------------------|---------------------|
//! | `Dense::new(i, o, rng)`              | `i → o`             |
//! | `Conv1d::new(ci, co, k, rng)`        | `ci → co` (channels)|
//! | `Conv1d::strided(ci, co, k, s, rng)` | `ci → co` (channels)|
//! | `Lstm::new(i, h, rng)` / `Gru`       | `i → h`             |
//! | `Activation` / `SeqActivation` / `Softmax` / `Dropout` | preserving |
//! | `TimeDistributed::new(inner)`        | inner's signature   |
//!
//! Dimensions are compared as normalised token text, so symbolic sizes
//! (`h`, `cfg.tod_hidden`) chain exactly like literals. An element the
//! pass cannot attribute a signature to (helper call, complex match with
//! divergent arms) resets the chain instead of guessing — no false
//! positives from code the lexer cannot see through.
//!
//! Beyond channels, the pass chains *sequence length* through a stack
//! annotated `// lint: seq_len(N)` (same line as the stack constructor
//! or up to two lines above). Same-padded `Conv1d::new` and the
//! recurrent layers preserve length; `Conv1d::strided(ci, co, k, s, rng)`
//! maps `L → (L - k)/s + 1`, and a numeric kernel that no longer fits
//! the remaining length is flagged `conv-seq-underflow` — the forward
//! pass would panic. Two constructor-level checks need no annotation:
//! a numeric even kernel in `Conv1d::new` (`conv-even-kernel`, the
//! same-padding constructor asserts odd) and a numeric zero stride in
//! `Conv1d::strided` (`conv-zero-stride`).
//!
//! Unlike D and P this pass also covers tests and examples: a shape bug
//! in a test is still a runtime panic somebody has to debug.

use super::{Finding, Rule};
use crate::lexer::tok;
use crate::source::SourceFile;

/// Layer constructors with an `(input, output)` dimension signature, and
/// the argument positions holding those dimensions.
const PARAM_LAYERS: &[(&str, usize, usize)] = &[
    ("Dense", 0, 1),
    ("Conv1d", 0, 1),
    ("Lstm", 0, 1),
    ("Gru", 0, 1),
];

/// Shape-preserving layers: output dims equal input dims.
const PRESERVING: &[&str] = &[
    "Activation",
    "SeqActivation",
    "Softmax",
    "Dropout",
    "TimeDistributed",
];

/// How one stack element transforms the sequence (time) dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SeqEffect {
    /// Length in = length out (same-padded conv, recurrent layers, …).
    Preserve,
    /// Valid strided convolution: `L → (L - k)/s + 1`. `None` components
    /// are symbolic — they end length tracking without a finding.
    Conv { k: Option<u64>, stride: Option<u64> },
}

/// What the pass knows about one stack element.
#[derive(Debug, PartialEq)]
enum Sig {
    /// Declared `(input, output)` dims as normalised text, the line, and
    /// the element's effect on sequence length.
    Param(String, String, u32, SeqEffect),
    /// Shape-preserving.
    Preserving,
    /// Unknown — breaks the chain.
    Unknown,
}

/// Runs the shape pass over any file.
pub fn shape_pass(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    check_conv_constructors(file, &mut out);
    let mut i = 0usize;
    while i < toks.len() {
        // Match `Sequential :: new ( vec ! [` (or SeqSequential).
        let is_stack = (tok(toks, i).is_ident("Sequential")
            || tok(toks, i).is_ident("SeqSequential"))
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 3), Some(t) if t.is_ident("new"))
            && matches!(toks.get(i + 4), Some(t) if t.is_punct('('))
            && matches!(toks.get(i + 5), Some(t) if t.is_ident("vec"))
            && matches!(toks.get(i + 6), Some(t) if t.is_punct('!'))
            && matches!(toks.get(i + 7), Some(t) if t.is_punct('['));
        if !is_stack {
            i += 1;
            continue;
        }
        let body_start = i + 8;
        let body_end = matching_close(toks, body_start, '[', ']');
        let seq_len = declared_seq_len(file, tok(toks, i).line);
        check_stack(file, body_start, body_end, seq_len, &mut out);
        i = body_end;
    }
    out
}

/// Index just past the closing bracket matching the one *before* `start`.
fn matching_close(toks: &[crate::lexer::Token], start: usize, open: char, close: char) -> usize {
    let mut depth = 1i32;
    let mut j = start;
    while j < toks.len() && depth > 0 {
        if tok(toks, j).is_punct(open) {
            depth += 1;
        } else if tok(toks, j).is_punct(close) {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Parses a `// lint: seq_len(N)` annotation on the stack's line or up
/// to two lines above it: the declared input sequence length.
fn declared_seq_len(file: &SourceFile, stack_line: u32) -> Option<u64> {
    file.comments.iter().find_map(|c| {
        if c.line > stack_line || c.line + 2 < stack_line {
            return None;
        }
        let (_, after) = c.text.split_once("lint:")?;
        let body = after.trim_start().strip_prefix("seq_len(")?;
        let (num, _) = body.split_once(')')?;
        parse_num(num.trim())
    })
}

/// Flags constructor arguments that panic regardless of stack context:
/// an even kernel in same-padded `Conv1d::new`, a zero stride in
/// `Conv1d::strided`.
fn check_conv_constructors(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut j = 0usize;
    while j < toks.len() {
        let Some((ctor, args_start, args_end)) = match_conv_ctor(toks, j) else {
            j += 1;
            continue;
        };
        let line = tok(toks, j).line;
        let args = split_args(toks, args_start, args_end.saturating_sub(1));
        let arg_num = |pos: usize| {
            args.get(pos)
                .and_then(|&(s, e)| parse_num(&normalize(toks, s, e)))
        };
        match ctor {
            "new" => {
                if let Some(k) = arg_num(2) {
                    if k % 2 == 0 {
                        out.push(Finding::new(
                            file,
                            Rule::Shape,
                            "conv-even-kernel",
                            line,
                            format!(
                                "`Conv1d::new` same padding asserts an odd kernel; \
                                 kernel `{k}` panics at construction — use an odd \
                                 size or `Conv1d::strided` for valid padding"
                            ),
                        ));
                    }
                }
            }
            _ => {
                if arg_num(3) == Some(0) {
                    out.push(Finding::new(
                        file,
                        Rule::Shape,
                        "conv-zero-stride",
                        line,
                        "`Conv1d::strided` asserts a positive stride; stride `0` \
                         panics at construction"
                            .to_string(),
                    ));
                }
            }
        }
        j = args_end;
    }
}

/// If the tokens at `j` start `Conv1d :: new (` or `Conv1d :: strided (`,
/// returns the constructor name and the argument range.
fn match_conv_ctor(toks: &[crate::lexer::Token], j: usize) -> Option<(&'static str, usize, usize)> {
    if !toks.get(j)?.is_ident("Conv1d")
        || !toks.get(j + 1)?.is_punct(':')
        || !toks.get(j + 2)?.is_punct(':')
        || !toks.get(j + 4)?.is_punct('(')
    {
        return None;
    }
    let ctor = if toks.get(j + 3)?.is_ident("new") {
        "new"
    } else if toks.get(j + 3)?.is_ident("strided") {
        "strided"
    } else {
        return None;
    };
    let args_start = j + 5;
    Some((ctor, args_start, matching_close(toks, args_start, '(', ')')))
}

/// Splits `toks[start..end]` (exclusive of the closing bracket) at
/// top-level commas and chains element signatures.
fn check_stack(
    file: &SourceFile,
    start: usize,
    end: usize,
    declared_len: Option<u64>,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let body_end = end.saturating_sub(1).max(start); // drop the `]`
    let mut elements: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0i32;
    let mut elem_start = start;
    for (j, t) in toks.iter().enumerate().take(body_end).skip(start) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if j > elem_start {
                elements.push((elem_start, j));
            }
            elem_start = j + 1;
        }
    }
    if body_end > elem_start {
        elements.push((elem_start, body_end));
    }

    let mut prev_out: Option<(String, u32)> = None;
    let mut seq_len = declared_len;
    for &(s, e) in &elements {
        match element_sig(toks, s, e) {
            Sig::Param(inp, outp, line, seq) => {
                if let Some((po, prev_line)) = &prev_out {
                    if *po != inp {
                        let literal = is_numeric(po) && is_numeric(&inp);
                        out.push(Finding::new(
                            file,
                            Rule::Shape,
                            "shape-mismatch",
                            line,
                            format!(
                                "layer expects input dim `{inp}` but the layer on line \
                                 {prev_line} produces `{po}`{}",
                                if literal {
                                    " — this will panic at the first forward pass"
                                } else {
                                    " (symbolic dims compared textually; if provably equal, \
                                     annotate `// lint: allow(shape) — reason`)"
                                }
                            ),
                        ));
                    }
                }
                prev_out = Some((outp, line));
                seq_len = chain_seq(file, seq, seq_len, line, out);
            }
            Sig::Preserving => {}
            Sig::Unknown => {
                prev_out = None;
                seq_len = None;
            }
        }
    }
}

/// Applies one element's [`SeqEffect`] to the tracked sequence length,
/// flagging a strided convolution whose kernel no longer fits.
fn chain_seq(
    file: &SourceFile,
    seq: SeqEffect,
    len: Option<u64>,
    line: u32,
    out: &mut Vec<Finding>,
) -> Option<u64> {
    match seq {
        SeqEffect::Preserve => len,
        SeqEffect::Conv { k, stride } => {
            let l = len?;
            let k = k?;
            if l < k {
                out.push(Finding::new(
                    file,
                    Rule::Shape,
                    "conv-seq-underflow",
                    line,
                    format!(
                        "strided Conv1d kernel `{k}` no longer fits the sequence: \
                         only `{l}` steps remain at this depth (chained from \
                         `lint: seq_len(..)`) — the forward pass will panic"
                    ),
                ));
                return None;
            }
            match stride {
                Some(s) if s > 0 => Some((l - k) / s + 1),
                _ => None,
            }
        }
    }
}

/// Extracts the signature of one stack element.
///
/// Scans the element for parameterised layer constructors
/// (`Dense :: new ( a , b , … )`); if every occurrence agrees on one
/// `(in, out)` pair that is the signature (this resolves both
/// `Box::new(Dense::new(..))` and match expressions whose arms build
/// equivalent layers). With none, the element is preserving when it
/// mentions a preserving layer, otherwise unknown.
fn element_sig(toks: &[crate::lexer::Token], s: usize, e: usize) -> Sig {
    let mut sigs: Vec<(String, String, u32, SeqEffect)> = Vec::new();
    let mut preserving_seen = false;
    let mut j = s;
    while j < e {
        let t = tok(toks, j);
        if PRESERVING.iter().any(|p| t.is_ident(p)) {
            preserving_seen = true;
        }
        // The strided constructor carries a sequence-length effect; the
        // `Conv1d :: new` form falls through to the generic match below.
        if let Some(("strided", args_start, args_end)) = match_conv_ctor(toks, j) {
            let args = split_args(toks, args_start, args_end.saturating_sub(1));
            if let (Some(a), Some(b)) = (args.first(), args.get(1)) {
                let num = |pos: usize| {
                    args.get(pos)
                        .and_then(|&(as_, ae)| parse_num(&normalize(toks, as_, ae)))
                };
                sigs.push((
                    normalize(toks, a.0, a.1),
                    normalize(toks, b.0, b.1),
                    tok(toks, j).line,
                    SeqEffect::Conv {
                        k: num(2),
                        stride: num(3),
                    },
                ));
            }
            j = args_end;
            continue;
        }
        if let Some(&(_, in_pos, out_pos)) = PARAM_LAYERS.iter().find(|(n, ..)| t.is_ident(n)) {
            // Expect `:: new (` then the argument list.
            if matches!(toks.get(j + 1), Some(t) if t.is_punct(':'))
                && matches!(toks.get(j + 2), Some(t) if t.is_punct(':'))
                && matches!(toks.get(j + 3), Some(t) if t.is_ident("new"))
                && matches!(toks.get(j + 4), Some(t) if t.is_punct('('))
            {
                let args_start = j + 5;
                let args_end = matching_close(toks, args_start, '(', ')');
                let args = split_args(toks, args_start, args_end.saturating_sub(1));
                if let (Some(a), Some(b)) = (args.get(in_pos), args.get(out_pos)) {
                    sigs.push((
                        normalize(toks, a.0, a.1),
                        normalize(toks, b.0, b.1),
                        tok(toks, j).line,
                        SeqEffect::Preserve,
                    ));
                }
                j = args_end;
                continue;
            }
        }
        j += 1;
    }
    match sigs.len() {
        0 if preserving_seen => Sig::Preserving,
        0 => Sig::Unknown,
        _ => {
            let Some((i0, o0, line, seq0)) = sigs.first().cloned() else {
                return Sig::Unknown;
            };
            if sigs
                .iter()
                .all(|(a, b, _, sq)| *a == i0 && *b == o0 && *sq == seq0)
            {
                Sig::Param(i0, o0, line, seq0)
            } else {
                Sig::Unknown
            }
        }
    }
}

/// Splits an argument list `toks[s..e]` at top-level commas into
/// `(start, end)` ranges.
fn split_args(toks: &[crate::lexer::Token], s: usize, e: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = s;
    for (j, t) in toks.iter().enumerate().take(e).skip(s) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            out.push((start, j));
            start = j + 1;
        }
    }
    if e > start {
        out.push((start, e));
    }
    out
}

/// Joins the token texts of a dimension expression into a canonical
/// comparison key (`cfg . tod_hidden` → `cfg.tod_hidden`).
fn normalize(toks: &[crate::lexer::Token], s: usize, e: usize) -> String {
    let mut out = String::new();
    for t in toks.get(s..e).unwrap_or(&[]) {
        out.push_str(&t.text);
    }
    out
}

/// True when a normalised dim is a pure numeric literal.
fn is_numeric(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_digit() || c == '_')
}

/// Parses a normalised numeric literal (`1_000` → 1000); `None` for
/// symbolic expressions.
fn parse_num(s: &str) -> Option<u64> {
    if is_numeric(s) {
        s.replace('_', "").parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn run(src: &str) -> Vec<Finding> {
        shape_pass(&SourceFile::new("f.rs", "neural", FileKind::Lib, src))
    }

    #[test]
    fn consistent_chain_is_clean() {
        let src = "let net = Sequential::new(vec![
            Box::new(Dense::new(m, hidden, &mut rng)),
            Box::new(Activation::new(ActKind::Relu)),
            Box::new(Dense::new(hidden, n, &mut rng)),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn literal_mismatch_is_flagged() {
        let src = "let net = Sequential::new(vec![
            Box::new(Dense::new(4, 8, &mut rng)),
            Box::new(Dense::new(16, 2, &mut rng)),
        ]);";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "shape-mismatch");
        assert!(f[0].message.contains("panic at the first forward pass"));
    }

    #[test]
    fn symbolic_mismatch_is_flagged() {
        let src = "let net = SeqSequential::new(vec![
            Box::new(Lstm::new(m, hidden, &mut rng)),
            Box::new(TimeDistributed::new(Dense::new(other, n, &mut rng))),
        ]);";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn preserving_layers_pass_dims_through() {
        let src = "let net = SeqSequential::new(vec![
            Box::new(Conv1d::new(1, c, 3, &mut rng)),
            Box::new(SeqActivation::new(ActKind::Relu)),
            Box::new(Softmax::new()),
            Box::new(Conv1d::new(c, 1, 3, &mut rng)),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn match_arms_with_agreeing_sigs_chain() {
        let src = "let net = SeqSequential::new(vec![
            match kind { K::A => Box::new(Lstm::new(input, h, rng)), K::B => Box::new(Gru::new(input, h, rng)) },
            Box::new(TimeDistributed::new(Dense::new(h, 1, rng))),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unknown_element_resets_chain() {
        let src = "let net = SeqSequential::new(vec![
            rnn(1, rng),
            Box::new(TimeDistributed::new(Dense::new(h, 1, rng))),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn even_kernel_in_same_padded_conv_is_flagged() {
        let src = "let c = Conv1d::new(1, 4, 4, &mut rng);";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "conv-even-kernel");
        assert!(f[0].message.contains("odd kernel"));
    }

    #[test]
    fn odd_symbolic_and_strided_kernels_are_not_even_kernel_findings() {
        assert!(run("let c = Conv1d::new(1, 4, 3, &mut rng);").is_empty());
        assert!(run("let c = Conv1d::new(1, 4, k, &mut rng);").is_empty());
        // strided convs take any kernel parity
        assert!(run("let c = Conv1d::strided(1, 4, 4, 2, &mut rng);").is_empty());
    }

    #[test]
    fn zero_stride_is_flagged() {
        let f = run("let c = Conv1d::strided(1, 4, 3, 0, &mut rng);");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "conv-zero-stride");
    }

    #[test]
    fn annotated_stack_chains_sequence_length() {
        // 12 -> (12-3)/2+1 = 5 -> (5-5)/1+1 = 1: fits exactly.
        let src = "// lint: seq_len(12)
        let net = SeqSequential::new(vec![
            Box::new(Conv1d::strided(1, 4, 3, 2, &mut rng)),
            Box::new(SeqActivation::new(ActKind::Relu)),
            Box::new(Conv1d::strided(4, 1, 5, 1, &mut rng)),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn sequence_underflow_is_flagged_at_the_guilty_layer() {
        // 8 -> (8-3)/2+1 = 3, then a kernel of 5 cannot fit 3 steps.
        let src = "// lint: seq_len(8)
        let net = SeqSequential::new(vec![
            Box::new(Conv1d::strided(1, 4, 3, 2, &mut rng)),
            Box::new(Conv1d::strided(4, 1, 5, 1, &mut rng)),
        ]);";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "conv-seq-underflow");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("only `3` steps"));
    }

    #[test]
    fn same_padded_convs_and_recurrent_layers_preserve_length() {
        let src = "// lint: seq_len(5)
        let net = SeqSequential::new(vec![
            Box::new(Conv1d::new(1, c, 3, &mut rng)),
            Box::new(Lstm::new(c, h, &mut rng)),
            Box::new(Conv1d::strided(h, 1, 5, 1, &mut rng)),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unannotated_stack_tracks_no_length() {
        let src = "let net = SeqSequential::new(vec![
            Box::new(Conv1d::strided(1, 4, 9, 2, &mut rng)),
            Box::new(Conv1d::strided(4, 1, 9, 2, &mut rng)),
        ]);";
        assert!(run(src).is_empty());
    }

    #[test]
    fn symbolic_kernel_ends_length_tracking_without_findings() {
        let src = "// lint: seq_len(4)
        let net = SeqSequential::new(vec![
            Box::new(Conv1d::strided(1, 4, k, 1, &mut rng)),
            Box::new(Conv1d::strided(4, 1, 9, 1, &mut rng)),
        ]);";
        assert!(run(src).is_empty());
    }
}
