//! Rule C — concurrency discipline.
//!
//! The serving and streaming layers hold locks on request paths and run
//! watcher threads; the paper's reproducibility claim (bit-identical
//! output across thread counts) makes latent ordering bugs expensive.
//! On protected-crate library code this pass flags:
//!
//! * `static mut` — data races by construction (kind `static-mut`);
//! * a lock guard held across a call into another same-crate function
//!   that (transitively) acquires a lock — the classic lock-order /
//!   re-entrancy deadlock shape (kind `guard-across-lock`);
//! * an `RwLock` write acquired while a read guard is live in the same
//!   scope — self-deadlock with std's non-reentrant `RwLock`
//!   (kind `write-in-read`);
//! * a spawned thread whose handle is discarded, or stored in a file
//!   that never joins — shutdown then races detached work
//!   (kind `spawn-no-join`).
//!
//! Lock acquisition is recognised syntactically as `.lock()` / `.read()`
//! / `.write()` with an empty argument list (the std `Mutex`/`RwLock`
//! shapes — `Read::read(&mut buf)` takes arguments and is ignored), and
//! "another locking function" comes from the workspace index's
//! intra-crate call-graph closure ([`WorkspaceIndex::is_locking_call`]).

use super::{Finding, Rule};
use crate::lexer::{tok, TokKind, Token};
use crate::source::{is_keyword, SourceFile};
use crate::symbols::WorkspaceIndex;

/// What a live guard binding holds.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GuardKind {
    Read,
    Write,
    Lock,
}

#[derive(Debug)]
struct Guard {
    /// Binding name; `_anon` for destructured bindings.
    name: String,
    kind: GuardKind,
    /// Brace depth (within the fn body) the binding lives at.
    depth: i32,
    line: u32,
}

/// Runs the concurrency pass over one protected-crate library file.
pub fn concurrency_pass(file: &SourceFile, file_ix: usize, idx: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    static_mut_scan(file, &mut out);
    for (id, f) in idx.fns_in_file(file_ix) {
        if f.is_test {
            continue;
        }
        let _ = id;
        guard_scan(file, f.body.0, f.body.1, idx, &mut out);
        spawn_scan(file, f.body.0, f.body.1, &mut out);
    }
    out
}

/// Flags `static mut` items outside test regions.
fn static_mut_scan(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in file.tokens.iter().enumerate() {
        if in_test(file, i) || !t.is_ident("static") {
            continue;
        }
        if file.tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push(Finding::new(
                file,
                Rule::Concurrency,
                "static-mut",
                t.line,
                "`static mut` is a data race waiting for a second thread: use an atomic, \
                 a `Mutex`, or `OnceLock`"
                    .to_string(),
            ));
        }
    }
}

/// Walks one fn body tracking live guard bindings; flags calls into
/// locking functions and write acquisitions under a read guard.
fn guard_scan(
    file: &SourceFile,
    body_open: usize,
    body_close: usize,
    idx: &WorkspaceIndex,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = body_open + 1;
    while i < body_close {
        let t = tok(toks, i);
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        // `let <pat> = … .lock()/.read()/.write() … ;` — a guard binding.
        if t.is_ident("let") {
            let end = statement_end(toks, i, body_close);
            if let Some((kind, acq_line)) = acquisition_in(toks, i, end) {
                if kind == GuardKind::Write {
                    flag_write_in_read(file, &guards, acq_line, out);
                }
                // `let v = *m.lock()…` copies the value out — the guard
                // is a temporary and dies at the `;`, binding nothing.
                if binds_guard(toks, i, end) {
                    guards.push(Guard {
                        name: binding_name(toks, i),
                        kind,
                        depth,
                        line: acq_line,
                    });
                }
            }
            // Calls inside the binding statement still count as "while
            // holding" only for guards that were already live.
            scan_calls_for_locking(file, idx, toks, i, end, &guards, out);
            i = end;
            continue;
        }
        // `drop(name)` releases a guard early.
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name != arg.text);
                }
            }
            i += 1;
            continue;
        }
        // Expression-position acquisition (temporary guard): only the
        // write-in-read hazard applies — the temporary dies at the `;`.
        if let Some(kind) = acquisition_at(toks, i) {
            if kind == GuardKind::Write {
                flag_write_in_read(file, &guards, t.line, out);
            }
            i += 3;
            continue;
        }
        // A call while guards are live.
        if !guards.is_empty()
            && crate::symbols::call_edge(toks, i)
                .is_some_and(|e| idx.is_locking_call(&file.crate_name, &e))
        {
            if let Some(g) = guards.last() {
                out.push(Finding::new(
                    file,
                    Rule::Concurrency,
                    "guard-across-lock",
                    t.line,
                    format!(
                        "call to `{}` (which acquires a lock) while the guard `{}` from \
                         line {} is still held: release the guard first (narrow the \
                         scope or `drop` it) to keep a single lock order",
                        t.text, g.name, g.line
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// Flags a write acquisition when any read guard is currently live.
fn flag_write_in_read(file: &SourceFile, guards: &[Guard], line: u32, out: &mut Vec<Finding>) {
    if let Some(rg) = guards.iter().rev().find(|g| g.kind == GuardKind::Read) {
        out.push(Finding::new(
            file,
            Rule::Concurrency,
            "write-in-read",
            line,
            format!(
                "`.write()` acquired while the read guard `{}` from line {} is live: \
                 std `RwLock` is not upgradable — this deadlocks once a writer queues. \
                 Drop the read guard first",
                rg.name, rg.line
            ),
        ));
    }
}

/// Reports calls to locking functions within `[i, end)` while `guards`
/// is non-empty (used for the tail of a binding statement).
fn scan_calls_for_locking(
    file: &SourceFile,
    idx: &WorkspaceIndex,
    toks: &[Token],
    i: usize,
    end: usize,
    guards: &[Guard],
    out: &mut Vec<Finding>,
) {
    if guards.is_empty() {
        return;
    }
    for j in i..end {
        let t = tok(toks, j);
        if crate::symbols::call_edge(toks, j)
            .is_some_and(|e| idx.is_locking_call(&file.crate_name, &e))
        {
            if let Some(g) = guards.last() {
                out.push(Finding::new(
                    file,
                    Rule::Concurrency,
                    "guard-across-lock",
                    t.line,
                    format!(
                        "call to `{}` (which acquires a lock) while the guard `{}` \
                         from line {} is still held: release the guard first to keep \
                         a single lock order",
                        t.text, g.name, g.line
                    ),
                ));
            }
        }
    }
}

/// Flags `thread::spawn` / `scope.spawn` whose handle is discarded, or
/// bound/stored in a file that never mentions `join`.
fn spawn_scan(file: &SourceFile, body_open: usize, body_close: usize, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let file_joins = toks.iter().any(|t| t.is_ident("join"));
    for i in (body_open + 1)..body_close {
        let t = tok(toks, i);
        if !t.is_ident("spawn") || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let dotted = i
            .checked_sub(1)
            .is_some_and(|p| tok(toks, p).is_punct('.') || tok(toks, p).is_punct(':'));
        if !dotted {
            continue; // a local fn named spawn is the caller's business
        }
        let start = statement_start(toks, i, body_open);
        let stored = stores_handle(toks, start, i);
        if !stored {
            out.push(Finding::new(
                file,
                Rule::Concurrency,
                "spawn-no-join",
                t.line,
                "spawned thread handle is discarded — nothing can ever join it, so \
                 shutdown races the thread: bind the handle and join it on every path"
                    .to_string(),
            ));
        } else if !file_joins {
            out.push(Finding::new(
                file,
                Rule::Concurrency,
                "spawn-no-join",
                t.line,
                "spawned thread handle is stored but this file never joins: join the \
                 handle on shutdown (or document the detachment with an allow)"
                    .to_string(),
            ));
        }
    }
}

/// True when the statement owning a `spawn` keeps its handle: a `let`
/// binding with a real name, a `.push(…)` into a collection, or being
/// the argument of a `return`.
fn stores_handle(toks: &[Token], start: usize, spawn_ix: usize) -> bool {
    let mut j = start;
    while j < spawn_ix {
        let t = tok(toks, j);
        if t.is_ident("let") {
            let name = binding_name(toks, j);
            if name != "_" {
                return true;
            }
        }
        if t.is_ident("push") || t.is_ident("insert") || t.is_ident("return") {
            return true;
        }
        j += 1;
    }
    false
}

/// The binding name of a `let` at `i`: first identifier after `let`
/// (skipping `mut`), or `_anon` for destructuring patterns.
fn binding_name(toks: &[Token], i: usize) -> String {
    let mut j = i + 1;
    while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    match toks.get(j) {
        Some(t) if t.kind == TokKind::Ident && !is_keyword(&t.text) => t.text.clone(),
        Some(t) if t.is_punct('_') => "_".to_string(),
        _ => "_anon".to_string(),
    }
}

/// If tokens at `i` are `.lock()`, `.read()` or `.write()`, the guard
/// kind acquired.
fn acquisition_at(toks: &[Token], i: usize) -> Option<GuardKind> {
    let t = toks.get(i)?;
    let prev = i.checked_sub(1).map(|p| tok(toks, p))?;
    if !prev.is_punct('.') || !toks.get(i + 1)?.is_punct('(') || !toks.get(i + 2)?.is_punct(')') {
        return None;
    }
    match t.text.as_str() {
        "read" => Some(GuardKind::Read),
        "write" => Some(GuardKind::Write),
        "lock" => Some(GuardKind::Lock),
        _ => None,
    }
}

/// First acquisition within `[i, end)` at brace depth zero — a lock
/// taken inside a nested `{ … }` is confined to that block and never
/// escapes to the `let` binding.
fn acquisition_in(toks: &[Token], i: usize, end: usize) -> Option<(GuardKind, u32)> {
    let mut depth = 0i32;
    for j in i..end {
        let t = tok(toks, j);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            if let Some(k) = acquisition_at(toks, j) {
                return Some((k, t.line));
            }
        }
    }
    None
}

/// True when the `let` statement binds the guard itself rather than a
/// copy: `let v = *m.lock()…` dereferences the temporary guard and only
/// the copied value survives the `;`.
fn binds_guard(toks: &[Token], i: usize, end: usize) -> bool {
    for j in i..end {
        if tok(toks, j).is_punct('=') {
            return !toks.get(j + 1).is_some_and(|n| n.is_punct('*'));
        }
    }
    true
}

/// Index just past the `;` ending the statement starting at `i`
/// (brace-aware: `let x = match … { … };`).
fn statement_end(toks: &[Token], i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < limit {
        let t = tok(toks, j);
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    limit
}

/// Index of the first token of the statement containing `i`.
fn statement_start(toks: &[Token], i: usize, floor: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j > floor {
        let t = tok(toks, j - 1);
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                // We walked out of the expression's own parens: keep
                // going, this is e.g. `push(` wrapping the spawn.
            } else {
                depth -= 1;
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return j;
        }
        j -= 1;
    }
    floor
}

fn in_test(file: &SourceFile, i: usize) -> bool {
    file.in_test.get(i).copied().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use crate::symbols::WorkspaceIndex;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::new("f.rs", "simulator", FileKind::Lib, src);
        let files = vec![f];
        let idx = WorkspaceIndex::build(&files);
        concurrency_pass(&files[0], 0, &idx)
    }

    fn kinds(src: &str) -> Vec<&'static str> {
        let mut k: Vec<&'static str> = run(src).into_iter().map(|f| f.kind).collect();
        k.sort_unstable();
        k.dedup();
        k
    }

    #[test]
    fn static_mut_is_flagged() {
        assert_eq!(kinds("static mut COUNT: u32 = 0;"), ["static-mut"]);
        assert!(kinds("static COUNT: u32 = 0;").is_empty());
    }

    #[test]
    fn guard_across_locking_call_is_flagged() {
        let src = "\
use std::sync::Mutex;
fn other(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }
fn bad(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = a.lock().unwrap();
    other(b) + *g
}
";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "guard-across-lock");
        assert!(f[0].message.contains("`other`"));
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let src = "\
use std::sync::Mutex;
fn other(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }
fn good(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = *a.lock().unwrap();
    let g2 = g;
    other(b) + g2
}
fn scoped(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let v = { let g = a.lock().unwrap(); *g };
    other(b) + v
}
fn explicit(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = a.lock().unwrap();
    let v = *g;
    drop(g);
    other(b) + v
}
";
        // `good` binds a copy (guard is a temporary), `scoped` confines the
        // guard to an inner block, `explicit` drops it — all clean.
        assert!(run(src).is_empty());
    }

    #[test]
    fn write_inside_read_scope_is_flagged() {
        let src = "\
use std::sync::RwLock;
fn bad(l: &RwLock<u32>) -> u32 {
    let r = l.read().unwrap();
    let w = l.write().unwrap();
    *r + *w
}
";
        let f = run(src);
        assert!(f.iter().any(|f| f.kind == "write-in-read"), "{f:?}");
    }

    #[test]
    fn sequential_read_then_write_is_clean() {
        let src = "\
use std::sync::RwLock;
fn good(l: &RwLock<u32>) -> u32 {
    let v = { let r = l.read().unwrap(); *r };
    let mut w = l.write().unwrap();
    *w += v;
    v
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let src = "\
fn io(r: &mut impl std::io::Read, buf: &mut [u8]) {
    let n = r.read(buf);
    let _ = n;
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn discarded_spawn_handle_is_flagged() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "spawn-no-join");
        assert!(f[0].message.contains("discarded"));
    }

    #[test]
    fn stored_spawn_without_any_join_in_file_is_flagged() {
        let src = "fn f() { let h = std::thread::spawn(|| {}); let _ = h; }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never joins"));
    }

    #[test]
    fn pushed_and_joined_spawn_is_clean() {
        let src = "\
fn f() {
    let mut hs = Vec::new();
    hs.push(std::thread::spawn(|| {}));
    for h in hs { let _ = h.join(); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { std::thread::spawn(|| {}); }\n}";
        assert!(run(src).is_empty());
    }
}
