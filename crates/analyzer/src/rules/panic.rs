//! Rule P — panic-safety.
//!
//! In non-test library code of the hot crates, a panic takes down the
//! whole estimator (or poisons the obs registry mutex). This pass counts:
//!
//! * `.unwrap()`                       — kind `unwrap`
//! * `.expect(..)`                     — kind `expect`
//! * `panic! / unreachable! / todo! / unimplemented!` — kind `panic`
//! * bare slice indexing `expr[..]`    — kind `indexing`
//!
//! Existing debt is *budgeted* per crate and kind in `baseline.toml`
//! (the ratchet): counts may only go down. New code should return
//! `Result` (or use `.get(..)`) instead.

use super::{Finding, Rule};
use crate::lexer::{tok, TokKind};
use crate::source::{ends_expression, SourceFile};

/// Runs the panic-safety pass over a hot-crate library file.
pub fn panic_pass(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.masked(i) || t.kind != TokKind::Ident {
            // Indexing is detected on `[`, a punct; handle it separately.
            if !file.masked(i) && t.is_punct('[') && is_indexing(file, i) {
                out.push(Finding::new(
                    file,
                    Rule::Panic,
                    "indexing",
                    t.line,
                    "bare slice indexing can panic on out-of-range: prefer `.get(..)` or \
                     validate the index once at the boundary"
                        .to_string(),
                ));
            }
            continue;
        }
        let next = file.tokens.get(i + 1);
        let prev = i.checked_sub(1).map(|p| tok(&file.tokens, p));
        let dotted = matches!(prev, Some(p) if p.is_punct('.'));
        let called = matches!(next, Some(n) if n.is_punct('('));
        let banged = matches!(next, Some(n) if n.is_punct('!'));
        let (kind, msg) = if t.text == "unwrap" && dotted && called {
            (
                "unwrap",
                "`.unwrap()` panics without context: return `Result` or use \
                 `.expect(\"actionable message\")` while burning down debt",
            )
        } else if t.text == "expect" && dotted && called {
            (
                "expect",
                "`.expect(..)` still panics: prefer returning `Result`; keep only for \
                 invariants that are provably unreachable",
            )
        } else if banged
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            (
                "panic",
                "panicking macro in library code: return a typed error instead",
            )
        } else {
            continue;
        };
        out.push(Finding::new(
            file,
            Rule::Panic,
            kind,
            t.line,
            msg.to_string(),
        ));
    }
    out
}

/// True when the `[` at token `i` indexes an expression (previous token
/// ends an expression) rather than opening an array/slice literal, type,
/// attribute or pattern.
fn is_indexing(file: &SourceFile, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| tok(&file.tokens, p)) else {
        return false;
    };
    // `#[..]` attribute and `vec![..]` macro are not indexing; both are
    // excluded because `#` / `!` do not end an expression.
    ends_expression(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn kinds(src: &str) -> Vec<&'static str> {
        panic_pass(&SourceFile::new("f.rs", "roadnet", FileKind::Lib, src))
            .into_iter()
            .map(|f| f.kind)
            .collect()
    }

    #[test]
    fn unwrap_expect_macros() {
        assert_eq!(
            kinds("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); unreachable!(); }"),
            ["unwrap", "expect", "panic", "panic"]
        );
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(kinds("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }").is_empty());
    }

    #[test]
    fn indexing_detected_but_not_literals() {
        assert_eq!(kinds("fn f() { let y = xs[i]; }"), ["indexing"]);
        assert_eq!(kinds("fn f() { g()[0]; }"), ["indexing"]);
        assert!(kinds("fn f() { let a = [0u64; 4]; let b = vec![1]; }").is_empty());
        assert!(kinds("#[derive(Debug)]\nstruct S;").is_empty());
        assert!(kinds("fn f(x: &[f64]) {}").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(kinds("#[test]\nfn t() { x.unwrap(); }").is_empty());
    }
}
