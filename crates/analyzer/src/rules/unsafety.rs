//! Rule U — unsafe audit.
//!
//! The workspace is currently 100% safe Rust, and any future `unsafe`
//! (SIMD kernels, memory-mapped artifact loading) must explain why the
//! compiler cannot check it: every `unsafe` keyword requires a
//! `// SAFETY:` comment on the same line or within the three lines above.

use super::{Finding, Rule};
use crate::source::SourceFile;

/// Runs the unsafe-audit pass. Applies everywhere — an unjustified
/// `unsafe` in a test is just as unreviewable.
pub fn unsafe_pass(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in &file.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        if file.comment_near(t.line, 3, "SAFETY:") {
            continue;
        }
        out.push(Finding::new(
            file,
            Rule::UnsafeAudit,
            "missing-safety",
            t.line,
            "`unsafe` without a `// SAFETY:` comment: state the invariant that makes \
             this sound and why the compiler cannot verify it"
                .to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn run(src: &str) -> Vec<Finding> {
        unsafe_pass(&SourceFile::new("f.rs", "neural", FileKind::Lib, src))
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        assert_eq!(run("fn f(p: *const u8) -> u8 { unsafe { *p } }").len(), 1);
    }

    #[test]
    fn safety_comment_satisfies() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn safe_code_is_clean() {
        assert!(run("fn f() { let x = 1; }").is_empty());
    }
}
