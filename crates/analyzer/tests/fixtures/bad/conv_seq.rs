//! BAD fixture: Conv1d kernel/stride misuse — an even kernel in the
//! same-padded constructor (construction panics on the odd-kernel
//! assert) and a strided chain that exhausts the declared sequence:
//! 10 → (10-4)/3+1 = 3, then a kernel of 7 cannot fit 3 steps.

pub fn build(rng: &mut Rng) -> SeqSequential {
    let _panics = Conv1d::new(1, 1, 4, rng);
    // lint: seq_len(10)
    SeqSequential::new(vec![
        Box::new(Conv1d::strided(1, 4, 4, 3, rng)),
        Box::new(Conv1d::strided(4, 1, 7, 1, rng)),
    ])
}
