//! BAD fixture: an `unsafe` block with no safety comment nearby.

pub fn transmute_len(xs: &[f64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), xs.len() * 8) }
}
