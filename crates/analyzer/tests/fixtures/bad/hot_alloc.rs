//! Seeded rule-A violations: allocations reachable from the step path,
//! both through the Workspace signature root and a `// lint: hot` root.

use crate::workspace::Workspace;

fn scratch(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

fn step(ws: &mut Workspace, n: usize) -> f64 {
    let buf = scratch(n);
    let copy = buf.clone();
    copy.iter().sum()
}

// lint: hot — dyn-dispatched from the step loop
fn apply(xs: &[f64]) -> String {
    format!("{}", xs.len())
}
