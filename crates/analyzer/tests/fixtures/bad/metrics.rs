//! Seeded rule-M violations: every finding kind exactly once.

fn register(reg: &obs::Registry, started: std::time::Instant) {
    reg.counter("sim_runs").inc();
    reg.timing_histogram("step_latency_ms");
    reg.counter_with("spawns_total", &[("road", "1"), ("class", "2")])
        .inc();
    reg.gauge("uptime").set(started.elapsed().as_secs_f64());
}
