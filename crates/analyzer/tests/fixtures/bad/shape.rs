//! BAD fixture: a layer stack whose literal dimensions do not chain —
//! the first Dense produces 8 features, the second expects 16.

pub fn build(rng: &mut Rng) -> Sequential {
    Sequential::new(vec![
        Box::new(Dense::new(4, 8, rng)),
        Box::new(Activation::new(ActKind::Relu)),
        Box::new(Dense::new(16, 2, rng)),
    ])
}
