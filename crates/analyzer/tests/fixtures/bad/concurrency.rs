//! Seeded rule-C violations: every finding kind exactly once.

use std::sync::{Mutex, RwLock};

static mut TICKS: u64 = 0;

fn helper(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn held_across(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = a.lock().unwrap();
    helper(b) + *g
}

fn upgrade_in_place(l: &RwLock<u32>) -> u32 {
    let r = l.read().unwrap();
    let w = l.write().unwrap();
    *r + *w
}

fn fire_and_forget() {
    std::thread::spawn(|| {});
}
