//! BAD fixture: one of each panic-debt kind in non-test library code.

pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

pub fn tail(xs: &[u64]) -> u64 {
    xs.last().copied().expect("caller checked non-empty")
}

pub fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

pub fn forbid(mode: &str) {
    if mode == "legacy" {
        panic!("legacy mode removed");
    }
}
