//! BAD fixture: rule D violations in stable-output library code, plus an
//! allow annotation with no reason (which must NOT suppress).

use std::collections::HashMap;

pub fn tally(keys: &[String]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for k in keys {
        *m.entry(k.clone()).or_insert(0) += 1;
    }
    m
}

// lint: allow(determinism)
pub fn thread_count() -> usize {
    std::env::var("WORKERS").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}
