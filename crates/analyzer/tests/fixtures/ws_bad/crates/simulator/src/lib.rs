//! CLI fixture workspace: one seeded violation of every rule, for the
//! end-to-end exit-code and file:line reporting tests.

use std::collections::HashMap;

pub fn order(keys: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        m.insert(*k, i as u64);
    }
    m
}

pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

pub fn raw(xs: &[f64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), xs.len() * 8) }
}

pub fn net(rng: &mut Rng) -> Sequential {
    Sequential::new(vec![
        Box::new(Dense::new(4, 8, rng)),
        Box::new(Dense::new(16, 2, rng)),
    ])
}
