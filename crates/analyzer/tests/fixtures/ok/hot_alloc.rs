//! Hot-path code that reuses caller buffers: rule A stays silent, and a
//! cold builder may still allocate freely.

use crate::workspace::Workspace;

fn step(ws: &mut Workspace, xs: &[f64], out: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for (o, x) in out.iter_mut().zip(xs) {
        *o = *x * 2.0;
        acc += *o;
    }
    acc
}

fn build_scratch(n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    v.resize(n, 0.0);
    v
}
