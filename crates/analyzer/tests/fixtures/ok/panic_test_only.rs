//! OK fixture: unwrap/expect/indexing confined to test code, which rule P
//! deliberately exempts — tests are allowed to assert by panicking.

pub fn double(x: u64) -> Option<u64> {
    x.checked_mul(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles() {
        let xs = vec![1u64, 2];
        assert_eq!(double(xs[0]).unwrap(), 2);
        assert_eq!(double(xs[1]).expect("small values never overflow"), 4);
    }
}
