//! Clean registrations: every contract rule M enforces, satisfied.

fn register(reg: &obs::Registry, dt_s: f64) {
    reg.counter("sim_runs_total").inc();
    reg.timing_histogram("step_latency_seconds");
    reg.timing_gauge("ticks_per_sec");
    reg.counter_with("spawns_total", &[("class", "2"), ("road", "1")])
        .inc();
    reg.gauge("fleet_size").set(dt_s);
}
