//! Clean counterparts to `bad/concurrency.rs`: the same shapes with the
//! discipline rule C asks for — no finding from any rule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

static TICKS: AtomicU64 = AtomicU64::new(0);

fn helper(m: &Mutex<u32>) -> u32 {
    m.lock().map(|g| *g).unwrap_or(0)
}

fn sequential_locks(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = { let g = a.lock(); g.map(|v| *v).unwrap_or(0) };
    TICKS.fetch_add(1, Ordering::Relaxed);
    helper(b) + first
}

fn read_then_write(l: &RwLock<u32>) -> u32 {
    let seen = { let r = l.read(); r.map(|g| *g).unwrap_or(0) };
    let w = l.write();
    w.map(|mut g| {
        *g += seen;
        *g
    })
    .unwrap_or(seen)
}

fn run_worker() -> u64 {
    let handle = std::thread::spawn(|| 7u64);
    handle.join().unwrap_or(0)
}
