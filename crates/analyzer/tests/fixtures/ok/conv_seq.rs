//! OK fixture: strided convolutions whose kernels keep fitting the
//! declared sequence length — 24 → (24-5)/2+1 = 10 → (10-3)/1+1 = 8 —
//! with length-preserving layers in between.

pub fn build(rng: &mut Rng) -> SeqSequential {
    // lint: seq_len(24)
    SeqSequential::new(vec![
        Box::new(Conv1d::new(1, 4, 3, rng)),
        Box::new(Conv1d::strided(4, 4, 5, 2, rng)),
        Box::new(SeqActivation::new(ActKind::Relu)),
        Box::new(Conv1d::strided(4, 1, 3, 1, rng)),
    ])
}
