//! OK fixture: an `unsafe` block documented by a `// SAFETY:` comment
//! within the three lines above it.

pub fn as_bytes(xs: &[f64]) -> &[u8] {
    // SAFETY: f64 has no padding or invalid bit patterns; the length is
    // scaled by size_of::<f64>() and the lifetime is tied to `xs`.
    unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), std::mem::size_of_val(xs)) }
}
