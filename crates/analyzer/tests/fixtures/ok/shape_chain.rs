//! OK fixture: a layer stack whose declared dimensions chain, including a
//! symbolic hidden size and shape-preserving layers in between.

pub fn build(m: usize, hidden: usize, n: usize, rng: &mut Rng) -> Sequential {
    Sequential::new(vec![
        Box::new(Dense::new(m, hidden, rng)),
        Box::new(Activation::new(ActKind::Relu)),
        Box::new(Dense::new(hidden, hidden, rng)),
        Box::new(Dropout::new(0.1)),
        Box::new(Dense::new(hidden, n, rng)),
        Box::new(Softmax::new()),
    ])
}
