//! OK fixture: a wall-clock read justified by an allow annotation with a
//! reason. The suppression window covers the annotated line and the two
//! lines below it.

// lint: allow(determinism) — latency histogram is Timing-class, never
// included in stable exports.
use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> f64 {
    // lint: allow(determinism) — Timing-class measurement.
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}
