//! Ratchet fixture workspace: exactly two `unwrap` findings and nothing
//! else, so the integration tests can pin the budget arithmetic.

pub fn first_two(xs: &[u64]) -> (u64, u64) {
    let a = xs.first().copied().unwrap();
    let b = xs.get(1).copied().unwrap();
    (a, b)
}
