//! Fixture-driven self-tests: every rule catches its seeded `bad/`
//! fixture, stays silent on the corresponding `ok/` fixture, and the
//! ratchet fails the build when debt rises above the committed baseline.

use analyzer::rules::Rule;
use analyzer::source::{FileKind, SourceFile};
use analyzer::{check_file, check_workspace, CheckOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Loads a fixture as non-test library code of the protected `simulator`
/// crate, so every rule pass applies.
fn load(rel: &str) -> SourceFile {
    let path = fixture_dir().join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    SourceFile::new(rel, "simulator", FileKind::Lib, &src)
}

fn kinds(findings: &[analyzer::rules::Finding]) -> Vec<&str> {
    let mut k: Vec<&str> = findings.iter().map(|f| f.kind).collect();
    k.sort_unstable();
    k.dedup();
    k
}

// ---- ok/ fixtures stay silent -------------------------------------------

#[test]
fn ok_fixtures_produce_no_findings() {
    for rel in [
        "ok/concurrency.rs",
        "ok/conv_seq.rs",
        "ok/determinism_allowed.rs",
        "ok/hot_alloc.rs",
        "ok/metrics.rs",
        "ok/panic_test_only.rs",
        "ok/shape_chain.rs",
        "ok/unsafe_safety.rs",
    ] {
        let f = load(rel);
        let findings = check_file(&f, None);
        assert!(
            findings.is_empty(),
            "{rel} should be clean, got: {:?}",
            findings
                .iter()
                .map(|f| format!("{}:{} {}", f.file, f.line, f.kind))
                .collect::<Vec<_>>()
        );
    }
}

// ---- bad/ fixtures are caught, one per rule ------------------------------

#[test]
fn bad_determinism_is_caught_and_reasonless_allow_does_not_suppress() {
    let f = load("bad/determinism.rs");
    let findings = check_file(&f, Some(Rule::Determinism));
    assert_eq!(kinds(&findings), vec!["env-read", "hashmap"]);
    // The `// lint: allow(determinism)` with no reason sits directly above
    // the env::var call — it must not have suppressed the finding.
    assert!(findings.iter().any(|f| f.kind == "env-read"));
    // Findings carry real line numbers pointing at the violation.
    let hm = findings.iter().find(|f| f.kind == "hashmap").unwrap();
    assert!(f.snippet(hm.line).contains("HashMap"));
}

#[test]
fn bad_panic_catches_every_kind() {
    let f = load("bad/panic.rs");
    let findings = check_file(&f, Some(Rule::Panic));
    assert_eq!(
        kinds(&findings),
        vec!["expect", "indexing", "panic", "unwrap"]
    );
}

#[test]
fn bad_shape_mismatch_is_caught() {
    let f = load("bad/shape.rs");
    let findings = check_file(&f, Some(Rule::Shape));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].kind, "shape-mismatch");
    assert!(findings[0]
        .message
        .contains("panic at the first forward pass"));
}

#[test]
fn bad_conv_seq_catches_even_kernel_and_underflow() {
    let f = load("bad/conv_seq.rs");
    let findings = check_file(&f, Some(Rule::Shape));
    assert_eq!(
        kinds(&findings),
        vec!["conv-even-kernel", "conv-seq-underflow"]
    );
    let under = findings
        .iter()
        .find(|f| f.kind == "conv-seq-underflow")
        .unwrap();
    // Flagged at the layer whose kernel no longer fits, with the chained
    // remaining length in the message.
    assert!(f.snippet(under.line).contains("7"));
    assert!(under.message.contains("only `3` steps"));
}

#[test]
fn bad_unsafe_without_safety_comment_is_caught() {
    let f = load("bad/unsafety.rs");
    let findings = check_file(&f, Some(Rule::UnsafeAudit));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::UnsafeAudit);
}

#[test]
fn bad_concurrency_catches_every_kind() {
    let f = load("bad/concurrency.rs");
    let findings = check_file(&f, Some(Rule::Concurrency));
    assert_eq!(
        kinds(&findings),
        vec![
            "guard-across-lock",
            "spawn-no-join",
            "static-mut",
            "write-in-read"
        ]
    );
}

#[test]
fn bad_metrics_catches_every_kind() {
    let f = load("bad/metrics.rs");
    let findings = check_file(&f, Some(Rule::Metrics));
    assert_eq!(
        kinds(&findings),
        vec![
            "counter-name",
            "label-order",
            "stable-from-timing",
            "timing-name"
        ]
    );
}

#[test]
fn bad_hot_alloc_is_caught_through_both_roots() {
    let f = load("bad/hot_alloc.rs");
    let findings = check_file(&f, Some(Rule::Alloc));
    assert_eq!(kinds(&findings), vec!["hot-alloc"]);
    // One through the Workspace-signature root (`step` -> `scratch`), one
    // direct, one through the `// lint: hot` annotation root.
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().any(|f| f.message.contains("vec!")));
    assert!(findings.iter().any(|f| f.message.contains(".clone()")));
    assert!(findings.iter().any(|f| f.message.contains("format!")));
}

// ---- self-lint and hot-set reachability over the real workspace ----------

fn repo_root() -> PathBuf {
    analyzer::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

/// The analyzer holds itself to the protected-crate bar: zero errors and
/// zero panic-debt in its own sources (the promotion into
/// `PROTECTED_CRATES` rests on this staying true).
#[test]
fn analyzer_crate_self_lints_at_zero_debt() {
    let rep =
        analyzer::check_workspace(&repo_root(), &CheckOptions::default()).expect("self-check runs");
    let ours: Vec<String> = rep
        .errors
        .iter()
        .chain(rep.debt.iter())
        .filter(|f| f.file.contains("crates/analyzer/"))
        .map(|f| format!("{}:{} {}/{}", f.file, f.line, f.rule.code(), f.kind))
        .collect();
    assert!(ours.is_empty(), "analyzer self-lint findings: {ours:#?}");
}

/// Rule A's hot set provably covers the functions the counting-allocator
/// test (`neural/tests/zero_alloc.rs`) exercises: everything its step
/// helpers call must be reachable from the Workspace step path, or the
/// lint would go blind exactly where the invariant is enforced.
#[test]
fn hot_set_covers_the_neural_step_path() {
    let src_root = repo_root().join("crates/neural/src");
    let mut files = Vec::new();
    let mut stack = vec![src_root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("neural sources readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&src_root)
                    .expect("under src root")
                    .display()
                    .to_string();
                let src = std::fs::read_to_string(&path).expect("neural source reads");
                files.push(SourceFile::new(&rel, "neural", FileKind::Lib, &src));
            }
        }
    }
    assert!(!files.is_empty(), "no neural sources found");
    let idx = analyzer::symbols::WorkspaceIndex::build(&files);
    let hot = idx.hot_set("neural");
    // The call surface of `flat_step` / `seq_step` in zero_alloc.rs.
    for needed in [
        "forward_ws",
        "backward_ws",
        "mse_into",
        "mse_seq_into",
        "begin_step",
        "apply",
        "visit_params",
        "zero_grad",
        "take",
        "give",
        "take3",
        "give3",
    ] {
        let covered = hot
            .iter()
            .any(|q| q == needed || q.ends_with(&format!("::{needed}")));
        assert!(covered, "`{needed}` missing from hot set: {hot:#?}");
    }
}

// ---- ratchet semantics over a real workspace tree ------------------------

#[test]
fn ratchet_fails_above_baseline_and_passes_at_baseline() {
    let root = fixture_dir().join("ws_ratchet");

    let tight = CheckOptions {
        baseline: Some(root.join("baseline_tight.toml")),
        ..Default::default()
    };
    let rep = check_workspace(&root, &tight).expect("check runs");
    assert_eq!(rep.exit_code(), 1, "2 unwraps over a budget of 1 must fail");
    assert_eq!(rep.over_budget.len(), 1);
    assert_eq!(rep.over_budget[0].count, 2);
    assert_eq!(rep.over_budget[0].budget, 1);

    let exact = CheckOptions {
        baseline: Some(root.join("baseline_exact.toml")),
        ..Default::default()
    };
    let rep = check_workspace(&root, &exact).expect("check runs");
    assert_eq!(
        rep.exit_code(),
        0,
        "2 unwraps within a budget of 2 must pass"
    );
    assert!(rep.over_budget.is_empty());
}

#[test]
fn missing_baseline_means_zero_budget() {
    let root = fixture_dir().join("ws_ratchet");
    let rep = check_workspace(&root, &CheckOptions::default()).expect("check runs");
    assert_eq!(
        rep.exit_code(),
        1,
        "no baseline file = zero budget everywhere"
    );
}

// ---- CLI end-to-end: exit codes and file:line output ---------------------

#[test]
fn cli_exits_nonzero_with_file_line_on_seeded_violations() {
    let root = fixture_dir().join("ws_bad");
    let out = Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("error[D/hashmap]"),
        "determinism error: {text}"
    );
    assert!(text.contains("error[U/"), "unsafe error: {text}");
    assert!(
        text.contains("error[S/shape-mismatch]"),
        "shape error: {text}"
    );
    assert!(text.contains("error[P/ratchet]"), "ratchet error: {text}");
    assert!(
        text.contains("crates/simulator/src/lib.rs:"),
        "file:line locations: {text}"
    );
    assert!(text.contains("FAIL"));
}

#[test]
fn cli_json_is_parseable_and_marks_failure() {
    let root = fixture_dir().join("ws_bad");
    let out = Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["check", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": false"));
    assert!(text.contains("\"rule\": \"D\""));
    assert!(text.contains("\"line\": "));
}

#[test]
fn cli_single_rule_filter_narrows_findings() {
    let root = fixture_dir().join("ws_bad");
    let out = Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["check", "--rule", "S", "--root"])
        .arg(&root)
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[S/shape-mismatch]"));
    assert!(!text.contains("error[D/"), "rule filter leaked D: {text}");
    assert!(!text.contains("error[P/"), "rule filter leaked P: {text}");
}

#[test]
fn cli_bad_usage_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["check", "--rule", "Z"])
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(2));
}
