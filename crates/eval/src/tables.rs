//! Fixed-width table rendering in the paper's layout.

use crate::harness::{improvement, MethodResult};

/// Renders one dataset's comparison block (method rows x TOD/vol/speed
/// columns) with the paper's "Improve" footer.
pub fn render_comparison(title: &str, results: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}\n",
        "Method", "TOD", "vol", "speed", "time(s)"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>10.2} {:>10.3} {:>10.2}\n",
            r.name, r.rmse.tod, r.rmse.volume, r.rmse.speed, r.seconds
        ));
    }
    if let Some((t, v, s)) = improvement(results) {
        out.push_str(&format!(
            "{:<10} {:>9.1}% {:>9.1}% {:>9.1}%\n",
            "Improve",
            t * 100.0,
            v * 100.0,
            s * 100.0
        ));
    }
    out
}

/// Renders several dataset blocks side by side, one after the other.
pub fn render_multi(blocks: &[(String, Vec<MethodResult>)]) -> String {
    blocks
        .iter()
        .map(|(title, results)| render_comparison(title, results))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a simple two-column series (Figure-style data dump).
pub fn render_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("== {title} ==\n{x_label:>12} {y_label:>14}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>12.2} {y:>14.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RmseTriple;

    fn results() -> Vec<MethodResult> {
        ["Gravity", "LSTM", "OVS"]
            .iter()
            .enumerate()
            .map(|(i, name)| MethodResult {
                name: name.to_string(),
                rmse: RmseTriple {
                    tod: 30.0 - 10.0 * i as f64,
                    volume: 40.0 - 10.0 * i as f64,
                    speed: 2.0 - 0.5 * i as f64,
                },
                seconds: i as f64,
            })
            .collect()
    }

    #[test]
    fn comparison_contains_all_rows_and_improve() {
        let s = render_comparison("Hangzhou", &results());
        assert!(s.contains("Hangzhou"));
        assert!(s.contains("Gravity"));
        assert!(s.contains("OVS"));
        assert!(s.contains("Improve"));
        // OVS 10 vs best baseline 20 -> 50% improvement
        assert!(s.contains("50.0%"), "{s}");
    }

    #[test]
    fn series_renders_points() {
        let s = render_series("Fig 9", "intersections", "seconds", &[(10.0, 1.5)]);
        assert!(s.contains("Fig 9"));
        assert!(s.contains("10.00"));
        assert!(s.contains("1.5000"));
    }

    #[test]
    fn multi_joins_blocks() {
        let blocks = vec![("A".to_string(), results()), ("B".to_string(), results())];
        let s = render_multi(&blocks);
        assert!(s.contains("== A ==") && s.contains("== B =="));
    }
}
