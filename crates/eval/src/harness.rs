//! The estimator-comparison harness.

use crate::metrics::{evaluate_tod, RmseTriple};
use baselines::all_baselines;
use datagen::Dataset;
use ovs_core::trainer::OvsEstimator;
use ovs_core::{EstimatorInput, OvsConfig, TodEstimator};
use roadnet::{Result, TodTensor};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Owned view of a dataset's auxiliary estimator inputs. The training
/// corpus itself is borrowed straight from the dataset — `Dataset::train`
/// stores the shared [`roadnet::TrainTriple`] type, so no conversion is
/// needed.
pub struct DatasetInput {
    census: Vec<f64>,
}

impl DatasetInput {
    /// Captures the auxiliary slices of a dataset in estimator form.
    pub fn new(ds: &Dataset) -> Self {
        Self {
            census: ds.census.as_slice().to_vec(),
        }
    }

    /// Borrowed estimator input. `with_aux` exposes census and camera
    /// data (RQ2); without it estimators see only speed.
    pub fn input<'a>(&'a self, ds: &'a Dataset, with_aux: bool) -> EstimatorInput<'a> {
        let mut b = EstimatorInput::builder(&ds.net, &ds.ods)
            .interval_s(ds.sim_config.interval_s)
            .sim_seed(ds.sim_config.seed)
            .train(&ds.train)
            .observed_speed(&ds.observed_speed);
        if with_aux {
            b = b
                .census(&self.census)
                .cameras(&ds.cameras.links, &ds.cameras.volumes);
        }
        b.build()
    }
}

/// One method's scores on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name as printed in the tables.
    pub name: String,
    /// The three RMSE metrics.
    pub rmse: RmseTriple,
    /// Wall-clock seconds of the estimate call (Table VII / Fig 9).
    pub seconds: f64,
}

/// Counter: completed estimator runs through the harness.
pub const EVAL_RUNS: &str = "eval_runs_total";
/// Timing gauge (per `method` label): wall-clock of the estimate call.
pub const EVAL_SECONDS: &str = "eval_seconds";
/// Stable gauges (per `method` label): the three RMSE residuals.
pub const EVAL_RMSE_TOD: &str = "eval_rmse_tod";
/// See [`EVAL_RMSE_TOD`].
pub const EVAL_RMSE_VOLUME: &str = "eval_rmse_volume";
/// See [`EVAL_RMSE_TOD`].
pub const EVAL_RMSE_SPEED: &str = "eval_rmse_speed";

/// Runs one estimator on one dataset, timing the estimate and evaluating
/// it per §V-G. Also returns the recovered TOD for downstream plots.
/// Records into the process-global metrics registry.
pub fn run_method(
    est: &mut dyn TodEstimator,
    ds: &Dataset,
    input: &EstimatorInput<'_>,
) -> Result<(MethodResult, TodTensor)> {
    run_method_obs(obs::global(), est, ds, input)
}

/// [`run_method`] recording into a caller-supplied registry: per-method
/// wall-clock (timing gauge `eval_seconds{method=...}`) and metric
/// residuals (stable gauges `eval_rmse_{tod,volume,speed}{method=...}`).
/// The `method` label keeps each gauge single-writer — the determinism
/// requirement for stable gauges — even when a panel runs in parallel.
pub fn run_method_obs(
    registry: &obs::Registry,
    est: &mut dyn TodEstimator,
    ds: &Dataset,
    input: &EstimatorInput<'_>,
) -> Result<(MethodResult, TodTensor)> {
    let start = Instant::now();
    let tod = est.estimate(input)?;
    let seconds = start.elapsed().as_secs_f64();
    let rmse = evaluate_tod(ds, &tod)?;
    let name = est.name().to_string();
    let labels: &[(&str, &str)] = &[("method", name.as_str())];
    registry.counter(EVAL_RUNS).inc();
    registry
        .timing_gauge(&obs::Registry::key(EVAL_SECONDS, labels))
        .set(seconds);
    registry.gauge_with(EVAL_RMSE_TOD, labels).set(rmse.tod);
    registry
        .gauge_with(EVAL_RMSE_VOLUME, labels)
        .set(rmse.volume);
    registry.gauge_with(EVAL_RMSE_SPEED, labels).set(rmse.speed);
    Ok((
        MethodResult {
            name,
            rmse,
            seconds,
        },
        tod,
    ))
}

/// The paper's method line-up: the six baselines followed by OVS.
pub fn default_methods(ovs_cfg: OvsConfig, seed: u64) -> Vec<Box<dyn TodEstimator>> {
    let mut methods = all_baselines(seed);
    methods.push(Box::new(OvsEstimator::new(ovs_cfg)));
    methods
}

/// Runs a full comparison (all baselines + OVS) on one dataset. Methods
/// see auxiliary data only when `with_aux` is set.
///
/// The panel runs in parallel — every method is an independent job on the
/// current rayon pool (`TodEstimator: Send` makes the boxed methods
/// movable across threads). Each job times its own `estimate` call, so
/// the per-method `seconds` in the results measure the method alone, not
/// the panel. Results come back in the paper's method order regardless of
/// completion order.
pub fn compare(
    ds: &Dataset,
    ovs_cfg: OvsConfig,
    seed: u64,
    with_aux: bool,
) -> Result<Vec<MethodResult>> {
    compare_methods(ds, default_methods(ovs_cfg, seed), with_aux)
}

/// Like [`compare`], but over a caller-supplied method line-up instead of
/// the default panel — the hook that lets experiment binaries inject
/// checkpoint-backed estimators (e.g. an OVS warm-started from a saved
/// artifact) without rebuilding the harness.
pub fn compare_methods(
    ds: &Dataset,
    mut methods: Vec<Box<dyn TodEstimator>>,
    with_aux: bool,
) -> Result<Vec<MethodResult>> {
    use rayon::prelude::*;
    let owned = DatasetInput::new(ds);
    let input = owned.input(ds, with_aux);
    methods
        .par_iter_mut()
        .map(|method| run_method(method.as_mut(), ds, &input).map(|(res, _)| res))
        .collect()
}

/// Runs [`compare`] over several datasets in parallel (one rayon task per
/// dataset; estimators are constructed inside each task, so nothing needs
/// to be `Send` across the boundary except the datasets themselves).
pub fn compare_datasets_parallel(
    datasets: &[Dataset],
    ovs_cfg: &OvsConfig,
    seed: u64,
    with_aux: bool,
) -> Result<Vec<(String, Vec<MethodResult>)>> {
    use rayon::prelude::*;
    datasets
        .par_iter()
        .map(|ds| {
            let results = compare(ds, ovs_cfg.clone(), seed, with_aux)?;
            Ok((ds.name.clone(), results))
        })
        .collect()
}

/// Aggregate of one method's scores over several dataset draws.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateResult {
    /// Method name.
    pub name: String,
    /// Per-metric means.
    pub mean: RmseTriple,
    /// Per-metric sample standard deviations.
    pub std: RmseTriple,
    /// Number of draws aggregated.
    pub runs: usize,
}

/// Runs the full comparison over several independently drawn datasets
/// (one per seed, built by `make_dataset`, in parallel) and aggregates
/// each method's metrics into mean +- std. This is the repetition layer
/// the paper's single-number tables lack.
pub fn compare_multi_seed(
    make_dataset: impl Fn(u64) -> Result<Dataset> + Sync,
    seeds: &[u64],
    ovs_cfg: &OvsConfig,
    with_aux: bool,
) -> Result<Vec<AggregateResult>> {
    use rayon::prelude::*;
    let per_seed: Vec<Vec<MethodResult>> = seeds
        .par_iter()
        .map(|&seed| {
            let ds = make_dataset(seed)?;
            compare(&ds, ovs_cfg.clone().with_seed(seed), seed, with_aux)
        })
        .collect::<Result<_>>()?;
    let Some(first) = per_seed.first() else {
        return Ok(Vec::new());
    };
    let runs = per_seed.len();
    let agg = (0..first.len())
        .map(|mi| {
            let name = first[mi].name.clone();
            let collect = |f: fn(&RmseTriple) -> f64| -> (f64, f64) {
                let vals: Vec<f64> = per_seed.iter().map(|r| f(&r[mi].rmse)).collect();
                let mean = vals.iter().sum::<f64>() / runs as f64;
                let var = if runs > 1 {
                    vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (runs - 1) as f64
                } else {
                    0.0
                };
                (mean, var.sqrt())
            };
            let (t_m, t_s) = collect(|r| r.tod);
            let (v_m, v_s) = collect(|r| r.volume);
            let (s_m, s_s) = collect(|r| r.speed);
            AggregateResult {
                name,
                mean: RmseTriple {
                    tod: t_m,
                    volume: v_m,
                    speed: s_m,
                },
                std: RmseTriple {
                    tod: t_s,
                    volume: v_s,
                    speed: s_s,
                },
                runs,
            }
        })
        .collect();
    Ok(agg)
}

/// Relative improvement of the last row (OVS) over the best other row,
/// per metric: `(tod, volume, speed)`, as fractions (0.3 = 30 %).
pub fn improvement(results: &[MethodResult]) -> Option<(f64, f64, f64)> {
    let (ovs, rest) = results.split_last()?;
    if rest.is_empty() {
        return None;
    }
    let best = |f: fn(&RmseTriple) -> f64| -> f64 {
        rest.iter()
            .map(|r| f(&r.rmse))
            .fold(f64::INFINITY, f64::min)
    };
    let rel = |best: f64, ours: f64| {
        if best > 0.0 {
            (best - ours) / best
        } else {
            0.0
        }
    };
    Some((
        rel(best(|r| r.tod), ovs.rmse.tod),
        rel(best(|r| r.volume), ovs.rmse.volume),
        rel(best(|r| r.speed), ovs.rmse.speed),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dataset::DatasetSpec;
    use datagen::TodPattern;

    fn tiny() -> Dataset {
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.1,
            seed: 4,
        };
        Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
    }

    #[test]
    fn run_method_times_and_scores() {
        let ds = tiny();
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, false);
        let mut grav = baselines::GravityEstimator::new();
        let (res, tod) = run_method(&mut grav, &ds, &input).unwrap();
        assert_eq!(res.name, "Gravity");
        assert!(res.seconds >= 0.0);
        assert!(res.rmse.is_finite());
        assert_eq!(tod.rows(), ds.n_od());
    }

    #[test]
    fn run_method_obs_records_timings_and_residuals() {
        let ds = tiny();
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, false);
        let reg = obs::Registry::new();
        let mut grav = baselines::GravityEstimator::new();
        let (res, _) = run_method_obs(&reg, &mut grav, &ds, &input).unwrap();
        assert_eq!(reg.counter(EVAL_RUNS).get(), 1);
        let labels: &[(&str, &str)] = &[("method", "Gravity")];
        assert_eq!(reg.gauge_with(EVAL_RMSE_TOD, labels).get(), res.rmse.tod);
        assert_eq!(
            reg.gauge_with(EVAL_RMSE_SPEED, labels).get(),
            res.rmse.speed
        );
        let json = reg.to_json(true);
        // The label's quotes arrive JSON-escaped inside the name string.
        assert!(
            json.contains("eval_seconds{method=\\\"Gravity\\\"}"),
            "{json}"
        );
        // Wall-clock never leaks into the stable snapshot.
        assert!(!reg.to_json_stable().contains("eval_seconds"));
    }

    #[test]
    fn input_aux_toggle() {
        let ds = tiny();
        let owned = DatasetInput::new(&ds);
        assert!(owned.input(&ds, false).census_totals.is_none());
        assert!(owned.input(&ds, true).census_totals.is_some());
        assert!(owned.input(&ds, true).cameras.is_some());
    }

    #[test]
    fn default_lineup_matches_paper_order() {
        let names: Vec<String> = default_methods(OvsConfig::tiny(), 0)
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(
            names,
            ["Gravity", "Genetic", "GLS", "EM", "NN", "LSTM", "OVS"]
        );
    }

    #[test]
    fn multi_seed_aggregation_is_consistent() {
        let base = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.1,
            seed: 0,
        };
        let agg = compare_multi_seed(
            |seed| {
                Dataset::synthetic(
                    TodPattern::Random,
                    &DatasetSpec {
                        seed,
                        ..base.clone()
                    },
                )
            },
            &[1, 2],
            &OvsConfig::tiny(),
            false,
        )
        .unwrap();
        assert_eq!(agg.len(), 7);
        for a in &agg {
            assert_eq!(a.runs, 2);
            assert!(a.mean.is_finite());
            assert!(a.std.tod >= 0.0);
        }
        // different seeds yield different draws, so at least one method
        // must show nonzero spread
        assert!(agg.iter().any(|a| a.std.tod > 0.0));
    }

    #[test]
    fn improvement_computation() {
        let mk = |name: &str, tod: f64| MethodResult {
            name: name.into(),
            rmse: RmseTriple {
                tod,
                volume: tod * 2.0,
                speed: tod / 10.0,
            },
            seconds: 0.0,
        };
        let results = vec![mk("A", 20.0), mk("B", 10.0), mk("OVS", 5.0)];
        let (t, v, s) = improvement(&results).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!((v - 0.5).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
        assert!(improvement(&[mk("only", 1.0)]).is_none());
    }
}
