//! The paper's metrics (§V-G).
//!
//! All three RMSEs share the same form: mean over intervals of the
//! per-interval root-mean-square error over rows (OD pairs or links).
//! The tensor type already implements that formula
//! ([`roadnet::TodTensor::rmse`]); this module adds the full §V-G
//! procedure: simulate the recovered TOD and compare all three levels.

use datagen::dataset::simulate;
use datagen::Dataset;
use roadnet::{LinkTensor, Result, RoadnetError, TodTensor};
use serde::{Deserialize, Serialize};

/// The three RMSE numbers of one table cell group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmseTriple {
    /// RMSE of the recovered TOD against the hidden ground truth.
    pub tod: f64,
    /// RMSE of the re-simulated volumes against the ground-truth volumes.
    pub volume: f64,
    /// RMSE of the re-simulated speeds against the observed speeds.
    pub speed: f64,
}

impl RmseTriple {
    /// All three errors are finite.
    pub fn is_finite(&self) -> bool {
        self.tod.is_finite() && self.volume.is_finite() && self.speed.is_finite()
    }
}

/// Evaluates a recovered TOD tensor against a dataset: re-simulates it and
/// reports the three RMSEs (§V-G: groundtruth volume and speed are the
/// simulator outputs of the groundtruth TOD).
pub fn evaluate_tod(ds: &Dataset, recovered: &TodTensor) -> Result<RmseTriple> {
    let tod = ds.groundtruth_tod.rmse(recovered)?;
    let out = simulate(&ds.net, &ds.ods, &ds.sim_config, recovered)?;
    let volume = ds.groundtruth_volume.rmse(&out.volume)?;
    let speed = ds.observed_speed.rmse(&out.speed)?;
    Ok(RmseTriple { tod, volume, speed })
}

/// Masked variant of the paper's speed RMSE: cells whose mask entry is
/// `false` (dropped-out sensors) are excluded from both the numerator and
/// the denominator, instead of entering as zero-filled readings that
/// would swamp the metric. The mask is row-major `links x t`, matching
/// the [`LinkTensor`] layout. Intervals with no observed cell contribute
/// nothing; a fully masked-out tensor scores `0.0`.
pub fn masked_speed_rmse(
    observed: &LinkTensor,
    simulated: &LinkTensor,
    mask: &[bool],
) -> Result<f64> {
    let (rows, t) = (observed.rows(), observed.num_intervals());
    if simulated.rows() != rows || simulated.num_intervals() != t {
        return Err(RoadnetError::ShapeMismatch {
            expected: format!("{rows} x {t}"),
            actual: format!("{} x {}", simulated.rows(), simulated.num_intervals()),
        });
    }
    if mask.len() != rows * t {
        return Err(RoadnetError::ShapeMismatch {
            expected: format!("mask of {} cells", rows * t),
            actual: format!("mask of {} cells", mask.len()),
        });
    }
    let (a, b) = (observed.as_slice(), simulated.as_slice());
    let mut acc = 0.0;
    let mut used_intervals = 0usize;
    for ti in 0..t {
        let mut sq = 0.0;
        let mut n = 0usize;
        for r in 0..rows {
            let idx = r * t + ti;
            if mask[idx] {
                let d = a[idx] - b[idx];
                sq += d * d;
                n += 1;
            }
        }
        if n > 0 {
            acc += (sq / n as f64).sqrt();
            used_intervals += 1;
        }
    }
    Ok(if used_intervals == 0 {
        0.0
    } else {
        acc / used_intervals as f64
    })
}

/// [`evaluate_tod`] under partial sensor coverage: the TOD and volume
/// RMSEs are unchanged (ground truth is fully known in simulation), but
/// the speed RMSE is computed only over the cells the mask marks as
/// observed — the degradation-report metric of the fault harness.
pub fn evaluate_tod_masked(
    ds: &Dataset,
    recovered: &TodTensor,
    mask: &[bool],
) -> Result<RmseTriple> {
    let tod = ds.groundtruth_tod.rmse(recovered)?;
    let out = simulate(&ds.net, &ds.ods, &ds.sim_config, recovered)?;
    let volume = ds.groundtruth_volume.rmse(&out.volume)?;
    let speed = masked_speed_rmse(&ds.observed_speed, &out.speed, mask)?;
    Ok(RmseTriple { tod, volume, speed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dataset::DatasetSpec;
    use datagen::TodPattern;

    fn ds() -> Dataset {
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 2,
            demand_scale: 0.1,
            seed: 2,
        };
        Dataset::synthetic(TodPattern::Random, &spec).unwrap()
    }

    #[test]
    fn groundtruth_scores_zero_everywhere() {
        let ds = ds();
        let r = evaluate_tod(&ds, &ds.groundtruth_tod).unwrap();
        assert_eq!(r.tod, 0.0);
        assert_eq!(r.volume, 0.0);
        assert_eq!(r.speed, 0.0);
        assert!(r.is_finite());
    }

    #[test]
    fn worse_tod_scores_worse() {
        let ds = ds();
        let zero = TodTensor::zeros(ds.n_od(), 3);
        let r = evaluate_tod(&ds, &zero).unwrap();
        assert!(r.tod > 0.0);
        assert!(r.speed > 0.0, "empty network must mis-predict speeds");
    }

    #[test]
    fn masked_rmse_excludes_dropped_cells() {
        let obs = LinkTensor::from_data(2, 2, vec![10.0, 10.0, 20.0, 20.0]).unwrap();
        // Link 1 is badly mis-predicted.
        let sim = LinkTensor::from_data(2, 2, vec![10.0, 10.0, 0.0, 0.0]).unwrap();
        let full = vec![true; 4];
        let r_full = masked_speed_rmse(&obs, &sim, &full).unwrap();
        assert!(r_full > 0.0);
        // All-observed mask reproduces the plain metric exactly.
        assert_eq!(r_full, obs.rmse(&sim).unwrap());
        // Masking the bad link out leaves a perfect score: excluded, not
        // zero-filled.
        let drop_link1 = vec![true, true, false, false];
        assert_eq!(masked_speed_rmse(&obs, &sim, &drop_link1).unwrap(), 0.0);
        // Nothing observed at all degrades to 0, not NaN.
        assert_eq!(masked_speed_rmse(&obs, &sim, &[false; 4]).unwrap(), 0.0);
        // Shape errors are typed.
        assert!(masked_speed_rmse(&obs, &sim, &[true; 3]).is_err());
        let short = LinkTensor::zeros(2, 1);
        assert!(masked_speed_rmse(&obs, &short, &full).is_err());
    }

    #[test]
    fn masked_evaluation_scores_groundtruth_zero_under_dropout() {
        let ds = ds();
        let cells = ds.observed_speed.rows() * ds.observed_speed.num_intervals();
        // Drop every third cell.
        let mask: Vec<bool> = (0..cells).map(|i| i % 3 != 0).collect();
        let r = evaluate_tod_masked(&ds, &ds.groundtruth_tod, &mask).unwrap();
        assert_eq!(r.speed, 0.0);
        assert_eq!(r.tod, 0.0);
        // And a wrong TOD still scores worse than truth on masked speed.
        let zero = TodTensor::zeros(ds.n_od(), 3);
        let r_zero = evaluate_tod_masked(&ds, &zero, &mask).unwrap();
        assert!(r_zero.speed > 0.0);
    }

    #[test]
    fn slightly_perturbed_tod_scores_between() {
        let ds = ds();
        let mut near = ds.groundtruth_tod.clone();
        near.map_inplace(|v| v * 1.05);
        let r_near = evaluate_tod(&ds, &near).unwrap();
        let r_zero = evaluate_tod(&ds, &TodTensor::zeros(ds.n_od(), 3)).unwrap();
        assert!(r_near.tod < r_zero.tod);
        assert!(r_near.tod > 0.0);
    }
}
