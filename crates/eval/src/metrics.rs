//! The paper's metrics (§V-G).
//!
//! All three RMSEs share the same form: mean over intervals of the
//! per-interval root-mean-square error over rows (OD pairs or links).
//! The tensor type already implements that formula
//! ([`roadnet::TodTensor::rmse`]); this module adds the full §V-G
//! procedure: simulate the recovered TOD and compare all three levels.

use datagen::dataset::simulate;
use datagen::Dataset;
use roadnet::{Result, TodTensor};
use serde::{Deserialize, Serialize};

/// The three RMSE numbers of one table cell group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmseTriple {
    /// RMSE of the recovered TOD against the hidden ground truth.
    pub tod: f64,
    /// RMSE of the re-simulated volumes against the ground-truth volumes.
    pub volume: f64,
    /// RMSE of the re-simulated speeds against the observed speeds.
    pub speed: f64,
}

impl RmseTriple {
    /// All three errors are finite.
    pub fn is_finite(&self) -> bool {
        self.tod.is_finite() && self.volume.is_finite() && self.speed.is_finite()
    }
}

/// Evaluates a recovered TOD tensor against a dataset: re-simulates it and
/// reports the three RMSEs (§V-G: groundtruth volume and speed are the
/// simulator outputs of the groundtruth TOD).
pub fn evaluate_tod(ds: &Dataset, recovered: &TodTensor) -> Result<RmseTriple> {
    let tod = ds.groundtruth_tod.rmse(recovered)?;
    let out = simulate(&ds.net, &ds.ods, &ds.sim_config, recovered)?;
    let volume = ds.groundtruth_volume.rmse(&out.volume)?;
    let speed = ds.observed_speed.rmse(&out.speed)?;
    Ok(RmseTriple { tod, volume, speed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dataset::DatasetSpec;
    use datagen::TodPattern;

    fn ds() -> Dataset {
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 2,
            demand_scale: 0.1,
            seed: 2,
        };
        Dataset::synthetic(TodPattern::Random, &spec).unwrap()
    }

    #[test]
    fn groundtruth_scores_zero_everywhere() {
        let ds = ds();
        let r = evaluate_tod(&ds, &ds.groundtruth_tod).unwrap();
        assert_eq!(r.tod, 0.0);
        assert_eq!(r.volume, 0.0);
        assert_eq!(r.speed, 0.0);
        assert!(r.is_finite());
    }

    #[test]
    fn worse_tod_scores_worse() {
        let ds = ds();
        let zero = TodTensor::zeros(ds.n_od(), 3);
        let r = evaluate_tod(&ds, &zero).unwrap();
        assert!(r.tod > 0.0);
        assert!(r.speed > 0.0, "empty network must mis-predict speeds");
    }

    #[test]
    fn slightly_perturbed_tod_scores_between() {
        let ds = ds();
        let mut near = ds.groundtruth_tod.clone();
        near.map_inplace(|v| v * 1.05);
        let r_near = evaluate_tod(&ds, &near).unwrap();
        let r_zero = evaluate_tod(&ds, &TodTensor::zeros(ds.n_od(), 3)).unwrap();
        assert!(r_near.tod < r_zero.tod);
        assert!(r_near.tod > 0.0);
    }
}
