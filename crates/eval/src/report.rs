//! JSON result records for EXPERIMENTS.md bookkeeping.
//!
//! Every experiment binary writes one [`ExperimentReport`] under
//! `results/` so the paper-vs-measured tables in EXPERIMENTS.md can be
//! regenerated mechanically.

use crate::harness::MethodResult;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One experiment's machine-readable output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "table06" or "fig09".
    pub id: String,
    /// Human title, e.g. "Table VI: real datasets".
    pub title: String,
    /// Per-dataset method results (empty for series experiments).
    #[serde(default)]
    pub comparisons: Vec<(String, Vec<MethodResult>)>,
    /// Named series, e.g. recovered TOD curves or scalability points.
    #[serde(default)]
    pub series: Vec<NamedSeries>,
    /// Free-form notes (profile used, caveats).
    #[serde(default)]
    pub notes: String,
}

/// A named `(x, y)` series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedSeries {
    /// Series label.
    pub name: String,
    /// Points in order.
    pub points: Vec<(f64, f64)>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            comparisons: Vec::new(),
            series: Vec::new(),
            notes: String::new(),
        }
    }

    /// Writes the report as pretty JSON under `dir/<id>.json`, creating
    /// the directory when needed.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RmseTriple;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = ExperimentReport::new("table06", "Table VI");
        r.comparisons.push((
            "Hangzhou".into(),
            vec![MethodResult {
                name: "OVS".into(),
                rmse: RmseTriple {
                    tod: 1.0,
                    volume: 2.0,
                    speed: 0.5,
                },
                seconds: 3.25,
            }],
        ));
        r.series.push(NamedSeries {
            name: "fit".into(),
            points: vec![(0.0, 1.0), (1.0, 0.5)],
        });
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "table06");
        assert_eq!(back.comparisons[0].1[0].rmse.speed, 0.5);
        assert_eq!(back.series[0].points.len(), 2);
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("cityod-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let r = ExperimentReport::new("t", "T");
        let path = r.write_json(&dir).unwrap();
        assert!(path.exists());
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"id\": \"t\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
