//! # eval — the paper's evaluation harness
//!
//! Implements §V-G's metrics and the comparison pipeline every experiment
//! binary uses:
//!
//! * [`metrics`] — `RMSE_TOD`, `RMSE_volume`, `RMSE_speed`, computed by
//!   feeding the recovered TOD back through the simulator exactly as the
//!   paper does ("We feed the recovered TOD tensors into the simulator and
//!   get the volume and speed tensors");
//! * [`harness`] — run any set of [`ovs_core::TodEstimator`]s on a
//!   [`datagen::Dataset`], with wall-clock timing (Table VII / Fig 9);
//! * [`tables`] — fixed-width table rendering matching the paper's layout,
//!   including the "Improve" row (relative improvement of OVS over the
//!   best baseline);
//! * [`report`] — serde-serialisable result records the experiment
//!   binaries dump as JSON for EXPERIMENTS.md bookkeeping.

#![warn(missing_docs)]

pub mod harness;
pub mod metrics;
pub mod report;
pub mod tables;

pub use harness::{
    compare, compare_multi_seed, default_methods, AggregateResult, DatasetInput, MethodResult,
};
pub use metrics::{evaluate_tod, evaluate_tod_masked, masked_speed_rmse, RmseTriple};
