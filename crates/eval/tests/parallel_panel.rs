//! Thread-safety audit and behavioural checks for the parallel
//! evaluation layer: the estimator panel fans one rayon job per method,
//! so every type that crosses that boundary must be `Send` (and the
//! shared borrows `Sync`). The compile-time assertions below are the
//! audit; the tests check the panel itself.

use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use eval::harness::{compare, DatasetInput};
use ovs_core::{EstimatorInput, OvsConfig, TodEstimator};
use roadnet::Parallelism;

// --- Send + Sync audit (fails to compile if a field regresses) ----------

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn parallel_boundary_types_are_thread_safe() {
    assert_send::<roadnet::RoadNetwork>();
    assert_sync::<roadnet::RoadNetwork>();
    assert_send::<Dataset>();
    assert_sync::<Dataset>();
    assert_send::<simulator::Simulation<'_>>();
    assert_send::<datagen::TrainingSample>();
    assert_sync::<datagen::TrainingSample>();
    assert_sync::<EstimatorInput<'_>>();
    // Boxed methods move into rayon jobs; Send is a supertrait of the
    // estimator contract.
    assert_send::<Box<dyn TodEstimator>>();
}

// --- behaviour ----------------------------------------------------------

fn tiny() -> Dataset {
    let spec = DatasetSpec {
        t: 3,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.1,
        seed: 4,
    };
    Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
}

#[test]
fn panel_results_keep_paper_order_under_parallelism() {
    let ds = tiny();
    let results = Parallelism::Threads(4)
        .run(|| compare(&ds, OvsConfig::tiny(), 4, false))
        .unwrap();
    let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        names,
        ["Gravity", "Genetic", "GLS", "EM", "NN", "LSTM", "OVS"]
    );
    for r in &results {
        assert!(r.rmse.is_finite(), "{}", r.name);
        assert!(r.seconds >= 0.0, "{}", r.name);
    }
}

#[test]
fn panel_scores_match_between_serial_and_parallel() {
    // Deterministic estimators must score identically whether the panel
    // runs on one worker or four.
    let ds = tiny();
    let serial = Parallelism::Serial
        .run(|| compare(&ds, OvsConfig::tiny(), 4, false))
        .unwrap();
    let parallel = Parallelism::Threads(4)
        .run(|| compare(&ds, OvsConfig::tiny(), 4, false))
        .unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.rmse.tod.to_bits(), p.rmse.tod.to_bits(), "{}", s.name);
        assert_eq!(
            s.rmse.volume.to_bits(),
            p.rmse.volume.to_bits(),
            "{}",
            s.name
        );
        assert_eq!(s.rmse.speed.to_bits(), p.rmse.speed.to_bits(), "{}", s.name);
    }
}

#[test]
fn builder_input_carries_aux_only_when_asked() {
    let ds = tiny();
    let owned = DatasetInput::new(&ds);
    let plain = owned.input(&ds, false);
    assert!(plain.census_totals.is_none());
    assert!(plain.cameras.is_none());
    let aux = owned.input(&ds, true);
    assert!(aux.census_totals.is_some());
    assert!(aux.cameras.is_some());
    // The corpus is borrowed from the dataset, not copied.
    assert_eq!(aux.train.len(), ds.train.len());
    assert!(std::ptr::eq(aux.train.as_ptr(), ds.train.as_ptr()));
}
