//! # ovs-core — the OVS model (the paper's contribution)
//!
//! OVS (Origin-destination-Volume-Speed) recovers the city-wide temporal
//! origin-destination tensor from road-segment speed observations by
//! modelling the generation chain `TOD -> volume -> speed` with three
//! learned modules (paper §IV, Figure 3):
//!
//! 1. [`tod_gen::TodGeneration`] — maps fixed Gaussian seeds through two
//!    sigmoid FC layers to a TOD tensor (Eqs. 1-2);
//! 2. [`tod2v::TodVolumeMapping`] — maps TOD to link volumes: an OD-Route
//!    FC stack (Eq. 3), a two-layer 1x3 convolution producing a traffic
//!    embedding (Eqs. 5-7), and a **dynamic attention** over lookback lags
//!    that smears each route's departures onto each downstream link
//!    according to current congestion (Eqs. 4, 8, Figure 5);
//! 3. [`v2s::VolumeSpeedMapping`] — two LSTMs plus an FC head, shared
//!    across links (Eqs. 9-11).
//!
//! Training follows the paper's pipeline (§V-E, Figure 8): stage 1 fits
//! V2S on generated (volume, speed) pairs; stage 2 fits TOD2V through the
//! frozen V2S using only the speed loss; at test time the TOD generator is
//! fitted against the *observed* speed (plus optional auxiliary losses,
//! §IV-E) and its output is the recovered TOD.
//!
//! [`TodEstimator`] is the interface every method in this workspace
//! implements — OVS here, the six baselines in the `baselines` crate.

#![warn(missing_docs)]

pub mod artifact;
pub mod aux;
pub mod config;
pub mod estimator;
pub mod model;
pub mod routes;
pub mod tod2v;
pub mod tod_gen;
pub mod trainer;
pub mod v2s;

pub use config::{OvsConfig, OvsVariant};
pub use estimator::{EstimatorInput, TodEstimator};
pub use model::OvsModel;
pub use trainer::{
    OvsTrainer, PipelineCheckpoint, RecoveryPolicy, Stage, StageOptions, StageState, TrainError,
    TrainReport, TrainResult,
};
