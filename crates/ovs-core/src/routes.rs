//! The route table: the static routing structure the TOD-Volume mapping
//! is built on.
//!
//! Following the paper's simplification (§IV-C: "people will choose the
//! shortest or fastest route ... one OD will only correspond to one
//! route"), each OD pair is assigned its free-flow fastest route between
//! region anchor nodes. For every link we precompute the set of routes
//! passing through it — the paper's "OD i contains link l_j" relation —
//! together with the *free-flow delay offset*: how many whole intervals a
//! vehicle needs at free flow to reach the link from its origin. The
//! dynamic attention then learns congestion-dependent deviations around
//! these physical offsets.

use roadnet::routing::{fastest_path, k_shortest_paths};
use roadnet::{LinkId, OdPairId, OdSet, Result, RoadNetwork};

/// One incidence: route `od` crosses the link, entering it roughly
/// `delay_intervals` after departure under free flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incidence {
    /// The OD pair the route belongs to.
    pub od: OdPairId,
    /// Which of the OD's routes this is (0 under the one-route
    /// simplification; up to `k-1` in multi-route mode).
    pub route_idx: usize,
    /// Free-flow arrival offset in whole intervals.
    pub delay_intervals: usize,
}

/// Static routing structure shared by the model.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Routes (link sequences) per OD pair; inner vector has one entry
    /// under the one-route simplification, up to `k` in multi-route mode.
    routes: Vec<Vec<Vec<LinkId>>>,
    /// Routes crossing each link, indexed by `LinkId`.
    incident: Vec<Vec<Incidence>>,
    n_links: usize,
    max_routes: usize,
}

impl RouteTable {
    /// Builds the table for `(net, ods)` with `interval_s`-second
    /// intervals under the paper's one-route simplification (§IV-C).
    pub fn build(net: &RoadNetwork, ods: &OdSet, interval_s: f64) -> Result<Self> {
        Self::build_with_k(net, ods, interval_s, 1)
    }

    /// Multi-route variant (the paper's future-work direction): up to `k`
    /// loopless fastest routes per OD (Yen's algorithm), each indexed by
    /// `route_idx` so the OD-Route layer can learn a split over them.
    pub fn build_with_k(net: &RoadNetwork, ods: &OdSet, interval_s: f64, k: usize) -> Result<Self> {
        ods.validate(net)?;
        let k = k.max(1);
        let m = net.num_links();
        let mut routes = Vec::with_capacity(ods.len());
        let mut incident: Vec<Vec<Incidence>> = vec![Vec::new(); m];
        for (id, pair) in ods.iter() {
            let from = net.region_anchor(pair.origin)?;
            let to = net.region_anchor(pair.destination)?;
            let od_routes: Vec<Vec<LinkId>> = if from == to {
                Vec::new()
            } else if k == 1 {
                vec![fastest_path(net, from, to)?.links]
            } else {
                k_shortest_paths(net, from, to, k, &|l| l.free_flow_time_s())?
                    .into_iter()
                    .map(|r| r.links)
                    .collect()
            };
            for (route_idx, route) in od_routes.iter().enumerate() {
                let mut elapsed_s = 0.0;
                for &lid in route {
                    let delay = (elapsed_s / interval_s).floor() as usize;
                    incident[lid.index()].push(Incidence {
                        od: id,
                        route_idx,
                        delay_intervals: delay,
                    });
                    elapsed_s += net.links()[lid.index()].free_flow_time_s();
                }
            }
            routes.push(od_routes);
        }
        Ok(Self {
            routes,
            incident,
            n_links: m,
            max_routes: k,
        })
    }

    /// Number of OD pairs / routes.
    pub fn n_routes(&self) -> usize {
        self.routes.len()
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// The primary (fastest) route of `od`; empty when the OD's region
    /// anchors coincide.
    pub fn route(&self, od: OdPairId) -> &[LinkId] {
        self.routes[od.index()]
            .first()
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All routes of `od` in non-decreasing cost order.
    pub fn routes_of(&self, od: OdPairId) -> &[Vec<LinkId>] {
        &self.routes[od.index()]
    }

    /// The `k` the table was built with (upper bound on routes per OD).
    pub fn max_routes(&self) -> usize {
        self.max_routes
    }

    /// Routes crossing `link`, with free-flow offsets.
    pub fn incident(&self, link: LinkId) -> &[Incidence] {
        &self.incident[link.index()]
    }

    /// Mean number of routes per link (diagnostic).
    pub fn mean_incidence(&self) -> f64 {
        if self.n_links == 0 {
            return 0.0;
        }
        let total: usize = self.incident.iter().map(Vec::len).sum();
        total as f64 / self.n_links as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::presets::synthetic_grid;

    fn table() -> (RoadNetwork, OdSet, RouteTable) {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let table = RouteTable::build(&net, &ods, 600.0).unwrap();
        (net, ods, table)
    }

    #[test]
    fn every_od_gets_a_route() {
        let (_, ods, table) = table();
        assert_eq!(table.n_routes(), ods.len());
        for (id, _) in ods.iter() {
            assert!(!table.route(id).is_empty(), "route for {id}");
        }
    }

    #[test]
    fn incidence_is_consistent_with_routes() {
        let (net, ods, table) = table();
        // forward: every route link lists the route as incident
        for (id, _) in ods.iter() {
            for &lid in table.route(id) {
                assert!(
                    table.incident(lid).iter().any(|inc| inc.od == id),
                    "link {lid} must list route {id}"
                );
            }
        }
        // backward: every incidence points to a route containing the link
        for l in net.links() {
            for inc in table.incident(l.id) {
                assert!(table.route(inc.od).contains(&l.id));
            }
        }
    }

    #[test]
    fn delays_monotone_along_route() {
        let (_, ods, table) = table();
        for (id, _) in ods.iter() {
            let mut last = 0usize;
            for &lid in table.route(id) {
                let inc = table.incident(lid).iter().find(|inc| inc.od == id).unwrap();
                assert!(inc.delay_intervals >= last);
                last = inc.delay_intervals;
            }
        }
    }

    #[test]
    fn first_link_has_zero_delay() {
        let (_, ods, table) = table();
        for (id, _) in ods.iter() {
            let first = table.route(id)[0];
            let inc = table
                .incident(first)
                .iter()
                .find(|inc| inc.od == id)
                .unwrap();
            assert_eq!(inc.delay_intervals, 0);
        }
    }

    #[test]
    fn short_intervals_produce_positive_delays() {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        // 10-second intervals: crossing one 300 m link takes ~27 s, so
        // later links must have delay >= 2.
        let table = RouteTable::build(&net, &ods, 10.0).unwrap();
        let has_delay = ods.iter().any(|(id, _)| {
            table.route(id).iter().any(|&lid| {
                table
                    .incident(lid)
                    .iter()
                    .any(|inc| inc.od == id && inc.delay_intervals > 0)
            })
        });
        assert!(has_delay);
    }

    #[test]
    fn mean_incidence_positive() {
        let (_, _, table) = table();
        assert!(table.mean_incidence() > 1.0);
    }
}
