//! Training and testing pipeline (paper §V-E, Figure 8).
//!
//! 1. **Stage 1** — fit the Volume-Speed mapping on generated
//!    `(volume, speed)` pairs.
//! 2. **Stage 2** — freeze V2S; fit the TOD-Volume mapping by pushing
//!    generated TOD tensors through both mappings and comparing *speeds*
//!    (the paper deliberately uses only the speed loss here: "we only use
//!    the main loss ... the hardest case").
//! 3. **Test-time fit** — freeze both mappings; optimise the TOD
//!    generator against the *observed* speed tensor, optionally with the
//!    census/camera auxiliary losses of Eq. 13. The generator's output is
//!    the recovered TOD.
//!
//! "Epochs" here are gradient steps; stages 1-2 cycle through the training
//! corpus one sample per step.

use crate::aux::{camera_loss, census_loss, speed_limit_loss};
use crate::config::OvsConfig;
use crate::estimator::{
    link_to_matrix, matrix_to_tod, tod_to_matrix, validate_input, EstimatorInput, TodEstimator,
};
use crate::model::OvsModel;
use neural::loss::{huber, mse, mse_into};
use neural::optim::{Adam, AdamSnapshot, Optimizer};
use neural::{Matrix, Workspace};
use roadnet::{Result, RoadnetError, TodTensor};
// lint: allow(determinism) — wall clock feeds the trainer's Timing-class
// gauges (seconds, steps_per_sec) only; losses and weights never see it.
use std::time::Instant;

/// Timing histogram: checkpoint-hook latency, shared by all stages.
pub const CHECKPOINT_WRITE_SECONDS: &str = "trainer_checkpoint_write_seconds";

/// Typed training failure: either the recovery budget ran out on
/// persistent non-finite losses/gradients, or an underlying substrate
/// error surfaced.
#[derive(Debug)]
pub enum TrainError {
    /// The non-finite guard tripped more than the retry budget allows:
    /// rollback + learning-rate backoff could not get the stage past a
    /// persistently divergent step.
    Diverged {
        /// The stage that diverged.
        stage: Stage,
        /// The step whose loss/gradient was non-finite on the final try.
        step: usize,
        /// Rollback attempts consumed before giving up.
        retries: u32,
    },
    /// A substrate error (invalid input, shape mismatch, ...).
    Net(RoadnetError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Diverged {
                stage,
                step,
                retries,
            } => write!(
                f,
                "stage '{}' diverged at step {step}: loss/gradient stayed non-finite \
                 through {retries} rollback retries",
                stage.tag()
            ),
            Self::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Net(e) => Some(e),
            Self::Diverged { .. } => None,
        }
    }
}

impl From<RoadnetError> for TrainError {
    fn from(e: RoadnetError) -> Self {
        Self::Net(e)
    }
}

impl From<TrainError> for RoadnetError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Net(inner) => inner,
            diverged => RoadnetError::Internal(diverged.to_string()),
        }
    }
}

/// Result alias for trainer entry points.
pub type TrainResult<T> = std::result::Result<T, TrainError>;

/// How a stage recovers from non-finite losses or gradients: roll back to
/// the last good state, optionally shrink the learning rate, and retry a
/// bounded number of times before declaring [`TrainError::Diverged`].
///
/// The first retry replays at the *original* learning rate — a transient
/// injected fault therefore recovers onto the exact uninjected
/// trajectory, bit for bit. Only from the second consecutive failure does
/// the backoff multiplier kick in, trading bit-exactness for survival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Rollback attempts per stretch between good checkpoints before the
    /// stage gives up.
    pub max_retries: u32,
    /// Learning-rate multiplier applied from the second consecutive
    /// retry onwards.
    pub lr_backoff: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// Per-stage metric handles, resolved once so the step loop stays cheap.
///
/// Names are `trainer_{tag}_*` with the [`Stage::tag`] interpolated:
/// `steps_total` (counter), `loss` / `grad_norm` (histograms),
/// `final_loss` (stable gauge, one writer per stage), and the timing-class
/// `seconds` / `steps_per_sec` gauges.
struct StageMetrics {
    steps: obs::Counter,
    loss: obs::Histogram,
    grad_norm: obs::Histogram,
    final_loss: obs::Gauge,
    seconds: obs::Gauge,
    steps_per_sec: obs::Gauge,
    ckpt_seconds: obs::Histogram,
    nonfinite: obs::Counter,
    rollbacks: obs::Counter,
    lr_backoffs: obs::Counter,
    diverged: obs::Counter,
    ckpt_failures: obs::Counter,
    // lint: allow(determinism) — Timing-class stage stopwatch.
    start: Instant,
}

impl StageMetrics {
    fn new(reg: &obs::Registry, stage: Stage) -> Self {
        let tag = stage.tag();
        // Bound separately from the stable-instrument registrations below
        // so the Timing-class stopwatch never shares a statement with them.
        // lint: allow(determinism) — Timing-class stage stopwatch.
        let start = Instant::now();
        Self {
            steps: reg.counter(&format!("trainer_{tag}_steps_total")),
            loss: reg.histogram(&format!("trainer_{tag}_loss"), obs::LOSS_BUCKETS),
            grad_norm: reg.histogram(&format!("trainer_{tag}_grad_norm"), obs::NORM_BUCKETS),
            final_loss: reg.gauge(&format!("trainer_{tag}_final_loss")),
            seconds: reg.timing_gauge(&format!("trainer_{tag}_seconds")),
            steps_per_sec: reg.timing_gauge(&format!("trainer_{tag}_steps_per_sec")),
            ckpt_seconds: reg.timing_histogram(CHECKPOINT_WRITE_SECONDS, obs::DURATION_BUCKETS),
            nonfinite: reg.counter(&format!("trainer_{tag}_nonfinite_total")),
            rollbacks: reg.counter(&format!("trainer_{tag}_rollbacks_total")),
            lr_backoffs: reg.counter(&format!("trainer_{tag}_lr_backoffs_total")),
            diverged: reg.counter(&format!("trainer_{tag}_diverged_total")),
            ckpt_failures: reg.counter(&format!("trainer_{tag}_ckpt_failures_total")),
            start,
        }
    }

    fn record_step(&self, loss: f64, grad_norm: f64) {
        self.steps.inc();
        self.loss.observe(loss);
        self.grad_norm.observe(grad_norm);
    }

    /// Runs a checkpoint hook, timing the write.
    fn record_checkpoint(&self, write: impl FnOnce() -> Result<()>) -> Result<()> {
        // lint: allow(determinism) — write latency goes to a Timing histogram.
        let t0 = Instant::now();
        let r = write();
        self.ckpt_seconds.observe(t0.elapsed().as_secs_f64());
        r
    }

    /// Publishes the stage's end-of-run summary. `steps_taken` counts only
    /// the steps of this call (a resumed stage reports its own share).
    fn finish(&self, losses: &[f64], steps_taken: usize) {
        if let Some(&last) = losses.last() {
            self.final_loss.set(last);
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        self.seconds.set(elapsed);
        if elapsed > 0.0 {
            self.steps_per_sec.set(steps_taken as f64 / elapsed);
        }
    }
}

/// Loss traces of a full train + fit run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Stage-1 loss per step.
    pub v2s_losses: Vec<f64>,
    /// Stage-2 loss per step.
    pub tod2v_losses: Vec<f64>,
    /// Test-time fit loss per step (main + weighted auxiliary).
    pub fit_losses: Vec<f64>,
}

impl TrainReport {
    /// Final stage-1 loss.
    pub fn final_v2s(&self) -> Option<f64> {
        self.v2s_losses.last().copied()
    }

    /// Final stage-2 loss.
    pub fn final_tod2v(&self) -> Option<f64> {
        self.tod2v_losses.last().copied()
    }

    /// Final test-time fit loss.
    pub fn final_fit(&self) -> Option<f64> {
        self.fit_losses.last().copied()
    }
}

/// One stage of the training pipeline (§V-E, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: Volume-Speed fit.
    V2s,
    /// Stage 2: TOD-Volume fit through the frozen V2S.
    Tod2v,
    /// Test-time TOD-generator fit.
    Fit,
}

impl Stage {
    /// Stable identifier used in checkpoint artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            Stage::V2s => "v2s",
            Stage::Tod2v => "tod2v",
            Stage::Fit => "fit",
        }
    }

    /// Inverse of [`Stage::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "v2s" => Some(Stage::V2s),
            "tod2v" => Some(Stage::Tod2v),
            "fit" => Some(Stage::Fit),
            _ => None,
        }
    }
}

/// Everything needed to resume one training stage bit-exactly: the
/// stage's module weights, the full Adam moment state, the loss trace so
/// far, and the early-stopping counters. Restoring this mid-stage and
/// finishing the remaining steps reproduces the uninterrupted loss trace
/// exactly (provided dropout is disabled — the dropout RNG is the one
/// piece of state a snapshot does not capture).
#[derive(Debug, Clone)]
pub struct StageState {
    /// Which stage this state belongs to.
    pub stage: Stage,
    /// Gradient steps already taken.
    pub step: usize,
    /// The stage's module weights at `step` (in `visit_params` order).
    pub weights: Vec<Matrix>,
    /// The stage optimiser's full state at `step`.
    pub opt: AdamSnapshot,
    /// Per-step losses up to `step`.
    pub losses: Vec<f64>,
    /// Best early-stopping loss seen so far (`Fit` stage only).
    pub best: f64,
    /// Steps since `best` improved (`Fit` stage only).
    pub since_best: usize,
}

/// Per-stage checkpoint/resume options for the `*_with` trainer entry
/// points. The default (`resume: None`, `checkpoint_every: 0`) is the
/// plain uninterrupted behaviour of [`OvsTrainer::train_v2s`] et al.
#[derive(Default)]
pub struct StageOptions<'h> {
    /// Resume mid-stage from this state instead of starting at step 0.
    pub resume: Option<StageState>,
    /// Emit a checkpoint every this many steps (0 = never).
    pub checkpoint_every: usize,
    /// Called with the model and the stage state at each checkpoint. A
    /// failing hook does **not** abort training: the failure is counted
    /// (`trainer_{tag}_ckpt_failures_total`) and the stage keeps its
    /// previous rollback anchor, exactly as if the write never happened.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'h mut dyn FnMut(&mut OvsModel, &StageState) -> Result<()>>,
    /// Non-finite recovery policy (rollback + LR backoff + bounded
    /// retries). `None` uses [`RecoveryPolicy::default`].
    pub recovery: Option<RecoveryPolicy>,
    /// Fault-injection tap: called with `(stage, step, &mut loss,
    /// &mut grad_norm)` after the backward pass and gradient clip, right
    /// before the non-finite guard scans those two values. Tests poison
    /// them here to exercise the recovery path.
    #[allow(clippy::type_complexity)]
    pub tamper: Option<&'h mut dyn FnMut(Stage, usize, &mut f64, &mut f64)>,
}

/// A whole-pipeline snapshot: the full model weights plus the in-flight
/// stage's state and the traces of any completed stages. This is what
/// [`OvsTrainer::run_resumable`] emits and accepts.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// Full model weights ([`OvsModel::export_weights`] order) at the
    /// moment of the snapshot.
    pub model_weights: Vec<Matrix>,
    /// State of the stage that was running.
    pub state: StageState,
    /// Completed stage-1 loss trace (empty while stage 1 runs).
    pub v2s_losses: Vec<f64>,
    /// Completed stage-2 loss trace (empty until stage 2 finishes).
    pub tod2v_losses: Vec<f64>,
}

/// A `visit_params`-style closure: calls its argument once per
/// `(param, grad)` pair of a module.
type ParamVisitor<'v> = dyn FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)) + 'v;

/// Restores a stage's module weights and optimiser from a [`StageState`],
/// validating the stage tag and every weight shape first.
fn restore_stage(
    visit: &mut ParamVisitor<'_>,
    state: &StageState,
    expected: Stage,
) -> Result<Adam> {
    if state.stage != expected {
        return Err(RoadnetError::InvalidSpec(format!(
            "resume state is for stage '{}' but stage '{}' is running",
            state.stage.tag(),
            expected.tag()
        )));
    }
    checkpoint::module::import_visit(visit, &state.weights)
        .map_err(|e| RoadnetError::InvalidSpec(format!("resume state rejected: {e}")))?;
    Ok(Adam::from_snapshot(state.opt.clone()))
}

/// Captures a stage's full state (module weights + optimiser + trace) at
/// `step` for a later bit-exact resume.
fn capture_stage(
    visit: &mut ParamVisitor<'_>,
    stage: Stage,
    step: usize,
    opt: &Adam,
    losses: &[f64],
    best: f64,
    since_best: usize,
) -> StageState {
    StageState {
        stage,
        step,
        weights: checkpoint::module::export_visit(visit),
        opt: opt.snapshot(),
        losses: losses.to_vec(),
        best,
        since_best,
    }
}

/// Per-stage non-finite recovery bookkeeping: the rollback anchor plus
/// the retry/backoff state of the stretch since that anchor.
///
/// `retries` deliberately does **not** reset on successful steps — only
/// when the anchor itself moves forward ([`StageGuard::refresh`]). A
/// persistent fault replays deterministically, so per-step resets would
/// loop forever; per-stretch budgets guarantee termination.
struct StageGuard {
    policy: RecoveryPolicy,
    base_lr: f64,
    lr_scale: f64,
    retries: u32,
    last_good: StageState,
}

impl StageGuard {
    fn new(policy: RecoveryPolicy, base_lr: f64, last_good: StageState) -> Self {
        Self {
            policy,
            base_lr,
            lr_scale: 1.0,
            retries: 0,
            last_good,
        }
    }

    /// Registers one non-finite step. Returns the learning rate to run at
    /// after the rollback, or [`TrainError::Diverged`] once the retry
    /// budget is spent. The first retry keeps the original rate so a
    /// transient fault replays the uninjected trajectory bit-exactly.
    fn trip(&mut self, mx: &StageMetrics, stage: Stage, step: usize) -> TrainResult<f64> {
        mx.nonfinite.inc();
        self.retries += 1;
        if self.retries > self.policy.max_retries {
            mx.diverged.inc();
            return Err(TrainError::Diverged {
                stage,
                step,
                retries: self.retries - 1,
            });
        }
        if self.retries >= 2 {
            self.lr_scale *= self.policy.lr_backoff;
            mx.lr_backoffs.inc();
        }
        mx.rollbacks.inc();
        Ok(self.base_lr * self.lr_scale)
    }

    /// Moves the rollback anchor to a freshly captured good state and
    /// resets the retry budget for the next stretch.
    fn refresh(&mut self, state: StageState) {
        self.last_good = state;
        self.retries = 0;
    }
}

/// Steps an Adam optimiser over a module exposed through a
/// `visit_params`-style closure.
fn adam_step(opt: &mut Adam, visit: &mut ParamVisitor<'_>) {
    opt.begin_step();
    let mut slot = 0usize;
    visit(&mut |p, g| {
        opt.apply(slot, p, g);
        slot += 1;
    });
}

/// Clips the global gradient norm of a module; returns the pre-clip norm.
fn clip_grads(visit: &mut ParamVisitor<'_>, max_norm: f64) -> f64 {
    let mut sq = 0.0;
    visit(&mut |_, g| sq += g.as_slice().iter().map(|v| v * v).sum::<f64>());
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        visit(&mut |_, g| g.scale(scale));
    }
    norm
}

/// Estimates the per-cell demand level of the hidden scenario by
/// interpolating the corpus (total demand -> city mean speed) curve at the
/// observed mean speed.
pub fn calibrate_demand_level(input: &EstimatorInput<'_>) -> f64 {
    // Robust city-speed statistic: the *median* link's time-mean speed.
    // Demand level moves every link; localised disruptions (road work,
    // incidents — RQ3) move only a few, so the median barely shifts while
    // the mean would mis-calibrate the prior under such scenarios.
    fn median_link_speed(t: &roadnet::LinkTensor) -> f64 {
        let t_len = t.num_intervals().max(1) as f64;
        let mut means: Vec<f64> = (0..t.rows())
            .map(|j| t.row(roadnet::LinkId(j)).iter().sum::<f64>() / t_len)
            .collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        means.get(means.len() / 2).copied().unwrap_or(0.0)
    }
    let mut points: Vec<(f64, f64)> = input
        .train
        .iter()
        .map(|s| (s.tod.total(), median_link_speed(&s.speed)))
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let (Some(&first), Some(&last)) = (points.first(), points.last()) else {
        return 0.0;
    };
    let obs = median_link_speed(input.observed_speed);
    // Scan a fine demand grid, predict mean speed by piecewise-linear
    // interpolation, keep the best-matching total.
    let max_total = last.0.max(1.0);
    let speed_at = |d: f64| -> f64 {
        if d <= first.0 {
            return first.1;
        }
        for w in points.windows(2) {
            if let &[(d0, s0), (d1, s1)] = w {
                if d <= d1 {
                    let f = if d1 > d0 { (d - d0) / (d1 - d0) } else { 0.0 };
                    return s0 + f * (s1 - s0);
                }
            }
        }
        last.1
    };
    let mut best = (f64::INFINITY, max_total * 0.5);
    for k in 1..=120 {
        let total = max_total * 1.5 * k as f64 / 120.0;
        let err = (speed_at(total) - obs).abs();
        if err < best.0 {
            best = (err, total);
        }
    }
    let cells = input.n_od() * input.n_intervals();
    best.1 / cells.max(1) as f64
}

/// The two-stage trainer plus test-time fitter.
pub struct OvsTrainer {
    cfg: OvsConfig,
    obs: obs::Registry,
}

impl OvsTrainer {
    /// Creates a trainer with the model's configuration.
    pub fn new(cfg: OvsConfig) -> Self {
        Self {
            cfg,
            obs: obs::global().clone(),
        }
    }

    /// Redirects metrics to `registry` instead of the process-global one.
    pub fn with_registry(mut self, registry: obs::Registry) -> Self {
        self.obs = registry;
        self
    }

    /// Stage 1: fit V2S on the generated corpus. Returns per-step losses.
    pub fn train_v2s(
        &self,
        model: &mut OvsModel,
        train: &[crate::estimator::TrainTriple],
    ) -> TrainResult<Vec<f64>> {
        self.train_v2s_with(model, train, StageOptions::default())
    }

    /// [`OvsTrainer::train_v2s`] with mid-stage checkpointing and resume.
    pub fn train_v2s_with(
        &self,
        model: &mut OvsModel,
        train: &[crate::estimator::TrainTriple],
        mut opts: StageOptions<'_>,
    ) -> TrainResult<Vec<f64>> {
        let Some(head) = train.first() else {
            return Err(RoadnetError::InvalidSpec(
                "stage 1 requires at least one training triple".into(),
            )
            .into());
        };
        // Full-batch training: the V2S weights are shared across links, so
        // every link of every sample is just another batch row. One big
        // (M * S, T) matrix keeps the loss surface smooth.
        let m = head.volume.rows();
        let t = head.volume.num_intervals();
        let rows = m * train.len();
        let mut q_all = Matrix::zeros(rows, t);
        let mut v_all = Matrix::zeros(rows, t);
        for (s, sample) in train.iter().enumerate() {
            let q_src = link_to_matrix(&sample.volume);
            let v_src = link_to_matrix(&sample.speed);
            for j in 0..m {
                for (dst, src) in q_all.row_mut(s * m + j).iter_mut().zip(q_src.row(j)) {
                    *dst = *src;
                }
                for (dst, src) in v_all.row_mut(s * m + j).iter_mut().zip(v_src.row(j)) {
                    *dst = *src;
                }
            }
        }
        let (mut opt, mut losses, start) = match opts.resume.take() {
            Some(state) => {
                let opt = restore_stage(&mut |f| model.v2s.visit_params(f), &state, Stage::V2s)?;
                (opt, state.losses, state.step)
            }
            None => (
                Adam::new(self.cfg.lr * 10.0),
                Vec::with_capacity(self.cfg.epochs_v2s),
                0,
            ),
        };
        let mx = StageMetrics::new(&self.obs, Stage::V2s);
        let mut guard = StageGuard::new(
            opts.recovery.unwrap_or_default(),
            opt.lr(),
            capture_stage(
                &mut |f| model.v2s.visit_params(f),
                Stage::V2s,
                start,
                &opt,
                &losses,
                f64::INFINITY,
                0,
            ),
        );
        // Pooled buffers make the steady-state loop allocation-free; the
        // `_ws`/`_into` paths are bit-identical to the allocating ones
        // (locked in by neural's ws_equivalence suite), so losses and
        // weights match the pre-workspace trainer exactly.
        let mut ws = Workspace::new();
        let mut grad = Matrix::zeros(rows, t);
        let mut step = start;
        while step < self.cfg.epochs_v2s {
            let v_pred = model.v2s.forward_ws(&q_all, true, &mut ws);
            let mut loss = mse_into(&v_pred, &v_all, &mut grad);
            ws.give(v_pred);
            let dq = model.v2s.backward_ws(&grad, &mut ws);
            ws.give(dq);
            let mut norm = clip_grads(&mut |f| model.v2s.visit_params(f), self.cfg.grad_clip);
            if let Some(tamper) = opts.tamper.as_mut() {
                tamper(Stage::V2s, step, &mut loss, &mut norm);
            }
            if !loss.is_finite() || !norm.is_finite() {
                let lr = guard.trip(&mx, Stage::V2s, step)?;
                checkpoint::module::import_visit(
                    &mut |f| model.v2s.visit_params(f),
                    &guard.last_good.weights,
                )
                .map_err(|e| RoadnetError::Internal(format!("rollback import rejected: {e}")))?;
                opt = Adam::from_snapshot(guard.last_good.opt.clone());
                opt.set_lr(lr);
                losses.truncate(guard.last_good.losses.len());
                model.v2s.zero_grad();
                step = guard.last_good.step;
                continue;
            }
            adam_step(&mut opt, &mut |f| model.v2s.visit_params(f));
            model.v2s.zero_grad();
            losses.push(loss);
            mx.record_step(loss, norm);
            if opts.checkpoint_every > 0 && (step + 1) % opts.checkpoint_every == 0 {
                let state = capture_stage(
                    &mut |f| model.v2s.visit_params(f),
                    Stage::V2s,
                    step + 1,
                    &opt,
                    &losses,
                    f64::INFINITY,
                    0,
                );
                let mut ok = true;
                if let Some(hook) = opts.on_checkpoint.as_mut() {
                    if mx.record_checkpoint(|| hook(model, &state)).is_err() {
                        mx.ckpt_failures.inc();
                        ok = false;
                    }
                }
                if ok {
                    guard.refresh(state);
                }
            }
            step += 1;
        }
        mx.finish(&losses, self.cfg.epochs_v2s.saturating_sub(start));
        Ok(losses)
    }

    /// Stage 2: freeze V2S, fit TOD2V through it using the speed loss.
    pub fn train_tod2v(
        &self,
        model: &mut OvsModel,
        train: &[crate::estimator::TrainTriple],
    ) -> TrainResult<Vec<f64>> {
        self.train_tod2v_with(model, train, StageOptions::default())
    }

    /// [`OvsTrainer::train_tod2v`] with mid-stage checkpointing and resume.
    pub fn train_tod2v_with(
        &self,
        model: &mut OvsModel,
        train: &[crate::estimator::TrainTriple],
        mut opts: StageOptions<'_>,
    ) -> TrainResult<Vec<f64>> {
        if train.is_empty() {
            return Err(RoadnetError::InvalidSpec(
                "stage 2 requires at least one training triple".into(),
            )
            .into());
        }
        let (mut opt, mut losses, start) = match opts.resume.take() {
            Some(state) => {
                let opt =
                    restore_stage(&mut |f| model.tod2v.visit_params(f), &state, Stage::Tod2v)?;
                (opt, state.losses, state.step)
            }
            None => (
                Adam::new(self.cfg.lr * 30.0),
                Vec::with_capacity(self.cfg.epochs_tod2v),
                0,
            ),
        };
        // Full-batch epochs: gradients accumulate over every sample before
        // one optimiser step; per-sample cycling oscillates because the
        // five TOD patterns pull the mapping in different directions.
        let mx = StageMetrics::new(&self.obs, Stage::Tod2v);
        let mut guard = StageGuard::new(
            opts.recovery.unwrap_or_default(),
            opt.lr(),
            capture_stage(
                &mut |f| model.tod2v.visit_params(f),
                Stage::Tod2v,
                start,
                &opt,
                &losses,
                f64::INFINITY,
                0,
            ),
        );
        // The (TOD, speed, volume) matrices are epoch-invariant; converting
        // them once keeps the epoch loop free of per-sample allocation.
        let samples: Vec<(Matrix, Matrix, Matrix)> = train
            .iter()
            .map(|s| {
                (
                    tod_to_matrix(&s.tod),
                    link_to_matrix(&s.speed),
                    link_to_matrix(&s.volume),
                )
            })
            .collect();
        let (vm, vt) = samples.first().map(|(_, v, _)| v.shape()).unwrap_or((0, 0));
        let mut ws = Workspace::new();
        let mut dv = Matrix::zeros(vm, vt);
        let mut dq_vol = Matrix::zeros(vm, vt);
        let mut step = start;
        while step < self.cfg.epochs_tod2v {
            let mut epoch_loss = 0.0;
            for (g, v_target, q_target) in &samples {
                let q_pred = model.tod2v.forward(g, true);
                let v_pred = model.v2s.forward_ws(&q_pred, true, &mut ws);
                let speed_loss = mse_into(&v_pred, v_target, &mut dv);
                ws.give(v_pred);
                let mut dq = model.v2s.backward_ws(&dv, &mut ws);
                // Volume anchoring (Fig 8: the TOD-Volume mapping is
                // trained with generated TOD, volume AND speed).
                // Normalised by the volume scale so the weight is
                // unit-free.
                let mut loss = speed_loss;
                if self.cfg.w_volume_stage2 > 0.0 {
                    let vol_loss = mse_into(&q_pred, q_target, &mut dq_vol);
                    let scale =
                        self.cfg.w_volume_stage2 * (self.cfg.v_max / self.cfg.q_norm).powi(2);
                    loss += scale * vol_loss;
                    dq_vol.scale(scale);
                    dq.add_assign(&dq_vol);
                }
                model.tod2v.backward(&dq);
                ws.give(dq);
                // Only the TOD2V parameters move; V2S gradients are
                // discarded.
                model.v2s.zero_grad();
                epoch_loss += loss;
            }
            let mut norm = clip_grads(&mut |f| model.tod2v.visit_params(f), self.cfg.grad_clip);
            let mut mean_loss = epoch_loss / train.len() as f64;
            if let Some(tamper) = opts.tamper.as_mut() {
                tamper(Stage::Tod2v, step, &mut mean_loss, &mut norm);
            }
            if !mean_loss.is_finite() || !norm.is_finite() {
                let lr = guard.trip(&mx, Stage::Tod2v, step)?;
                checkpoint::module::import_visit(
                    &mut |f| model.tod2v.visit_params(f),
                    &guard.last_good.weights,
                )
                .map_err(|e| RoadnetError::Internal(format!("rollback import rejected: {e}")))?;
                opt = Adam::from_snapshot(guard.last_good.opt.clone());
                opt.set_lr(lr);
                losses.truncate(guard.last_good.losses.len());
                model.tod2v.zero_grad();
                step = guard.last_good.step;
                continue;
            }
            adam_step(&mut opt, &mut |f| model.tod2v.visit_params(f));
            model.tod2v.zero_grad();
            losses.push(mean_loss);
            mx.record_step(mean_loss, norm);
            if opts.checkpoint_every > 0 && (step + 1) % opts.checkpoint_every == 0 {
                let state = capture_stage(
                    &mut |f| model.tod2v.visit_params(f),
                    Stage::Tod2v,
                    step + 1,
                    &opt,
                    &losses,
                    f64::INFINITY,
                    0,
                );
                let mut ok = true;
                if let Some(hook) = opts.on_checkpoint.as_mut() {
                    if mx.record_checkpoint(|| hook(model, &state)).is_err() {
                        mx.ckpt_failures.inc();
                        ok = false;
                    }
                }
                if ok {
                    guard.refresh(state);
                }
            }
            step += 1;
        }
        mx.finish(&losses, self.cfg.epochs_tod2v.saturating_sub(start));
        Ok(losses)
    }

    /// Test-time fit of the TOD generator against the observed speed
    /// (plus auxiliary losses when enabled and available).
    pub fn fit_tod_gen(
        &self,
        model: &mut OvsModel,
        input: &EstimatorInput<'_>,
    ) -> TrainResult<Vec<f64>> {
        self.fit_tod_gen_with(model, input, StageOptions::default())
    }

    /// [`OvsTrainer::fit_tod_gen`] with mid-stage checkpointing and
    /// resume. The early-stopping counters travel in the [`StageState`],
    /// so a resumed fit stops at exactly the step the uninterrupted fit
    /// would have.
    pub fn fit_tod_gen_with(
        &self,
        model: &mut OvsModel,
        input: &EstimatorInput<'_>,
        mut opts: StageOptions<'_>,
    ) -> TrainResult<Vec<f64>> {
        let v_obs = link_to_matrix(input.observed_speed);
        // Gaussian prior centre (SS IV-B): the demand *level* implied by
        // the observation itself — the corpus demand->mean-speed curve
        // inverted at the observed mean speed. Using the raw corpus mean
        // instead would bias the fit whenever the hidden scenario is much
        // lighter or heavier than the average generated tensor.
        let prior_mu = calibrate_demand_level(input);
        let prior_scale = self.cfg.w_prior * (self.cfg.v_max / self.cfg.g_max.max(1e-9)).powi(2);
        let limits: Vec<f64> = input
            .net
            .links()
            .iter()
            .map(|l| l.speed_limit_mps)
            .collect();
        // Early stopping: once the speed evidence stops improving the fit,
        // further steps only chase forward-model bias (the multiple-
        // solution problem of SS I). Patience scales with the budget.
        let patience = (self.cfg.epochs_fit / 8).max(50);
        let (mut opt, mut losses, start, mut best, mut since_best) = match opts.resume.take() {
            Some(state) => {
                let opt =
                    restore_stage(&mut |f| model.tod_gen.visit_params(f), &state, Stage::Fit)?;
                (opt, state.losses, state.step, state.best, state.since_best)
            }
            None => (
                Adam::new(self.cfg.lr * 30.0),
                Vec::with_capacity(self.cfg.epochs_fit),
                0,
                f64::INFINITY,
                0usize,
            ),
        };
        let mx = StageMetrics::new(&self.obs, Stage::Fit);
        let mut guard = StageGuard::new(
            opts.recovery.unwrap_or_default(),
            opt.lr(),
            capture_stage(
                &mut |f| model.tod_gen.visit_params(f),
                Stage::Fit,
                start,
                &opt,
                &losses,
                best,
                since_best,
            ),
        );
        let mut ws = Workspace::new();
        let mut steps_taken = 0usize;
        let mut step = start;
        while step < self.cfg.epochs_fit {
            let (g, q, v) = model.forward_full(true);
            let (main, dv) = if self.cfg.fit_huber_delta > 0.0 {
                huber(&v, &v_obs, self.cfg.fit_huber_delta)
            } else {
                mse(&v, &v_obs)
            };
            let mut total = main;

            // Speed-limit constraint (Eq. 13's w_v term): folded into the
            // speed gradient before it enters V2S.
            let mut dv = dv;
            if self.cfg.w_speed_limit > 0.0 {
                let (l_lim, mut d_lim) = speed_limit_loss(&v, &limits);
                total += self.cfg.w_speed_limit * l_lim;
                d_lim.scale(self.cfg.w_speed_limit);
                dv.add_assign(&d_lim);
            }

            // d loss / d q: through V2S plus the camera constraint.
            let mut dq = model.v2s.backward_ws(&dv, &mut ws);
            if self.cfg.w_camera > 0.0 {
                if let Some((links, obs)) = input.cameras {
                    let (l_cam, mut d_cam) = camera_loss(&q, links, obs);
                    total += self.cfg.w_camera * l_cam;
                    d_cam.scale(self.cfg.w_camera);
                    dq.add_assign(&d_cam);
                }
            }

            // d loss / d g: through TOD2V plus the census constraint.
            let mut dg = model.tod2v.backward(&dq);
            ws.give(dq);
            if self.cfg.w_census > 0.0 {
                if let Some(totals) = input.census_totals {
                    let (l_cen, mut d_cen) = census_loss(&g, totals);
                    total += self.cfg.w_census * l_cen;
                    d_cen.scale(self.cfg.w_census);
                    dg.add_assign(&d_cen);
                }
            }

            // Gaussian prior on the generated TOD.
            if prior_scale > 0.0 {
                let n = g.len().max(1) as f64;
                let mut prior_loss = 0.0;
                for (dgv, &gv) in dg.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    let diff = gv - prior_mu;
                    prior_loss += diff * diff;
                    *dgv += prior_scale * 2.0 * diff / n;
                }
                total += prior_scale * prior_loss / n;
            }

            model.tod_gen.backward(&dg);
            // Frozen mappings: discard their gradients.
            model.v2s.zero_grad();
            model.tod2v.zero_grad();
            let mut norm = clip_grads(&mut |f| model.tod_gen.visit_params(f), self.cfg.grad_clip);
            if let Some(tamper) = opts.tamper.as_mut() {
                tamper(Stage::Fit, step, &mut total, &mut norm);
            }
            if !total.is_finite() || !norm.is_finite() {
                let lr = guard.trip(&mx, Stage::Fit, step)?;
                checkpoint::module::import_visit(
                    &mut |f| model.tod_gen.visit_params(f),
                    &guard.last_good.weights,
                )
                .map_err(|e| RoadnetError::Internal(format!("rollback import rejected: {e}")))?;
                opt = Adam::from_snapshot(guard.last_good.opt.clone());
                opt.set_lr(lr);
                losses.truncate(guard.last_good.losses.len());
                best = guard.last_good.best;
                since_best = guard.last_good.since_best;
                model.tod_gen.zero_grad();
                step = guard.last_good.step;
                continue;
            }
            adam_step(&mut opt, &mut |f| model.tod_gen.visit_params(f));
            model.tod_gen.zero_grad();
            losses.push(total);
            mx.record_step(total, norm);
            steps_taken += 1;
            let mut stop = false;
            if total < best * 0.995 {
                best = total;
                since_best = 0;
            } else {
                since_best += 1;
                stop = since_best >= patience;
            }
            if opts.checkpoint_every > 0 && (step + 1) % opts.checkpoint_every == 0 && !stop {
                let state = capture_stage(
                    &mut |f| model.tod_gen.visit_params(f),
                    Stage::Fit,
                    step + 1,
                    &opt,
                    &losses,
                    best,
                    since_best,
                );
                let mut ok = true;
                if let Some(hook) = opts.on_checkpoint.as_mut() {
                    if mx.record_checkpoint(|| hook(model, &state)).is_err() {
                        mx.ckpt_failures.inc();
                        ok = false;
                    }
                }
                if ok {
                    guard.refresh(state);
                }
            }
            step += 1;
            if stop {
                break;
            }
        }
        mx.finish(&losses, steps_taken);
        Ok(losses)
    }

    /// Builds the corpus-adapted trainer and the freshly initialised,
    /// demand-levelled model that every pipeline entry point starts from.
    fn prepare(&self, input: &EstimatorInput<'_>) -> Result<(OvsTrainer, OvsModel)> {
        validate_input(input)?;
        // Adapt the sigmoid scales to the corpus so the generator starts
        // inside the data range instead of saturating.
        let cfg = self.cfg.clone().adapted_to_corpus(input.train);
        let trainer = OvsTrainer::new(cfg.clone()).with_registry(self.obs.clone());
        let mut model = OvsModel::new(
            input.net,
            input.ods,
            input.n_intervals(),
            input.interval_s,
            cfg,
        )?;
        // Start the generator at the observation-calibrated demand level.
        let level = calibrate_demand_level(input);
        model
            .tod_gen
            .set_output_level(level / model.config().g_max.max(1e-9));
        Ok((trainer, model))
    }

    /// The full pipeline: stages 1-2 on the corpus, then the test-time
    /// fit. Returns the trained model and the loss traces.
    pub fn run(&self, input: &EstimatorInput<'_>) -> TrainResult<(OvsModel, TrainReport)> {
        let (trainer, mut model) = self.prepare(input)?;
        let report = TrainReport {
            v2s_losses: trainer.train_v2s(&mut model, input.train)?,
            tod2v_losses: trainer.train_tod2v(&mut model, input.train)?,
            fit_losses: trainer.fit_tod_gen(&mut model, input)?,
        };
        Ok((model, report))
    }

    /// [`OvsTrainer::run`] with periodic whole-pipeline checkpointing and
    /// resume. `on_checkpoint` fires every `checkpoint_every` steps of
    /// whichever stage is running, receiving a [`PipelineCheckpoint`]
    /// that, passed back as `resume`, continues the run bit-exactly from
    /// that step (completed stages are not re-run; their traces travel in
    /// the checkpoint). With `checkpoint_every == 0` and `resume: None`
    /// this is exactly [`OvsTrainer::run`].
    pub fn run_resumable(
        &self,
        input: &EstimatorInput<'_>,
        checkpoint_every: usize,
        on_checkpoint: &mut dyn FnMut(&PipelineCheckpoint) -> Result<()>,
        resume: Option<PipelineCheckpoint>,
    ) -> TrainResult<(OvsModel, TrainReport)> {
        self.run_resumable_guarded(
            input,
            checkpoint_every,
            on_checkpoint,
            resume,
            RecoveryPolicy::default(),
            None,
        )
    }

    /// [`OvsTrainer::run_resumable`] with an explicit non-finite
    /// [`RecoveryPolicy`] and an optional fault-injection `tamper` tap
    /// (see [`StageOptions::tamper`]). This is the entry point the
    /// fault-injection harness drives: a transiently poisoned step rolls
    /// back to the last good checkpoint and replays onto the uninjected
    /// trajectory bit-exactly; a persistently poisoned step exhausts the
    /// budget and surfaces as [`TrainError::Diverged`].
    #[allow(clippy::type_complexity)]
    pub fn run_resumable_guarded(
        &self,
        input: &EstimatorInput<'_>,
        checkpoint_every: usize,
        on_checkpoint: &mut dyn FnMut(&PipelineCheckpoint) -> Result<()>,
        resume: Option<PipelineCheckpoint>,
        recovery: RecoveryPolicy,
        mut tamper: Option<&mut dyn FnMut(Stage, usize, &mut f64, &mut f64)>,
    ) -> TrainResult<(OvsModel, TrainReport)> {
        let (trainer, mut model) = self.prepare(input)?;
        let (mut stage_resume, done_v2s, done_tod2v, start_stage) = match resume {
            Some(cp) => {
                model.import_weights(&cp.model_weights)?;
                let stage = cp.state.stage;
                (Some(cp.state), cp.v2s_losses, cp.tod2v_losses, stage)
            }
            None => (None, Vec::new(), Vec::new(), Stage::V2s),
        };

        let v2s_losses = if start_stage == Stage::V2s {
            let mut hook = |m: &mut OvsModel, s: &StageState| {
                on_checkpoint(&PipelineCheckpoint {
                    model_weights: m.export_weights(),
                    state: s.clone(),
                    v2s_losses: Vec::new(),
                    tod2v_losses: Vec::new(),
                })
            };
            trainer.train_v2s_with(
                &mut model,
                input.train,
                StageOptions {
                    resume: stage_resume.take(),
                    checkpoint_every,
                    on_checkpoint: Some(&mut hook),
                    recovery: Some(recovery),
                    tamper: tamper.as_mut().map(|t| &mut **t as _),
                },
            )?
        } else {
            done_v2s
        };

        let tod2v_losses = if matches!(start_stage, Stage::V2s | Stage::Tod2v) {
            let mut hook = |m: &mut OvsModel, s: &StageState| {
                on_checkpoint(&PipelineCheckpoint {
                    model_weights: m.export_weights(),
                    state: s.clone(),
                    v2s_losses: v2s_losses.clone(),
                    tod2v_losses: Vec::new(),
                })
            };
            trainer.train_tod2v_with(
                &mut model,
                input.train,
                StageOptions {
                    resume: stage_resume.take(),
                    checkpoint_every,
                    on_checkpoint: Some(&mut hook),
                    recovery: Some(recovery),
                    tamper: tamper.as_mut().map(|t| &mut **t as _),
                },
            )?
        } else {
            done_tod2v
        };

        let fit_losses = {
            let mut hook = |m: &mut OvsModel, s: &StageState| {
                on_checkpoint(&PipelineCheckpoint {
                    model_weights: m.export_weights(),
                    state: s.clone(),
                    v2s_losses: v2s_losses.clone(),
                    tod2v_losses: tod2v_losses.clone(),
                })
            };
            trainer.fit_tod_gen_with(
                &mut model,
                input,
                StageOptions {
                    resume: stage_resume.take(),
                    checkpoint_every,
                    on_checkpoint: Some(&mut hook),
                    recovery: Some(recovery),
                    tamper: tamper.as_mut().map(|t| &mut **t as _),
                },
            )?
        };

        Ok((
            model,
            TrainReport {
                v2s_losses,
                tod2v_losses,
                fit_losses,
            },
        ))
    }

    /// Warm start: skip stages 1-2 entirely by importing the weights of a
    /// model already trained on another scenario (same network topology
    /// and shapes), then run only the test-time fit against this input's
    /// observation. The imported generator is re-levelled to the new
    /// observation's calibrated demand before fitting, so only the
    /// fine-structure has to be re-learned — the step-count saving
    /// `examples/warm_start.rs` measures.
    pub fn run_warm(
        &self,
        input: &EstimatorInput<'_>,
        source_weights: &[Matrix],
    ) -> TrainResult<(OvsModel, TrainReport)> {
        let (trainer, mut model) = self.prepare(input)?;
        model.import_weights(source_weights)?;
        let level = calibrate_demand_level(input);
        model
            .tod_gen
            .set_output_level(level / model.config().g_max.max(1e-9));
        let fit_losses = trainer.fit_tod_gen(&mut model, input)?;
        Ok((
            model,
            TrainReport {
                v2s_losses: Vec::new(),
                tod2v_losses: Vec::new(),
                fit_losses,
            },
        ))
    }

    /// [`OvsTrainer::run_warm`] under an explicit non-finite
    /// [`RecoveryPolicy`] and an optional fault-injection `tamper` tap —
    /// the warm path the streaming driver runs every non-first window
    /// through: a transiently poisoned fit step rolls back to the last
    /// good state, a persistent one exhausts the retry budget and
    /// surfaces as [`TrainError::Diverged`] so the caller can fall back
    /// to a cold start instead of publishing a corrupted window.
    #[allow(clippy::type_complexity)]
    pub fn run_warm_guarded(
        &self,
        input: &EstimatorInput<'_>,
        source_weights: &[Matrix],
        recovery: RecoveryPolicy,
        tamper: Option<&mut dyn FnMut(Stage, usize, &mut f64, &mut f64)>,
    ) -> TrainResult<(OvsModel, TrainReport)> {
        let (trainer, mut model) = self.prepare(input)?;
        model.import_weights(source_weights)?;
        let level = calibrate_demand_level(input);
        model
            .tod_gen
            .set_output_level(level / model.config().g_max.max(1e-9));
        let fit_losses = trainer.fit_tod_gen_with(
            &mut model,
            input,
            StageOptions {
                recovery: Some(recovery),
                tamper,
                ..StageOptions::default()
            },
        )?;
        Ok((
            model,
            TrainReport {
                v2s_losses: Vec::new(),
                tod2v_losses: Vec::new(),
                fit_losses,
            },
        ))
    }

    /// Like [`OvsTrainer::run`], but additionally averages the recovered
    /// TOD over `fit_restarts` independent test-time fits. Returns the
    /// model (holding the last fit), the averaged recovered TOD and the
    /// report of the first fit.
    pub fn run_ensembled(
        &self,
        input: &EstimatorInput<'_>,
    ) -> TrainResult<(OvsModel, Matrix, TrainReport)> {
        let (mut model, report) = self.run(input)?;
        let restarts = self.cfg.fit_restarts.max(1);
        let mut mean = model.recovered_tod();
        let corpus_level = calibrate_demand_level(input);
        for r in 1..restarts {
            model.reset_generator(self.cfg.seed.wrapping_add(r as u64 * 7919));
            model
                .tod_gen
                .set_output_level(corpus_level / model.config().g_max.max(1e-9));
            self.fit_tod_gen(&mut model, input)?;
            mean.add_assign(&model.recovered_tod());
        }
        mean.scale(1.0 / restarts as f64);
        Ok((model, mean, report))
    }
}

/// OVS as a [`TodEstimator`] — the form the evaluation harness consumes.
pub struct OvsEstimator {
    cfg: OvsConfig,
    obs: obs::Registry,
}

impl OvsEstimator {
    /// Creates the estimator.
    pub fn new(cfg: OvsConfig) -> Self {
        Self {
            cfg,
            obs: obs::global().clone(),
        }
    }

    /// Redirects training metrics to `registry`.
    pub fn with_registry(mut self, registry: obs::Registry) -> Self {
        self.obs = registry;
        self
    }
}

impl TodEstimator for OvsEstimator {
    fn name(&self) -> &str {
        self.cfg.variant.name()
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        let trainer = OvsTrainer::new(self.cfg.clone()).with_registry(self.obs.clone());
        let (_, mean_tod, _) = trainer.run_ensembled(input)?;
        Ok(matrix_to_tod(&mean_tod))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OvsVariant;
    use crate::estimator::TrainTriple;
    use datagen::{Dataset, TodPattern};

    fn tiny_dataset() -> Dataset {
        let spec = datagen::dataset::DatasetSpec {
            t: 4,
            interval_s: 120.0,
            train_samples: 4,
            demand_scale: 0.05,
            seed: 3,
        };
        Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
    }

    fn to_input<'a>(
        ds: &'a Dataset,
        triples: &'a [TrainTriple],
        census: Option<&'a [f64]>,
    ) -> EstimatorInput<'a> {
        let mut b = EstimatorInput::builder(&ds.net, &ds.ods)
            .interval_s(ds.sim_config.interval_s)
            .sim_seed(ds.sim_config.seed)
            .train(triples)
            .observed_speed(&ds.observed_speed);
        if let Some(c) = census {
            b = b.census(c);
        }
        b.build()
    }

    #[test]
    fn stage1_reduces_v2s_loss() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        let cfg = OvsConfig::tiny();
        let mut model = OvsModel::new(&ds.net, &ds.ods, 4, input.interval_s, cfg.clone()).unwrap();
        let trainer = OvsTrainer::new(cfg);
        let losses = trainer.train_v2s(&mut model, &ds.train).unwrap();
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(tail < head, "stage 1: {head} -> {tail}");
    }

    #[test]
    fn full_pipeline_runs_and_fit_loss_drops() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        let trainer = OvsTrainer::new(OvsConfig::tiny());
        let (mut model, report) = trainer.run(&input).unwrap();
        let fit = &report.fit_losses;
        assert!(fit.last().unwrap() < fit.first().unwrap(), "{fit:?}");
        let tod = model.recovered_tod();
        assert_eq!(tod.shape(), (ds.n_od(), 4));
        assert!(tod.is_finite());
    }

    #[test]
    fn estimator_interface_produces_valid_tod() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        let mut est = OvsEstimator::new(OvsConfig::tiny());
        assert_eq!(est.name(), "OVS");
        let tod = est.estimate(&input).unwrap();
        assert_eq!(tod.rows(), ds.n_od());
        assert!(tod.is_non_negative());
        assert!(tod.is_finite());
    }

    #[test]
    fn trainer_records_per_stage_metrics() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        let reg = obs::Registry::new();
        let trainer = OvsTrainer::new(OvsConfig::tiny()).with_registry(reg.clone());
        let (_, report) = trainer.run(&input).unwrap();
        assert_eq!(
            reg.counter("trainer_v2s_steps_total").get() as usize,
            report.v2s_losses.len()
        );
        assert_eq!(
            reg.counter("trainer_tod2v_steps_total").get() as usize,
            report.tod2v_losses.len()
        );
        assert_eq!(
            reg.counter("trainer_fit_steps_total").get() as usize,
            report.fit_losses.len()
        );
        assert_eq!(
            reg.gauge("trainer_fit_final_loss").get(),
            *report.fit_losses.last().unwrap()
        );
        let hist = reg.histogram("trainer_v2s_loss", obs::LOSS_BUCKETS);
        assert_eq!(hist.count() as usize, report.v2s_losses.len());
        let norms = reg.histogram("trainer_fit_grad_norm", obs::NORM_BUCKETS);
        assert_eq!(norms.count() as usize, report.fit_losses.len());
        // Wall-clock gauges exist but stay out of the stable snapshot.
        let stable = reg.to_json_stable();
        assert!(stable.contains("trainer_v2s_final_loss"));
        assert!(!stable.contains("trainer_v2s_seconds"));
    }

    #[test]
    fn census_loss_pushes_daily_totals_toward_census() {
        let ds = tiny_dataset();
        let census: Vec<f64> = ds.census.as_slice().to_vec();

        // Without the constraint:
        let input_plain = to_input(&ds, &ds.train, None);
        let mut est = OvsEstimator::new(OvsConfig::tiny().with_seed(5));
        let tod_plain = est.estimate(&input_plain).unwrap();

        // With the constraint:
        let input_census = to_input(&ds, &ds.train, Some(&census));
        let mut est = OvsEstimator::new(OvsConfig::tiny().with_seed(5).with_aux_weights(0.05, 0.0));
        let tod_census = est.estimate(&input_census).unwrap();

        let err = |tod: &TodTensor| -> f64 {
            (0..tod.rows())
                .map(|i| {
                    let s = tod.row_total(roadnet::OdPairId(i));
                    (s - census[i]).powi(2)
                })
                .sum::<f64>()
                / tod.rows() as f64
        };
        assert!(
            err(&tod_census) < err(&tod_plain),
            "census-constrained totals must sit closer to census: {} vs {}",
            err(&tod_census),
            err(&tod_plain)
        );
    }

    #[test]
    fn demand_calibration_tracks_observed_speed() {
        // Build two observations from the same corpus: a light scenario
        // and a heavy one. The calibrated level must be larger for the
        // heavy (slower) observation.
        let ds = tiny_dataset();
        let (mut light_idx, mut heavy_idx) = (0usize, 0usize);
        for (k, s) in ds.train.iter().enumerate() {
            if s.tod.total() < ds.train[light_idx].tod.total() {
                light_idx = k;
            }
            if s.tod.total() > ds.train[heavy_idx].tod.total() {
                heavy_idx = k;
            }
        }
        let mut input_l = to_input(&ds, &ds.train, None);
        input_l.observed_speed = &ds.train[light_idx].speed;
        let mut input_h = to_input(&ds, &ds.train, None);
        input_h.observed_speed = &ds.train[heavy_idx].speed;
        let level_l = calibrate_demand_level(&input_l);
        let level_h = calibrate_demand_level(&input_h);
        assert!(
            level_h > level_l,
            "heavier scenario must calibrate higher: {level_h} vs {level_l}"
        );
        // And the levels bracket the corresponding true mean cells
        // loosely (within the corpus range).
        let cells = (ds.n_od() * ds.n_intervals()) as f64;
        let mean_l = ds.train[light_idx].tod.total() / cells;
        let mean_h = ds.train[heavy_idx].tod.total() / cells;
        assert!(level_l < mean_h && level_h > mean_l);
    }

    #[test]
    fn huber_fit_configuration_runs() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        let mut cfg = OvsConfig::tiny();
        cfg.fit_huber_delta = 0.0; // plain MSE path
        let (mut m0, _) = OvsTrainer::new(cfg.clone()).run(&input).unwrap();
        cfg.fit_huber_delta = 1.0;
        let (mut m1, _) = OvsTrainer::new(cfg).run(&input).unwrap();
        assert!(m0.recovered_tod().is_finite());
        assert!(m1.recovered_tod().is_finite());
        // The two losses optimise different objectives; outputs differ.
        assert_ne!(m0.recovered_tod(), m1.recovered_tod());
    }

    #[test]
    fn speed_limit_aux_keeps_fit_physical() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        let cfg = OvsConfig {
            w_speed_limit: 1.0,
            ..OvsConfig::tiny()
        };
        let trainer = OvsTrainer::new(cfg);
        let (mut model, report) = trainer.run(&input).unwrap();
        assert!(report.final_fit().unwrap().is_finite());
        let (_, _, v) = model.forward_full(false);
        // Sigmoid-bounded output cannot exceed v_max anyway; the aux loss
        // must at least not destabilise anything.
        assert!(v.is_finite());
    }

    #[test]
    fn empty_corpus_is_an_error() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &[], None);
        let trainer = OvsTrainer::new(OvsConfig::tiny());
        assert!(trainer.run(&input).is_err());
    }

    #[test]
    fn ablated_variants_run_end_to_end() {
        let ds = tiny_dataset();
        let input = to_input(&ds, &ds.train, None);
        for variant in [OvsVariant::NoTodGen, OvsVariant::NoTod2V, OvsVariant::NoV2S] {
            let mut est = OvsEstimator::new(OvsConfig::tiny().with_variant(variant));
            let tod = est.estimate(&input).unwrap();
            assert!(tod.is_finite(), "{variant:?}");
        }
    }
}
