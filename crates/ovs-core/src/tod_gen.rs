//! TOD Generation module (paper §IV-B, Eqs. 1-2).
//!
//! "Following the convention in the literature, we assume the TOD are
//! generated from Gaussian priors": a fixed Gaussian seed `z_i` per OD
//! pair is pushed through two sigmoid FC layers,
//!
//! ```text
//! h_i = sigmoid(W1 z_i + b1)
//! g_i = sigmoid(W2 h_i + b2)
//! ```
//!
//! and scaled by `g_max` to trip-count range. The sigmoid bounding plus
//! the low-rank seed mapping act as a smoothness prior over the recovered
//! TOD — this is what the Table IX ablation removes ([`OvsVariant::NoTodGen`]
//! replaces the module with a free unconstrained tensor).

use crate::config::{OvsConfig, OvsVariant};
use neural::layers::{ActKind, Activation, Dense, Layer, Sequential};
use neural::rng::Rng64;
use neural::Matrix;

/// The TOD generator: produces an `(N, T)` trip-count matrix.
pub struct TodGeneration {
    inner: TodGenInner,
    g_max: f64,
    n_od: usize,
    t: usize,
}

enum TodGenInner {
    /// Full model: fixed Gaussian seeds through a sigmoid FC stack.
    Structured { seeds: Matrix, net: Sequential },
    /// Ablation: a free parameter tensor (sigmoid-squashed so outputs stay
    /// bounded, but with no shared structure across ODs).
    Free {
        logits: Matrix,
        grad: Matrix,
        cache_y: Option<Matrix>,
    },
}

impl TodGeneration {
    /// Builds the generator for `n_od` OD pairs over `t` intervals.
    pub fn new(n_od: usize, t: usize, cfg: &OvsConfig, rng: &mut Rng64) -> Self {
        let inner = if cfg.variant == OvsVariant::NoTodGen {
            TodGenInner::Free {
                logits: Matrix::zeros(n_od, t),
                grad: Matrix::zeros(n_od, t),
                cache_y: None,
            }
        } else {
            let mut seeds = Matrix::zeros(n_od, t);
            rng.fill_normal(seeds.as_mut_slice());
            let net = Sequential::new(vec![
                Box::new(Dense::new(t, cfg.tod_hidden, rng)),
                Box::new(Activation::new(ActKind::Sigmoid)),
                Box::new(Dense::new(cfg.tod_hidden, t, rng)),
                Box::new(Activation::new(ActKind::Sigmoid)),
            ]);
            TodGenInner::Structured { seeds, net }
        };
        Self {
            inner,
            g_max: cfg.g_max,
            n_od,
            t,
        }
    }

    /// Output shape `(N, T)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_od, self.t)
    }

    /// Generates the TOD matrix (trip counts, in `[0, g_max]`).
    pub fn forward(&mut self, train: bool) -> Matrix {
        match &mut self.inner {
            TodGenInner::Structured { seeds, net } => {
                let mut g = net.forward(seeds, train);
                g.scale(self.g_max);
                g
            }
            TodGenInner::Free {
                logits, cache_y, ..
            } => {
                let y = logits.map(|v| 1.0 / (1.0 + (-v).exp()));
                *cache_y = Some(y.clone());
                let mut g = y;
                g.scale(self.g_max);
                g
            }
        }
    }

    /// Backpropagates `d loss / d TOD` into the generator parameters.
    pub fn backward(&mut self, d_tod: &Matrix) {
        let mut d = d_tod.clone();
        d.scale(self.g_max);
        match &mut self.inner {
            TodGenInner::Structured { net, .. } => {
                let _ = net.backward(&d);
            }
            TodGenInner::Free { grad, cache_y, .. } => {
                let y = cache_y.as_ref().expect("backward before forward");
                for ((g, dv), &yv) in grad
                    .as_mut_slice()
                    .iter_mut()
                    .zip(d.as_slice())
                    .zip(y.as_slice())
                {
                    *g += dv * yv * (1.0 - yv);
                }
            }
        }
    }

    /// Visits `(param, grad)` pairs.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        match &mut self.inner {
            TodGenInner::Structured { net, .. } => net.visit_params(f),
            TodGenInner::Free { logits, grad, .. } => f(logits, grad),
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill_zero());
    }

    /// Re-randomises the Gaussian seeds (the paper feeds "random seeds" at
    /// test time; re-seeding restarts the fit from a fresh draw).
    pub fn reseed(&mut self, rng: &mut Rng64) {
        if let TodGenInner::Structured { seeds, .. } = &mut self.inner {
            rng.fill_normal(seeds.as_mut_slice());
        }
    }

    /// Prepares the generator for the test-time fit: the output starts
    /// *flat* at `fraction * g_max` (the corpus demand level) by setting
    /// the final bias to the corresponding logit and shrinking the final
    /// weights. The fit then only introduces per-OD variation that the
    /// speed evidence actually demands — the Gaussian-prior smoothing the
    /// paper's TOD-generation design is meant to provide. Without this,
    /// the randomly initialised stack starts with arbitrary cross-OD
    /// structure the underdetermined speed loss cannot remove.
    pub fn set_output_level(&mut self, fraction: f64) {
        let f = fraction.clamp(1e-3, 1.0 - 1e-3);
        let logit = (f / (1.0 - f)).ln();
        match &mut self.inner {
            TodGenInner::Structured { net, .. } => {
                // Parameter visit order is W1, b1, W2, b2; the final pair
                // belongs to the output Dense layer.
                let mut count = 0usize;
                net.visit_params(&mut |_, _| count += 1);
                let mut idx = 0usize;
                net.visit_params(&mut |p, _| {
                    if idx == count - 2 {
                        p.scale(0.05); // flatten the output weights
                    } else if idx == count - 1 {
                        p.map_inplace(|_| logit);
                    }
                    idx += 1;
                });
            }
            TodGenInner::Free { logits, .. } => {
                logits.map_inplace(|_| logit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OvsConfig {
        OvsConfig::tiny()
    }

    #[test]
    fn output_bounded_by_g_max() {
        let mut rng = Rng64::new(0);
        let mut gen = TodGeneration::new(6, 4, &cfg(), &mut rng);
        let g = gen.forward(false);
        assert_eq!(g.shape(), (6, 4));
        assert!(g.as_slice().iter().all(|&v| v >= 0.0 && v <= cfg().g_max));
    }

    #[test]
    fn free_variant_bounded_too() {
        let mut rng = Rng64::new(0);
        let c = cfg().with_variant(OvsVariant::NoTodGen);
        let mut gen = TodGeneration::new(6, 4, &c, &mut rng);
        let g = gen.forward(false);
        assert!(g.as_slice().iter().all(|&v| v >= 0.0 && v <= c.g_max));
        // at zero logits, output is g_max / 2
        assert!((g.get(0, 0) - c.g_max / 2.0).abs() < 1e-9);
    }

    /// Fitting the generator to a target TOD must reduce the loss — this is
    /// exactly the paper's test-time procedure.
    fn fit(variant: OvsVariant) -> (f64, f64) {
        use neural::loss::mse;
        use neural::optim::{Adam, Optimizer};
        let c = cfg().with_variant(variant);
        let mut rng = Rng64::new(1);
        let mut gen = TodGeneration::new(5, 4, &c, &mut rng);
        let target = Matrix::from_fn(5, 4, |r, t| 3.0 + (r as f64) + (t as f64));
        let mut opt = Adam::new(0.05);
        let first = mse(&gen.forward(true), &target).0;
        let mut last = first;
        for _ in 0..300 {
            let g = gen.forward(true);
            let (loss, grad) = mse(&g, &target);
            gen.backward(&grad);
            let mut slot = 0;
            opt.begin_step();
            gen.visit_params(&mut |p, gr| {
                opt.apply(slot, p, gr);
                slot += 1;
            });
            gen.zero_grad();
            last = loss;
        }
        (first, last)
    }

    #[test]
    fn structured_generator_fits_target() {
        let (first, last) = fit(OvsVariant::Full);
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn free_generator_fits_target() {
        let (first, last) = fit(OvsVariant::NoTodGen);
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut rng = Rng64::new(2);
        let mut gen = TodGeneration::new(4, 3, &cfg(), &mut rng);
        let g = gen.forward(true);
        gen.backward(&g); // d loss = g itself
        let mut any_zero = false;
        gen.visit_params(&mut |_, gr| {
            if gr.norm() == 0.0 {
                any_zero = true;
            }
        });
        assert!(!any_zero, "every parameter must receive gradient");
    }

    #[test]
    fn reseed_changes_structured_output() {
        let mut rng = Rng64::new(3);
        let mut gen = TodGeneration::new(4, 3, &cfg(), &mut rng);
        let a = gen.forward(false);
        gen.reseed(&mut rng);
        let b = gen.forward(false);
        assert_ne!(a, b);
    }
}
