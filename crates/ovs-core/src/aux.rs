//! Auxiliary losses (paper §IV-E, Table II, Eq. 13).
//!
//! The inverse problem is ill-posed: many TOD tensors explain the same
//! speed field (§I, challenge 3). Auxiliary data prunes the solution set:
//!
//! * **census (LEHD)** constrains each OD's *daily total*:
//!   `l_aux = mean_i (sum_t g_{i,t} - c_i)^2` — the exact form given in
//!   §IV-E;
//! * **cameras** constrain the volume series of a few instrumented links:
//!   `l_aux = mean over instrumented cells (q_{j,t} - obs_{j,t})^2`.
//!
//! Both return `(loss, gradient)` so the trainer can fold them into the
//! overall objective `l = l_main + w_g l_g + w_q l_q` (Eq. 13).

use neural::Matrix;
use roadnet::LinkId;

/// Census constraint on daily OD totals. `g` is the generated TOD
/// `(N, T)`; `totals` the LEHD daily counts per OD. Returns the loss and
/// `d loss / d g`.
pub fn census_loss(g: &Matrix, totals: &[f64]) -> (f64, Matrix) {
    assert_eq!(g.rows(), totals.len(), "census totals must cover every OD");
    let n = g.rows().max(1) as f64;
    let mut grad = Matrix::zeros(g.rows(), g.cols());
    let mut loss = 0.0;
    for (i, &target) in totals.iter().enumerate() {
        let row_sum: f64 = g.row(i).iter().sum();
        let diff = row_sum - target;
        loss += diff * diff;
        let dv = 2.0 * diff / n;
        for v in grad.row_mut(i) {
            *v = dv;
        }
    }
    (loss / n, grad)
}

/// Camera constraint on instrumented link volumes. `q` is the predicted
/// volume `(M, T)`; `links`/`observations` the instrumented links and
/// their observed series. Returns the loss and `d loss / d q` (zero on
/// uninstrumented links).
pub fn camera_loss(q: &Matrix, links: &[LinkId], observations: &[Vec<f64>]) -> (f64, Matrix) {
    assert_eq!(
        links.len(),
        observations.len(),
        "one observation series per instrumented link"
    );
    let mut grad = Matrix::zeros(q.rows(), q.cols());
    if links.is_empty() {
        return (0.0, grad);
    }
    let cells = (links.len() * q.cols()).max(1) as f64;
    let mut loss = 0.0;
    for (l, obs) in links.iter().zip(observations) {
        assert_eq!(obs.len(), q.cols(), "observation horizon mismatch");
        for (t, &o) in obs.iter().enumerate() {
            let diff = q.get(l.index(), t) - o;
            loss += diff * diff;
            grad.set(l.index(), t, 2.0 * diff / cells);
        }
    }
    (loss / cells, grad)
}

/// Speed-limit constraint (Table II's static speed-level data): predicted
/// speeds must not exceed the legal limits. Returns
/// `mean over cells of max(0, v - limit)^2` and its gradient. Zero loss
/// whenever predictions are physical, so the term only activates when the
/// learned V2S extrapolates badly.
pub fn speed_limit_loss(v: &Matrix, limits: &[f64]) -> (f64, Matrix) {
    assert_eq!(v.rows(), limits.len(), "one speed limit per link required");
    let cells = v.len().max(1) as f64;
    let mut grad = Matrix::zeros(v.rows(), v.cols());
    let mut loss = 0.0;
    for (j, &limit) in limits.iter().enumerate() {
        for t in 0..v.cols() {
            let excess = v.get(j, t) - limit;
            if excess > 0.0 {
                loss += excess * excess;
                grad.set(j, t, 2.0 * excess / cells);
            }
        }
    }
    (loss / cells, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_zero_when_totals_match() {
        let g = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (loss, grad) = census_loss(&g, &[3.0, 7.0]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn census_gradient_pushes_toward_total() {
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        // total 2, target 6: gradient must be negative (increase g)
        let (loss, grad) = census_loss(&g, &[6.0]);
        assert!(loss > 0.0);
        assert!(grad.as_slice().iter().all(|&v| v < 0.0));
        // both intervals share the same gradient (d row-sum / d cell = 1)
        assert_eq!(grad.get(0, 0), grad.get(0, 1));
    }

    #[test]
    fn census_gradient_matches_finite_difference() {
        let g = Matrix::from_vec(2, 3, vec![1.0, 2.0, 0.5, 4.0, 1.0, 2.0]).unwrap();
        let totals = [5.0, 6.0];
        let (_, grad) = census_loss(&g, &totals);
        let eps = 1e-6;
        for idx in 0..6 {
            let mut gp = g.clone();
            gp.as_mut_slice()[idx] += eps;
            let mut gm = g.clone();
            gm.as_mut_slice()[idx] -= eps;
            let num = (census_loss(&gp, &totals).0 - census_loss(&gm, &totals).0) / (2.0 * eps);
            assert!((num - grad.as_slice()[idx]).abs() < 1e-6);
        }
    }

    #[test]
    fn camera_loss_only_touches_instrumented_links() {
        let q = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let links = [LinkId(1)];
        let obs = vec![vec![3.0, 0.0]];
        let (loss, grad) = camera_loss(&q, &links, &obs);
        assert!(loss > 0.0);
        // rows 0 and 2 untouched
        assert_eq!(grad.row(0), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[0.0, 0.0]);
        assert_eq!(grad.get(1, 0), 0.0); // matches observation
        assert!(grad.get(1, 1) > 0.0); // predicted 4 > observed 0
    }

    #[test]
    fn camera_empty_is_zero() {
        let q = Matrix::filled(2, 2, 1.0);
        let (loss, grad) = camera_loss(&q, &[], &[]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn speed_limit_loss_zero_when_physical() {
        let v = Matrix::from_vec(2, 2, vec![5.0, 8.0, 10.0, 11.0]).unwrap();
        let (loss, grad) = speed_limit_loss(&v, &[9.0, 12.0]);
        // only cell (0,0)? no: row 0 limit 9 -> 5,8 ok; row 1 limit 12 -> ok
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn speed_limit_loss_penalises_excess_only() {
        let v = Matrix::from_vec(2, 2, vec![10.0, 8.0, 10.0, 14.0]).unwrap();
        let (loss, grad) = speed_limit_loss(&v, &[9.0, 12.0]);
        assert!(loss > 0.0);
        assert!(grad.get(0, 0) > 0.0); // 10 > 9
        assert_eq!(grad.get(0, 1), 0.0); // 8 < 9
        assert!(grad.get(1, 1) > 0.0); // 14 > 12
    }

    #[test]
    fn speed_limit_gradient_matches_finite_difference() {
        let v = Matrix::from_vec(1, 3, vec![9.5, 8.0, 12.0]).unwrap();
        let limits = [9.0];
        let (_, grad) = speed_limit_loss(&v, &limits);
        let eps = 1e-6;
        for i in 0..3 {
            let mut vp = v.clone();
            vp.as_mut_slice()[i] += eps;
            let mut vm = v.clone();
            vm.as_mut_slice()[i] -= eps;
            let num =
                (speed_limit_loss(&vp, &limits).0 - speed_limit_loss(&vm, &limits).0) / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn camera_gradient_matches_finite_difference() {
        let q = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let links = [LinkId(0), LinkId(1)];
        let obs = vec![vec![0.5, 1.5], vec![2.0, 5.0]];
        let (_, grad) = camera_loss(&q, &links, &obs);
        let eps = 1e-6;
        for idx in 0..4 {
            let mut qp = q.clone();
            qp.as_mut_slice()[idx] += eps;
            let mut qm = q.clone();
            qm.as_mut_slice()[idx] -= eps;
            let num =
                (camera_loss(&qp, &links, &obs).0 - camera_loss(&qm, &links, &obs).0) / (2.0 * eps);
            assert!((num - grad.as_slice()[idx]).abs() < 1e-6);
        }
    }
}
