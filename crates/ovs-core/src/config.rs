//! OVS configuration (the paper's Tables IV and V).

use serde::{Deserialize, Serialize};

/// Recurrent cell used by the Volume-Speed mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RnnKind {
    /// The paper's choice (Table IV).
    Lstm,
    /// A lighter alternative with ~25% fewer parameters.
    Gru,
}

/// Which modules run in their full form — the ablation axis of Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OvsVariant {
    /// The full model.
    Full,
    /// "OVS - TOD": the structured sigmoid TOD generator is replaced by an
    /// unconstrained free tensor (plain parameters, no Gaussian-seed FC
    /// stack).
    NoTodGen,
    /// "OVS - TOD2V": the dynamic attention is replaced by *static*
    /// learned lag weights — no congestion-dependent re-weighting.
    NoTod2V,
    /// "OVS - V2S": the LSTM stack is replaced by a time-distributed FC
    /// network (no recurrence).
    NoV2S,
}

impl OvsVariant {
    /// Display name as printed in Table IX.
    pub fn name(self) -> &'static str {
        match self {
            OvsVariant::Full => "OVS",
            OvsVariant::NoTodGen => "OVS - TOD",
            OvsVariant::NoTod2V => "OVS - TOD2V",
            OvsVariant::NoV2S => "OVS - V2S",
        }
    }
}

/// Hyperparameters of the OVS model and its training pipeline.
///
/// Defaults are the *fast* profile used by the experiment binaries;
/// [`OvsConfig::paper`] reproduces Tables IV/V verbatim (LSTM(128),
/// 10 000 epochs) for users with time to spare.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OvsConfig {
    /// Hidden width of the TOD-generation FC stack (paper: 16).
    pub tod_hidden: usize,
    /// Hidden width of the OD-Route FC (paper: 16). Only used when
    /// `od_route_fc` is set.
    pub route_hidden: usize,
    /// Number of candidate routes per OD pair (1 = the paper's
    /// single-route simplification; >1 enables the multi-route extension:
    /// Yen's k-shortest routes with a learned softmax split per OD —
    /// the paper's stated future-work direction).
    pub k_routes: usize,
    /// Use the Eq. 3 FC stack to map OD counts to route counts. Off by
    /// default: under the paper's own single-route simplification
    /// ("one OD will only correspond to one route, and they will share
    /// the index i", SS IV-C) route counts equal OD counts.
    pub od_route_fc: bool,
    /// Channels of the Route-e convolution stack (paper: two 1x3 convs).
    pub conv_channels: usize,
    /// Lookback window `W` of the dynamic attention, in intervals.
    pub attention_window: usize,
    /// Hidden width of the Volume-Speed LSTMs (paper: 128).
    pub lstm_hidden: usize,
    /// Recurrent cell of the Volume-Speed mapping (paper: LSTM).
    pub rnn_kind: RnnKind,
    /// Learning rate (paper: 1e-3).
    pub lr: f64,
    /// Dropout rate on the V2S head (paper: 0.3).
    pub dropout: f64,
    /// Epochs for stage 1 (V2S fit).
    pub epochs_v2s: usize,
    /// Epochs for stage 2 (TOD2V fit through frozen V2S).
    pub epochs_tod2v: usize,
    /// Epochs for the test-time TOD-generation fit.
    pub epochs_fit: usize,
    /// Number of independent test-time fits (fresh Gaussian seeds) whose
    /// recovered TODs are averaged. The inverse problem has multiple
    /// solutions (SS I, challenge 3); averaging independent fits keeps the
    /// evidence-supported structure and cancels seed-dependent noise.
    pub fit_restarts: usize,
    /// Upper bound on trips per OD per interval; scales the sigmoid output
    /// of the TOD generator.
    pub g_max: f64,
    /// Upper bound on link speed (m/s); scales the sigmoid V2S output.
    pub v_max: f64,
    /// Volume normalisation divisor for the V2S input.
    pub q_norm: f64,
    /// Gradient-norm clip for the recurrent stack.
    pub grad_clip: f64,
    /// Weight of the generated-volume loss during stage 2 (Fig 8 trains
    /// the TOD-Volume mapping with "generated TOD, volume, and speed";
    /// this term anchors the intermediate volumes). 0 recovers the
    /// speed-only variant discussed in SS V-E.
    pub w_volume_stage2: f64,
    /// Huber transition point (m/s) for the test-time speed residuals; 0
    /// falls back to plain squared error. Links whose observed speed the
    /// learned volume-speed mapping cannot represent (road work,
    /// incidents — RQ3) otherwise distort the recovered TOD: beyond the
    /// delta their gradient saturates instead of growing linearly.
    pub fit_huber_delta: f64,
    /// Weight of the Gaussian prior on the generated TOD during the
    /// test-time fit (SS IV-B: "we assume the TOD are generated from
    /// Gaussian priors"). Shrinks cells toward the corpus demand level
    /// except where the speed evidence disagrees; 0 disables.
    pub w_prior: f64,
    /// Weight of the census auxiliary loss (`w_g` in Eq. 13); 0 disables.
    pub w_census: f64,
    /// Weight of the camera auxiliary loss (`w_q` in Eq. 13); 0 disables.
    pub w_camera: f64,
    /// Weight of the speed-limit auxiliary loss (`w_v` in Eq. 13, Table
    /// II's static speed data); 0 disables.
    pub w_speed_limit: f64,
    /// RNG seed for initialisation and Gaussian seeds.
    pub seed: u64,
    /// Ablation variant.
    pub variant: OvsVariant,
}

impl Default for OvsConfig {
    fn default() -> Self {
        Self {
            tod_hidden: 16,
            route_hidden: 16,
            k_routes: 1,
            od_route_fc: false,
            conv_channels: 4,
            attention_window: 4,
            lstm_hidden: 32,
            rnn_kind: RnnKind::Lstm,
            lr: 1e-3,
            dropout: 0.0,
            epochs_v2s: 600,
            epochs_tod2v: 300,
            epochs_fit: 1500,
            fit_restarts: 3,
            g_max: 40.0,
            v_max: 20.0,
            q_norm: 50.0,
            grad_clip: 5.0,
            w_volume_stage2: 0.5,
            fit_huber_delta: 1.2,
            w_prior: 0.3,
            w_census: 0.0,
            w_camera: 0.0,
            w_speed_limit: 0.0,
            seed: 0,
            variant: OvsVariant::Full,
        }
    }
}

impl OvsConfig {
    /// The paper's exact hyperparameters (Tables IV-V): LSTM(128),
    /// learning rate 1e-3, dropout 0.3, 10 000 epochs. Slow; provided for
    /// completeness.
    pub fn paper() -> Self {
        Self {
            lstm_hidden: 128,
            dropout: 0.3,
            epochs_v2s: 10_000,
            epochs_tod2v: 10_000,
            epochs_fit: 10_000,
            ..Self::default()
        }
    }

    /// A reduced profile for tests (tiny widths, few epochs).
    pub fn tiny() -> Self {
        Self {
            tod_hidden: 8,
            route_hidden: 8,
            conv_channels: 2,
            attention_window: 3,
            lstm_hidden: 8,
            epochs_v2s: 40,
            epochs_tod2v: 30,
            epochs_fit: 60,
            ..Self::default()
        }
    }

    /// Sets the ablation variant.
    pub fn with_variant(mut self, variant: OvsVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the auxiliary losses with the given weights.
    pub fn with_aux_weights(mut self, w_census: f64, w_camera: f64) -> Self {
        self.w_census = w_census;
        self.w_camera = w_camera;
        self
    }

    /// Adapts the scale parameters (`g_max`, `v_max`, `q_norm`) to a
    /// training corpus so the sigmoid-bounded modules start near the data
    /// range instead of saturating. The structural hyperparameters are
    /// untouched.
    pub fn adapted_to_corpus(mut self, train: &[crate::estimator::TrainTriple]) -> Self {
        let mut g_max = 0.0f64;
        let mut v_max = 0.0f64;
        let mut q_max = 0.0f64;
        for s in train {
            g_max = s.tod.as_slice().iter().fold(g_max, |a, &b| a.max(b));
            v_max = s.speed.as_slice().iter().fold(v_max, |a, &b| a.max(b));
            q_max = s.volume.as_slice().iter().fold(q_max, |a, &b| a.max(b));
        }
        if g_max > 0.0 {
            self.g_max = g_max * 1.3;
        }
        if v_max > 0.0 {
            self.v_max = v_max * 1.1;
        }
        if q_max > 0.0 {
            self.q_norm = q_max;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_tables() {
        let c = OvsConfig::paper();
        assert_eq!(c.tod_hidden, 16);
        assert_eq!(c.route_hidden, 16);
        assert_eq!(c.lstm_hidden, 128);
        assert_eq!(c.lr, 1e-3);
        assert_eq!(c.dropout, 0.3);
        assert_eq!(c.epochs_v2s, 10_000);
    }

    #[test]
    fn variant_names_match_table_ix() {
        assert_eq!(OvsVariant::Full.name(), "OVS");
        assert_eq!(OvsVariant::NoTodGen.name(), "OVS - TOD");
        assert_eq!(OvsVariant::NoTod2V.name(), "OVS - TOD2V");
        assert_eq!(OvsVariant::NoV2S.name(), "OVS - V2S");
    }

    #[test]
    fn builders_compose() {
        let c = OvsConfig::tiny()
            .with_variant(OvsVariant::NoV2S)
            .with_seed(9)
            .with_aux_weights(0.1, 0.2);
        assert_eq!(c.variant, OvsVariant::NoV2S);
        assert_eq!(c.seed, 9);
        assert_eq!(c.w_census, 0.1);
        assert_eq!(c.w_camera, 0.2);
    }
}
