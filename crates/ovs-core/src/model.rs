//! The assembled OVS model (paper Figure 3).

use crate::config::OvsConfig;
use crate::routes::RouteTable;
use crate::tod2v::TodVolumeMapping;
use crate::tod_gen::TodGeneration;
use crate::v2s::VolumeSpeedMapping;
use neural::rng::Rng64;
use neural::Matrix;
use roadnet::{OdSet, Result, RoadNetwork};

/// The three-module OVS model. Modules are exposed individually because
/// the training pipeline (§V-E) trains them in separate stages with
/// different parts frozen.
pub struct OvsModel {
    /// TOD Generation (§IV-B).
    pub tod_gen: TodGeneration,
    /// TOD-Volume mapping (§IV-C).
    pub tod2v: TodVolumeMapping,
    /// Volume-Speed mapping (§IV-D).
    pub v2s: VolumeSpeedMapping,
    cfg: OvsConfig,
    t: usize,
    interval_s: f64,
}

impl OvsModel {
    /// Builds the model for `(net, ods)` over `t` intervals of
    /// `interval_s` seconds.
    pub fn new(
        net: &RoadNetwork,
        ods: &OdSet,
        t: usize,
        interval_s: f64,
        cfg: OvsConfig,
    ) -> Result<Self> {
        let mut rng = Rng64::new(cfg.seed);
        let routes = RouteTable::build_with_k(net, ods, interval_s, cfg.k_routes.max(1))?;
        Ok(Self {
            tod_gen: TodGeneration::new(ods.len(), t, &cfg, &mut rng),
            tod2v: TodVolumeMapping::new(routes, t, &cfg, &mut rng),
            v2s: VolumeSpeedMapping::new(&cfg, &mut rng),
            cfg,
            t,
            interval_s,
        })
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &OvsConfig {
        &self.cfg
    }

    /// Number of intervals `T`.
    pub fn intervals(&self) -> usize {
        self.t
    }

    /// Interval length in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Full generative pass: seeds -> TOD -> volume -> speed. Returns
    /// `(tod, volume, speed)` matrices.
    pub fn forward_full(&mut self, train: bool) -> (Matrix, Matrix, Matrix) {
        let g = self.tod_gen.forward(train);
        let q = self.tod2v.forward(&g, train);
        let v = self.v2s.forward(&q, train);
        (g, q, v)
    }

    /// Deterministic partial pass: a given TOD through the two mappings.
    pub fn predict_from_tod(&mut self, g: &Matrix, train: bool) -> (Matrix, Matrix) {
        let q = self.tod2v.forward(g, train);
        let v = self.v2s.forward(&q, train);
        (q, v)
    }

    /// The currently recovered TOD (evaluation mode forward of the
    /// generator).
    pub fn recovered_tod(&mut self) -> Matrix {
        self.tod_gen.forward(false)
    }

    /// Replaces the TOD generator with a freshly initialised one (new
    /// Gaussian seeds and weights) for an independent test-time fit.
    pub fn reset_generator(&mut self, seed: u64) {
        let mut rng = neural::rng::Rng64::new(seed);
        let (n_od, t) = self.tod_gen.shape();
        self.tod_gen = crate::tod_gen::TodGeneration::new(n_od, t, &self.cfg, &mut rng);
    }

    /// Total scalar parameter count over all modules.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.tod_gen.visit_params(&mut |p, _| n += p.len());
        self.tod2v.visit_params(&mut |p, _| n += p.len());
        n + self.v2s.param_count()
    }

    /// The `(rows, cols)` of every parameter slot in the deterministic
    /// traversal order — the shape signature recorded in artifact
    /// provenance and checked before a checkpoint is imported.
    pub fn shape_signature(&mut self) -> Vec<(usize, usize)> {
        let mut shapes = Vec::new();
        self.tod_gen
            .visit_params(&mut |p, _| shapes.push(p.shape()));
        self.tod2v.visit_params(&mut |p, _| shapes.push(p.shape()));
        self.v2s.visit_params(&mut |p, _| shapes.push(p.shape()));
        shapes
    }

    /// Exports every parameter matrix in the deterministic traversal
    /// order (TOD generation, TOD-Volume, Volume-Speed) — a checkpoint
    /// that can be restored into a model built with the same
    /// configuration.
    pub fn export_weights(&mut self) -> Vec<Matrix> {
        let mut out = Vec::new();
        self.tod_gen.visit_params(&mut |p, _| out.push(p.clone()));
        self.tod2v.visit_params(&mut |p, _| out.push(p.clone()));
        self.v2s.visit_params(&mut |p, _| out.push(p.clone()));
        out
    }

    /// Restores a checkpoint produced by [`OvsModel::export_weights`] on a
    /// model with the same configuration. Fails on any count or shape
    /// mismatch without modifying the model.
    pub fn import_weights(&mut self, weights: &[Matrix]) -> Result<()> {
        use roadnet::RoadnetError;
        // Validate first.
        let mut shapes = Vec::new();
        self.tod_gen
            .visit_params(&mut |p, _| shapes.push(p.shape()));
        self.tod2v.visit_params(&mut |p, _| shapes.push(p.shape()));
        self.v2s.visit_params(&mut |p, _| shapes.push(p.shape()));
        if shapes.len() != weights.len() {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("{} parameter tensors", shapes.len()),
                actual: format!("{}", weights.len()),
            });
        }
        for (i, (shape, w)) in shapes.iter().zip(weights).enumerate() {
            if *shape != w.shape() {
                return Err(RoadnetError::ShapeMismatch {
                    expected: format!("parameter {i} of shape {shape:?}"),
                    actual: format!("{:?}", w.shape()),
                });
            }
        }
        // Apply.
        let mut remaining = weights.iter();
        let mut write = |p: &mut Matrix| {
            if let Some(w) = remaining.next() {
                p.as_mut_slice().copy_from_slice(w.as_slice());
            }
        };
        self.tod_gen.visit_params(&mut |p, _| write(p));
        self.tod2v.visit_params(&mut |p, _| write(p));
        self.v2s.visit_params(&mut |p, _| write(p));
        Ok(())
    }

    /// Serialises a checkpoint to JSON.
    pub fn weights_to_json(&mut self) -> String {
        serde_json::to_string(&self.export_weights()).expect("matrices serialise")
    }

    /// Restores a checkpoint from [`OvsModel::weights_to_json`] output.
    pub fn weights_from_json(&mut self, json: &str) -> Result<()> {
        let weights: Vec<Matrix> = serde_json::from_str(json).map_err(|e| {
            roadnet::RoadnetError::InvalidSpec(format!("checkpoint parse error: {e}"))
        })?;
        self.import_weights(&weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OvsVariant;
    use roadnet::presets::synthetic_grid;

    fn model(variant: OvsVariant) -> OvsModel {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        OvsModel::new(
            &net,
            &ods,
            6,
            600.0,
            OvsConfig::tiny().with_variant(variant),
        )
        .unwrap()
    }

    #[test]
    fn full_forward_shapes() {
        let mut m = model(OvsVariant::Full);
        let (g, q, v) = m.forward_full(false);
        assert_eq!(g.shape(), (72, 6));
        assert_eq!(q.shape(), (24, 6));
        assert_eq!(v.shape(), (24, 6));
        assert!(g.is_finite() && q.is_finite() && v.is_finite());
    }

    #[test]
    fn predict_from_tod_consistent_with_full() {
        let mut m = model(OvsVariant::Full);
        let (g, q, v) = m.forward_full(false);
        let (q2, v2) = m.predict_from_tod(&g, false);
        assert_eq!(q, q2);
        assert_eq!(v, v2);
    }

    #[test]
    fn all_variants_build_and_run() {
        for variant in [
            OvsVariant::Full,
            OvsVariant::NoTodGen,
            OvsVariant::NoTod2V,
            OvsVariant::NoV2S,
        ] {
            let mut m = model(variant);
            let (_, _, v) = m.forward_full(false);
            assert!(v.is_finite(), "{variant:?}");
        }
    }

    #[test]
    fn checkpoint_round_trip_preserves_outputs() {
        let mut a = model(OvsVariant::Full);
        let (_, _, v_a) = a.forward_full(false);
        let json = a.weights_to_json();
        // A differently-seeded model produces different outputs...
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let mut b = OvsModel::new(&net, &ods, 6, 600.0, OvsConfig::tiny().with_seed(99)).unwrap();
        let (_, _, v_b) = b.forward_full(false);
        assert_ne!(v_a, v_b);
        // ...until the checkpoint is restored. (The generator's Gaussian
        // seeds are parameters of the data flow, not weights, so we
        // compare the deterministic mappings instead.)
        b.weights_from_json(&json).unwrap();
        let g = a.recovered_tod();
        let (qa, va) = a.predict_from_tod(&g, false);
        let (qb, vb) = b.predict_from_tod(&g, false);
        assert_eq!(qa, qb);
        assert_eq!(va, vb);
    }

    #[test]
    fn checkpoint_rejects_wrong_shapes() {
        let mut a = model(OvsVariant::Full);
        let mut w = a.export_weights();
        w.pop();
        assert!(a.import_weights(&w).is_err());
        let mut w = a.export_weights();
        w[0] = Matrix::zeros(1, 1);
        assert!(a.import_weights(&w).is_err());
        assert!(a.weights_from_json("not json").is_err());
    }

    #[test]
    fn param_count_positive_and_variant_dependent() {
        let mut full = model(OvsVariant::Full);
        let mut ablated = model(OvsVariant::NoTod2V);
        assert!(full.param_count() > 0);
        assert_ne!(full.param_count(), ablated.param_count());
    }
}
