//! TOD-Volume mapping (paper §IV-C, Figures 4-5, Eqs. 3-8).
//!
//! Three sub-modules, matching Table IV:
//!
//! * **OD-Route** (Eq. 3): an FC stack mapping each OD's trip-count series
//!   to its route trip-count series `p_i`;
//! * **Route-e** (Eqs. 5-7): two 1x3 convolutions over each route's
//!   series, aggregated over routes into a global traffic embedding `e`
//!   ("an overall representation of the system");
//! * **e-alpha** (Eq. 8): a fully connected layer + softmax producing the
//!   *dynamic attention* `alpha` over lookback lags.
//!
//! The attention realises Figure 4's physics: the volume `q_{j,t}` of link
//! `l_j` collects the trip counts of the routes containing it, **delayed**
//! by however long upstream congestion makes vehicles take to arrive. For
//! every incidence (route `i` crossing link `j`, free-flow offset `delta`)
//! and time `t`, we softmax over lags `tau in 0..W`:
//!
//! ```text
//! logit_tau = (e_window_t @ U + b_u)_tau + beta[tau - delta + W]
//! q_{j,t}  += sum_tau softmax(logit)_tau * p_{i, t - tau}
//! ```
//!
//! `U` makes the lag profile depend on current traffic (`e`), `beta` is a
//! learned prior over lags *relative to the free-flow offset*. Because the
//! softmax normalises per route, each route contributes its full trip mass
//! to the links it crosses — smeared in time, never lost.
//!
//! The Table IX ablation [`OvsVariant::NoTod2V`] keeps `beta` but removes
//! the traffic-dependent term: attention becomes static, which is exactly
//! the "linear assignment matrix" world of the GLS-style baselines.

use crate::config::{OvsConfig, OvsVariant};
use crate::routes::RouteTable;
use neural::layers::{
    ActKind, Activation, Conv1d, Dense, Layer, SeqActivation, SeqLayer, SeqSequential, Sequential,
};
use neural::matrix::Matrix;
use neural::rng::Rng64;
use neural::tensor3::Tensor3;

/// The TOD -> volume module.
pub struct TodVolumeMapping {
    variant: OvsVariant,
    w: usize,
    /// Eq. 3 FC enabled; otherwise OD-Route is the identity (single-route
    /// simplification of SS IV-C).
    use_od_route_fc: bool,
    g_max: f64,
    n_od: usize,
    n_links: usize,
    t: usize,
    routes: RouteTable,

    od_route: Sequential,
    conv: SeqSequential,
    /// `(W, W)`: maps the embedding window to per-lag scores.
    u: Matrix,
    du: Matrix,
    /// `(1, W)` bias of the dynamic scores.
    b_u: Matrix,
    db_u: Matrix,
    /// `(1, 2W+1)` static lag-prior relative to the free-flow offset.
    beta: Matrix,
    dbeta: Matrix,
    /// `(N, K)` route-share logits; softmax per row splits each OD's trip
    /// counts over its candidate routes (multi-route mode only).
    share_logits: Matrix,
    dshare: Matrix,
    k_routes: usize,
    /// `(1, 2)` "not-yet-arrived" sink: logit = sink[0] + sink[1] * delta.
    /// Trips the softmax routes here contribute no volume — they are still
    /// upstream of the link (or queued), which is exactly what happens in
    /// the simulator for long routes and late departures.
    sink: Matrix,
    dsink: Matrix,

    cache: Option<Tod2vCache>,
}

struct Tod2vCache {
    /// Route trip counts `p` (N, T), trip scale.
    p: Matrix,
    /// Route shares (N, K), rows softmax-normalised (empty when K == 1).
    shares: Matrix,
    /// Embedding windows per t (T, W); zeros for the static variant.
    e_windows: Matrix,
    /// Attention weights, flattened in iteration order
    /// (link-major, then t, then incidence, then lag).
    alphas: Vec<f64>,
}

impl TodVolumeMapping {
    /// Builds the module over a precomputed route table.
    pub fn new(routes: RouteTable, t: usize, cfg: &OvsConfig, rng: &mut Rng64) -> Self {
        let w = cfg.attention_window.max(1);
        let n_od = routes.n_routes();
        let n_links = routes.n_links();
        let od_route = Sequential::new(vec![
            Box::new(Dense::new(t, cfg.route_hidden, rng)),
            Box::new(Activation::new(ActKind::Sigmoid)),
            Box::new(Dense::new(cfg.route_hidden, t, rng)),
            Box::new(Activation::new(ActKind::Sigmoid)),
        ]);
        let conv = SeqSequential::new(vec![
            Box::new(Conv1d::new(1, cfg.conv_channels, 3, rng)),
            Box::new(SeqActivation::new(ActKind::Relu)),
            Box::new(Conv1d::new(cfg.conv_channels, 1, 3, rng)),
            Box::new(SeqActivation::new(ActKind::Relu)),
        ]);
        let mut beta = Matrix::zeros(1, 2 * w + 1);
        // Initialise the lag prior to peak at the free-flow offset
        // (tau == delta), decaying for earlier/later lags.
        for k in 0..(2 * w + 1) {
            let rel = k as f64 - w as f64;
            beta.set(0, k, 1.0 - 0.5 * rel.abs());
        }
        Self {
            variant: cfg.variant,
            w,
            use_od_route_fc: cfg.od_route_fc,
            g_max: cfg.g_max,
            n_od,
            n_links,
            t,
            routes,
            od_route,
            conv,
            u: neural::layers::xavier(w, w, rng),
            du: Matrix::zeros(w, w),
            b_u: Matrix::zeros(1, w),
            db_u: Matrix::zeros(1, w),
            share_logits: Matrix::zeros(n_od, cfg.k_routes.max(1)),
            dshare: Matrix::zeros(n_od, cfg.k_routes.max(1)),
            k_routes: cfg.k_routes.max(1),
            beta,
            dbeta: Matrix::zeros(1, 2 * w + 1),
            sink: Matrix::from_vec(1, 2, vec![-2.0, 0.8]).expect("static shape"),
            dsink: Matrix::zeros(1, 2),
            cache: None,
        }
    }

    /// The route table backing this module.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    fn dynamic(&self) -> bool {
        self.variant != OvsVariant::NoTod2V
    }

    /// Index into `beta` for lag `tau` relative to free-flow offset
    /// `delta`.
    #[inline]
    fn beta_index(&self, tau: usize, delta: usize) -> usize {
        (tau as isize - delta as isize + self.w as isize).clamp(0, 2 * self.w as isize) as usize
    }

    /// Maps a TOD matrix `(N, T)` to link volumes `(M, T)`.
    pub fn forward(&mut self, g: &Matrix, train: bool) -> Matrix {
        assert_eq!(g.shape(), (self.n_od, self.t), "TOD shape mismatch");
        let w = self.w;

        // --- OD-Route (Eq. 3, or identity under the single-route
        // simplification) --------------------------------------------------
        let p = if self.use_od_route_fc {
            let mut g_norm = g.clone();
            g_norm.scale(1.0 / self.g_max);
            let mut p = self.od_route.forward(&g_norm, train);
            p.scale(self.g_max);
            p
        } else {
            g.clone()
        };

        // --- Route-e (Eqs. 5-7) ----------------------------------------
        let (s, e_windows) = if self.dynamic() {
            let mut p_norm = p.clone();
            p_norm.scale(1.0 / self.g_max);
            let x = Tensor3::from_matrix_single_feature(&p_norm);
            let e3 = self.conv.forward(&x, train);
            // e_t = mean over routes (sum in the paper; mean keeps the
            // scale independent of N).
            let mut e = vec![0.0; self.t];
            for (ti, ev) in e.iter_mut().enumerate() {
                for k in 0..self.n_od {
                    *ev += e3.get(k, ti, 0);
                }
                *ev /= self.n_od.max(1) as f64;
            }
            // Windows and dynamic scores s_t = e_window_t @ U + b_u.
            let mut e_windows = Matrix::zeros(self.t, w);
            for ti in 0..self.t {
                for lag in 0..w {
                    if ti >= lag {
                        e_windows.set(ti, lag, e[ti - lag]);
                    }
                }
            }
            let mut s = e_windows.matmul(&self.u);
            s.add_row_broadcast(&self.b_u);
            (s, e_windows)
        } else {
            (Matrix::zeros(self.t, w), Matrix::zeros(self.t, w))
        };

        // Route shares: softmax over each OD's candidate routes.
        let shares = if self.k_routes > 1 {
            let mut sh = self.share_logits.clone();
            crate::tod2v::softmax_rows_local(&mut sh);
            sh
        } else {
            Matrix::zeros(0, 0)
        };

        // --- Attention assembly (Eqs. 4, 8) -----------------------------
        // Slots 0..w are lookback lags; slot w is the not-yet-arrived sink.
        let mut q = Matrix::zeros(self.n_links, self.t);
        let mut alphas = Vec::new();
        let mut logits = vec![0.0; w + 1];
        for j in 0..self.n_links {
            let incident = self.routes.incident(roadnet::LinkId(j));
            for ti in 0..self.t {
                for inc in incident {
                    let delta = inc.delay_intervals;
                    for (tau, l) in logits.iter_mut().enumerate().take(w) {
                        *l = s.get(ti, tau) + self.beta.get(0, self.beta_index(tau, delta));
                    }
                    logits[w] = self.sink.get(0, 0) + self.sink.get(0, 1) * delta as f64;
                    let alpha = softmax_vec(&logits);
                    let share = if self.k_routes > 1 {
                        shares.get(inc.od.index(), inc.route_idx)
                    } else {
                        1.0
                    };
                    let mut acc = 0.0;
                    for (tau, &a) in alpha.iter().enumerate().take(w) {
                        if ti >= tau {
                            acc += a * p.get(inc.od.index(), ti - tau);
                        }
                    }
                    q.set(j, ti, q.get(j, ti) + share * acc);
                    alphas.extend_from_slice(&alpha);
                }
            }
        }

        self.cache = Some(Tod2vCache {
            p,
            shares,
            e_windows,
            alphas,
        });
        q
    }

    /// Backpropagates `d loss / d q` and returns `d loss / d g`.
    pub fn backward(&mut self, dq: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("backward called before forward");
        assert_eq!(dq.shape(), (self.n_links, self.t), "dq shape mismatch");
        let w = self.w;

        let mut dp = Matrix::zeros(self.n_od, self.t);
        let mut ds = Matrix::zeros(self.t, w);
        let mut dbeta_local = Matrix::zeros(1, 2 * w + 1);
        let mut dsink_local = Matrix::zeros(1, 2);
        let mut dshare_pre = Matrix::zeros(
            if self.k_routes > 1 { self.n_od } else { 0 },
            if self.k_routes > 1 { self.k_routes } else { 0 },
        );
        let dynamic = self.dynamic();
        let beta_index = |tau: usize, delta: usize| -> usize {
            (tau as isize - delta as isize + w as isize).clamp(0, 2 * w as isize) as usize
        };
        let slots = w + 1;
        let mut alpha_idx = 0usize;
        let mut dalpha = vec![0.0; slots];
        for j in 0..self.n_links {
            let incident = self.routes.incident(roadnet::LinkId(j));
            for ti in 0..self.t {
                let dqv = dq.get(j, ti);
                for inc in incident {
                    let alpha = &cache.alphas[alpha_idx..alpha_idx + slots];
                    alpha_idx += slots;
                    if dqv == 0.0 {
                        continue;
                    }
                    let share = if self.k_routes > 1 {
                        cache.shares.get(inc.od.index(), inc.route_idx)
                    } else {
                        1.0
                    };
                    // Multi-route: d q / d share = sum_tau alpha * p.
                    if self.k_routes > 1 {
                        let mut acc = 0.0;
                        for (tau, &a) in alpha.iter().enumerate().take(w) {
                            if ti >= tau {
                                acc += a * cache.p.get(inc.od.index(), ti - tau);
                            }
                        }
                        dshare_pre.add_at_rc(inc.od.index(), inc.route_idx, dqv * acc);
                    }
                    // dq/dalpha_tau = share * p_{i, t - tau} for lag slots;
                    // the sink slot contributes no volume, so dalpha is 0.
                    for (tau, d) in dalpha.iter_mut().enumerate().take(w) {
                        *d = if ti >= tau {
                            let pv = cache.p.get(inc.od.index(), ti - tau);
                            dp.add_at_rc(inc.od.index(), ti - tau, dqv * share * alpha[tau]);
                            dqv * share * pv
                        } else {
                            0.0
                        };
                    }
                    dalpha[w] = 0.0;
                    // Softmax backward: dlogit = a * (da - sum(a*da)).
                    let dot: f64 = alpha.iter().zip(&dalpha).map(|(a, d)| a * d).sum();
                    let delta = inc.delay_intervals;
                    for tau in 0..w {
                        let dlogit = alpha[tau] * (dalpha[tau] - dot);
                        if dynamic {
                            ds.add_at_rc(ti, tau, dlogit);
                        }
                        let bi = beta_index(tau, delta);
                        dbeta_local.add_at_rc(0, bi, dlogit);
                    }
                    let dlogit_sink = alpha[w] * (dalpha[w] - dot);
                    dsink_local.add_at_rc(0, 0, dlogit_sink);
                    dsink_local.add_at_rc(0, 1, dlogit_sink * delta as f64);
                }
            }
        }
        self.dbeta.add_assign(&dbeta_local);
        self.dsink.add_assign(&dsink_local);
        // Route-share softmax backward per OD row.
        if self.k_routes > 1 {
            let dlogits = neural::matrix::softmax_rows_backward(&cache.shares, &dshare_pre);
            self.dshare.add_assign(&dlogits);
        }

        // --- through the dynamic score path ------------------------------
        if self.dynamic() {
            // s = e_windows @ U + b_u
            self.du.add_assign(&cache.e_windows.matmul_at_b(&ds));
            self.db_u.add_assign(&ds.sum_rows());
            let de_windows = ds.matmul_a_bt(&self.u);
            // e_windows[t, lag] = e[t - lag] -> scatter back to de.
            let mut de = vec![0.0; self.t];
            for ti in 0..self.t {
                for lag in 0..w {
                    if ti >= lag {
                        de[ti - lag] += de_windows.get(ti, lag);
                    }
                }
            }
            // e_t = mean_k e3[k, t, 0]
            let mut de3 = Tensor3::zeros(self.n_od, self.t, 1);
            let inv_n = 1.0 / self.n_od.max(1) as f64;
            for k in 0..self.n_od {
                for (ti, &dev) in de.iter().enumerate() {
                    de3.set(k, ti, 0, dev * inv_n);
                }
            }
            let dp_norm3 = self.conv.backward(&de3);
            let dp_norm = dp_norm3
                .to_matrix_single_feature()
                .expect("conv stack outputs one feature");
            dp.axpy(1.0 / self.g_max, &dp_norm);
        }

        // --- through OD-Route --------------------------------------------
        if self.use_od_route_fc {
            // p = g_max * net(g / g_max)
            let mut d_net_out = dp;
            d_net_out.scale(self.g_max);
            let mut dg = self.od_route.backward(&d_net_out);
            dg.scale(1.0 / self.g_max);
            dg
        } else {
            dp
        }
    }

    /// Visits `(param, grad)` pairs of this module.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        if self.use_od_route_fc {
            self.od_route.visit_params(f);
        }
        if self.variant != OvsVariant::NoTod2V {
            self.conv.visit_params(f);
            f(&mut self.u, &mut self.du);
            f(&mut self.b_u, &mut self.db_u);
        }
        f(&mut self.beta, &mut self.dbeta);
        f(&mut self.sink, &mut self.dsink);
        if self.k_routes > 1 {
            f(&mut self.share_logits, &mut self.dshare);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill_zero());
    }
}

/// Row-wise softmax used for the route shares (delegates to `neural`).
fn softmax_rows_local(m: &mut Matrix) {
    neural::matrix::softmax_rows(m);
}

/// Numerically stable softmax of a small vector.
fn softmax_vec(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut out: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = out.iter().sum();
    if sum > 0.0 {
        for v in &mut out {
            *v /= sum;
        }
    }
    out
}

/// Small extension: add at `(row, col)` without constructing ids.
trait AddAt {
    fn add_at_rc(&mut self, r: usize, c: usize, v: f64);
}

impl AddAt for Matrix {
    #[inline]
    fn add_at_rc(&mut self, r: usize, c: usize, v: f64) {
        let cur = self.get(r, c);
        self.set(r, c, cur + v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::presets::synthetic_grid;
    use roadnet::OdSet;

    fn module(variant: OvsVariant) -> (TodVolumeMapping, usize, usize) {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let cfg = OvsConfig::tiny().with_variant(variant);
        let routes = RouteTable::build(&net, &ods, 600.0).unwrap();
        let n_od = ods.len();
        let m = net.num_links();
        let mut rng = Rng64::new(0);
        (TodVolumeMapping::new(routes, 6, &cfg, &mut rng), n_od, m)
    }

    #[test]
    fn forward_shape_and_nonnegativity() {
        let (mut m, n_od, n_links) = module(OvsVariant::Full);
        let g = Matrix::filled(n_od, 6, 5.0);
        let q = m.forward(&g, false);
        assert_eq!(q.shape(), (n_links, 6));
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
        assert!(q.is_finite());
    }

    #[test]
    fn mass_is_conserved_onto_first_links() {
        // Attention is a softmax per route: each route's departures at all
        // lags sum to at most its trip counts; links crossed by more
        // routes accumulate more volume.
        let (mut m, n_od, _) = module(OvsVariant::Full);
        let g_small = Matrix::filled(n_od, 6, 1.0);
        let g_big = Matrix::filled(n_od, 6, 30.0);
        let q_small = m.forward(&g_small, false);
        let q_big = m.forward(&g_big, false);
        assert!(
            q_big.sum() > q_small.sum(),
            "more demand must map to more volume"
        );
    }

    #[test]
    fn softmax_vec_properties() {
        let a = softmax_vec(&[1.0, 2.0, 3.0]);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a[2] > a[1] && a[1] > a[0]);
        let b = softmax_vec(&[1000.0, -1000.0]);
        assert!(b[0] > 0.999);
    }

    /// End-to-end gradient check of the whole module (input gradient).
    fn gradcheck_variant(variant: OvsVariant) {
        let (mut m, n_od, _) = module(variant);
        let mut rng = Rng64::new(3);
        let mut g = Matrix::filled(n_od, 6, 8.0);
        for v in g.as_mut_slice() {
            *v += rng.uniform_in(-2.0, 2.0);
        }
        let q = m.forward(&g, false);
        let dg = m.backward(&q); // loss = 0.5||q||^2
        let eps = 1e-5;
        // check a sample of coordinates (full check is slow)
        for &idx in &[0usize, 7, 13, 29, n_od * 6 - 1] {
            let mut gp = g.clone();
            gp.as_mut_slice()[idx] += eps;
            let mut gm = g.clone();
            gm.as_mut_slice()[idx] -= eps;
            let lp = 0.5
                * m.forward(&gp, false)
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let lm = 0.5
                * m.forward(&gm, false)
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dg.as_slice()[idx];
            let denom = analytic.abs().max(numeric.abs()).max(1.0);
            assert!(
                ((analytic - numeric) / denom).abs() < 1e-4,
                "{variant:?} idx {idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn full_variant_gradcheck() {
        gradcheck_variant(OvsVariant::Full);
    }

    #[test]
    fn static_variant_gradcheck() {
        gradcheck_variant(OvsVariant::NoTod2V);
    }

    /// Parameter gradient check on the attention parameters.
    #[test]
    fn attention_param_gradcheck() {
        let (mut m, n_od, _) = module(OvsVariant::Full);
        let g = Matrix::filled(n_od, 6, 10.0);
        m.zero_grad();
        let q = m.forward(&g, false);
        m.backward(&q);
        // snapshot analytic grads for u and beta
        let (mut du, mut dbeta) = (None, None);
        let (w, _) = (m.w, 0);
        m.visit_params(&mut |p, gr| {
            if p.shape() == (w, w) {
                du = Some(gr.clone());
            }
            if p.shape() == (1, 2 * w + 1) {
                dbeta = Some(gr.clone());
            }
        });
        let du = du.unwrap();
        let dbeta = dbeta.unwrap();
        let eps = 1e-5;
        // perturb u[0,0]
        let loss = |m: &mut TodVolumeMapping, g: &Matrix| {
            0.5 * m
                .forward(g, false)
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
        };
        m.u.set(0, 0, m.u.get(0, 0) + eps);
        let lp = loss(&mut m, &g);
        m.u.set(0, 0, m.u.get(0, 0) - 2.0 * eps);
        let lm = loss(&mut m, &g);
        m.u.set(0, 0, m.u.get(0, 0) + eps);
        let numeric = (lp - lm) / (2.0 * eps);
        let denom = numeric.abs().max(du.get(0, 0).abs()).max(1.0);
        assert!(
            ((du.get(0, 0) - numeric) / denom).abs() < 1e-4,
            "dU analytic {} vs numeric {numeric}",
            du.get(0, 0)
        );
        // perturb beta[0, w] (center)
        m.beta.set(0, w, m.beta.get(0, w) + eps);
        let lp = loss(&mut m, &g);
        m.beta.set(0, w, m.beta.get(0, w) - 2.0 * eps);
        let lm = loss(&mut m, &g);
        m.beta.set(0, w, m.beta.get(0, w) + eps);
        let numeric = (lp - lm) / (2.0 * eps);
        let denom = numeric.abs().max(dbeta.get(0, w).abs()).max(1.0);
        assert!(
            ((dbeta.get(0, w) - numeric) / denom).abs() < 1e-4,
            "dbeta analytic {} vs numeric {numeric}",
            dbeta.get(0, w)
        );
    }

    #[test]
    fn multi_route_shapes_and_gradcheck() {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let mut cfg = OvsConfig::tiny();
        cfg.k_routes = 2;
        let routes = RouteTable::build_with_k(&net, &ods, 600.0, 2).unwrap();
        assert!(routes.max_routes() == 2);
        // At least some ODs on a grid have two distinct routes.
        assert!(ods.iter().any(|(id, _)| routes.routes_of(id).len() == 2));
        let mut rng = Rng64::new(5);
        let mut m = TodVolumeMapping::new(routes, 6, &cfg, &mut rng);
        let mut g = Matrix::filled(ods.len(), 6, 8.0);
        for v in g.as_mut_slice() {
            *v += rng.uniform_in(-2.0, 2.0);
        }
        let q = m.forward(&g, false);
        assert_eq!(q.shape(), (net.num_links(), 6));
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
        // End-to-end input gradient check at a sample of coordinates.
        let q = m.forward(&g, false);
        let dg = m.backward(&q);
        let eps = 1e-5;
        for &idx in &[0usize, 11, 40] {
            let mut gp = g.clone();
            gp.as_mut_slice()[idx] += eps;
            let mut gm = g.clone();
            gm.as_mut_slice()[idx] -= eps;
            let lp = 0.5
                * m.forward(&gp, false)
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let lm = 0.5
                * m.forward(&gm, false)
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dg.as_slice()[idx];
            let denom = analytic.abs().max(numeric.abs()).max(1.0);
            assert!(
                ((analytic - numeric) / denom).abs() < 1e-4,
                "multi-route idx {idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn multi_route_share_param_gradcheck() {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let mut cfg = OvsConfig::tiny();
        cfg.k_routes = 2;
        let routes = RouteTable::build_with_k(&net, &ods, 600.0, 2).unwrap();
        let mut rng = Rng64::new(6);
        let mut m = TodVolumeMapping::new(routes, 6, &cfg, &mut rng);
        let g = Matrix::filled(ods.len(), 6, 10.0);
        m.zero_grad();
        let q = m.forward(&g, false);
        m.backward(&q);
        let n_od = ods.len();
        let mut dshare = None;
        m.visit_params(&mut |p, gr| {
            if p.shape() == (n_od, 2) {
                dshare = Some(gr.clone());
            }
        });
        let dshare = dshare.expect("share logits are visited in multi-route mode");
        let loss = |m: &mut TodVolumeMapping, g: &Matrix| {
            0.5 * m
                .forward(g, false)
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
        };
        let eps = 1e-5;
        // check the first OD with two routes
        let od = ods
            .iter()
            .find(|(id, _)| m.routes().routes_of(*id).len() == 2)
            .unwrap()
            .0;
        let r = od.index();
        m.share_logits.set(r, 0, m.share_logits.get(r, 0) + eps);
        let lp = loss(&mut m, &g);
        m.share_logits
            .set(r, 0, m.share_logits.get(r, 0) - 2.0 * eps);
        let lm = loss(&mut m, &g);
        m.share_logits.set(r, 0, m.share_logits.get(r, 0) + eps);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dshare.get(r, 0);
        let denom = analytic.abs().max(numeric.abs()).max(1.0);
        assert!(
            ((analytic - numeric) / denom).abs() < 1e-4,
            "dshare analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn static_variant_has_fewer_params() {
        let (mut full, ..) = module(OvsVariant::Full);
        let (mut stat, ..) = module(OvsVariant::NoTod2V);
        let count = |m: &mut TodVolumeMapping| {
            let mut n = 0;
            m.visit_params(&mut |p, _| n += p.len());
            n
        };
        assert!(count(&mut stat) < count(&mut full));
    }
}
