//! The common estimator interface (Problem 1 of the paper).
//!
//! Every method evaluated in the paper — OVS and the six baselines of
//! §V-F — consumes the same information: the road network, the chosen OD
//! pairs, a corpus of generated `(TOD, volume, speed)` training triples
//! (Fig 7), and the *observed speed tensor* of the hidden scenario. It
//! must produce a recovered TOD tensor. [`TodEstimator`] captures exactly
//! that contract so the evaluation harness can treat all methods
//! uniformly.

use neural::Matrix;
use roadnet::{LinkId, LinkTensor, OdSet, Result, RoadNetwork, TodTensor};

pub use roadnet::TrainTriple;

/// Everything an estimator may look at.
///
/// Construct instances with [`EstimatorInput::builder`]; the struct is
/// `#[non_exhaustive]` so fields can be added without breaking callers.
#[derive(Clone)]
#[non_exhaustive]
pub struct EstimatorInput<'a> {
    /// The road network.
    pub net: &'a RoadNetwork,
    /// The OD pairs whose TOD is sought.
    pub ods: &'a OdSet,
    /// Interval length in seconds.
    pub interval_s: f64,
    /// Seed of the simulator run that produced the observation; estimators
    /// that evaluate candidate TODs in a simulator (Genetic) use it so
    /// their forward model matches the data-generating process.
    pub sim_seed: u64,
    /// Generated training triples (no real TOD among them).
    pub train: &'a [TrainTriple],
    /// The observed speed tensor — the only mandatory test-time signal.
    pub observed_speed: &'a LinkTensor,
    /// Optional LEHD/census daily totals per OD (auxiliary, §IV-E).
    pub census_totals: Option<&'a [f64]>,
    /// Optional camera observations: instrumented links and their volume
    /// series (auxiliary, §IV-E).
    pub cameras: Option<(&'a [LinkId], &'a [Vec<f64>])>,
}

impl<'a> EstimatorInput<'a> {
    /// Starts building an input over `net` and `ods`. The observed speed
    /// tensor is the only other mandatory piece; everything else has a
    /// sensible default (600 s intervals, seed 0, empty corpus, no aux).
    pub fn builder(net: &'a RoadNetwork, ods: &'a OdSet) -> EstimatorInputBuilder<'a> {
        EstimatorInputBuilder {
            net,
            ods,
            interval_s: 600.0,
            sim_seed: 0,
            train: &[],
            observed_speed: None,
            census_totals: None,
            cameras: None,
        }
    }

    /// Number of OD pairs.
    pub fn n_od(&self) -> usize {
        self.ods.len()
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.net.num_links()
    }

    /// Number of intervals.
    pub fn n_intervals(&self) -> usize {
        self.observed_speed.num_intervals()
    }
}

/// Builder for [`EstimatorInput`] (see [`EstimatorInput::builder`]).
#[derive(Clone)]
pub struct EstimatorInputBuilder<'a> {
    net: &'a RoadNetwork,
    ods: &'a OdSet,
    interval_s: f64,
    sim_seed: u64,
    train: &'a [TrainTriple],
    observed_speed: Option<&'a LinkTensor>,
    census_totals: Option<&'a [f64]>,
    cameras: Option<(&'a [LinkId], &'a [Vec<f64>])>,
}

impl<'a> EstimatorInputBuilder<'a> {
    /// Sets the interval length in seconds (default 600).
    pub fn interval_s(mut self, interval_s: f64) -> Self {
        self.interval_s = interval_s;
        self
    }

    /// Sets the simulator seed of the observed scenario (default 0).
    pub fn sim_seed(mut self, sim_seed: u64) -> Self {
        self.sim_seed = sim_seed;
        self
    }

    /// Sets the generated training corpus (default empty).
    pub fn train(mut self, train: &'a [TrainTriple]) -> Self {
        self.train = train;
        self
    }

    /// Sets the observed speed tensor (mandatory).
    pub fn observed_speed(mut self, observed_speed: &'a LinkTensor) -> Self {
        self.observed_speed = Some(observed_speed);
        self
    }

    /// Exposes census daily OD totals (default none).
    pub fn census(mut self, census_totals: &'a [f64]) -> Self {
        self.census_totals = Some(census_totals);
        self
    }

    /// Exposes camera observations (default none).
    pub fn cameras(mut self, links: &'a [LinkId], volumes: &'a [Vec<f64>]) -> Self {
        self.cameras = Some((links, volumes));
        self
    }

    /// Finishes the input.
    ///
    /// # Panics
    ///
    /// Panics if [`observed_speed`](Self::observed_speed) was never set —
    /// the observed speed tensor is the one signal every estimator needs.
    pub fn build(self) -> EstimatorInput<'a> {
        EstimatorInput {
            net: self.net,
            ods: self.ods,
            interval_s: self.interval_s,
            sim_seed: self.sim_seed,
            train: self.train,
            // lint: allow(panic) — documented builder contract (see the
            // `# Panics` section above); misuse is a programming error.
            observed_speed: self.observed_speed.expect(
                "EstimatorInput requires observed_speed; call .observed_speed(..) before .build()",
            ),
            census_totals: self.census_totals,
            cameras: self.cameras,
        }
    }
}

/// A method that recovers a TOD tensor from speed observations.
///
/// `Send` is a supertrait so boxed estimators can cross thread boundaries:
/// the evaluation harness runs its method panel in parallel.
pub trait TodEstimator: Send {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &str;

    /// Recovers the TOD tensor for `input`.
    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor>;
}

// --- tensor <-> matrix bridges -------------------------------------------
// `roadnet` tensors and `neural` matrices are both row-major f64; these
// helpers move data between the two worlds.

/// Copies a TOD tensor into a `(N, T)` matrix.
pub fn tod_to_matrix(t: &TodTensor) -> Matrix {
    // lint: allow(panic) — shape and data length come from one tensor, cannot mismatch
    Matrix::from_vec(t.rows(), t.num_intervals(), t.as_slice().to_vec())
        .expect("tensor is internally consistent")
}

/// Copies a `(N, T)` matrix into a TOD tensor, clamping negatives to zero
/// (trip counts are physical quantities).
pub fn matrix_to_tod(m: &Matrix) -> TodTensor {
    // lint: allow(panic) — shape and data length come from one matrix, cannot mismatch
    let mut t = TodTensor::from_data(m.rows(), m.cols(), m.as_slice().to_vec())
        .expect("matrix is internally consistent");
    t.clamp(0.0, f64::INFINITY);
    t
}

/// Copies a link tensor into a `(M, T)` matrix.
pub fn link_to_matrix(t: &LinkTensor) -> Matrix {
    // lint: allow(panic) — shape and data length come from one tensor, cannot mismatch
    Matrix::from_vec(t.rows(), t.num_intervals(), t.as_slice().to_vec())
        .expect("tensor is internally consistent")
}

/// Copies a `(M, T)` matrix into a link tensor.
pub fn matrix_to_link(m: &Matrix) -> LinkTensor {
    // lint: allow(panic) — shape and data length come from one matrix, cannot mismatch
    LinkTensor::from_data(m.rows(), m.cols(), m.as_slice().to_vec())
        .expect("matrix is internally consistent")
}

/// Helper shared by learned estimators: validates that input shapes are
/// mutually consistent.
pub fn validate_input(input: &EstimatorInput<'_>) -> Result<()> {
    use roadnet::RoadnetError;
    input.ods.validate(input.net)?;
    let m = input.net.num_links();
    let t = input.observed_speed.num_intervals();
    if input.observed_speed.rows() != m {
        return Err(RoadnetError::ShapeMismatch {
            expected: format!("{m} link rows"),
            actual: format!("{} rows", input.observed_speed.rows()),
        });
    }
    for (k, s) in input.train.iter().enumerate() {
        if s.tod.rows() != input.ods.len()
            || s.tod.num_intervals() != t
            || s.volume.rows() != m
            || s.speed.rows() != m
        {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("triple shapes ({}, {t}) / ({m}, {t})", input.ods.len()),
                actual: format!("training sample {k} is inconsistent"),
            });
        }
    }
    if let Some(c) = input.census_totals {
        if c.len() != input.ods.len() {
            return Err(RoadnetError::ShapeMismatch {
                expected: format!("{} census totals", input.ods.len()),
                actual: format!("{}", c.len()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::OdPairId;

    #[test]
    fn tod_matrix_roundtrip() {
        let t = TodTensor::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let m = tod_to_matrix(&t);
        assert_eq!(m.shape(), (2, 3));
        let back = matrix_to_tod(&m);
        assert_eq!(back, t);
    }

    #[test]
    fn matrix_to_tod_clamps_negatives() {
        let m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]).unwrap();
        let t = matrix_to_tod(&m);
        assert_eq!(t.get(OdPairId(0), 0), 0.0);
        assert_eq!(t.get(OdPairId(0), 1), 2.0);
    }

    #[test]
    fn link_matrix_roundtrip() {
        let t = LinkTensor::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(matrix_to_link(&link_to_matrix(&t)), t);
    }
}
