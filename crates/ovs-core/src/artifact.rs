//! Checkpoint-artifact glue for the OVS model (see `crates/checkpoint`).
//!
//! Two artifact kinds live here:
//!
//! * `"ovs-model"` — a whole trained pipeline: the full config, every
//!   parameter matrix of the three modules, and (optionally) the
//!   recovered TOD tensor. [`load_model`] rebuilds the model from the
//!   *recorded* config — including the RNG seed, so the generator's
//!   Gaussian seeds regenerate identically and the reloaded model
//!   reproduces the recovered TOD bit-exactly.
//! * `"ovs-pipeline"` — an in-flight training snapshot
//!   ([`crate::trainer::PipelineCheckpoint`]): full model weights, the
//!   running stage's state (weights, Adam moments, loss trace,
//!   early-stopping counters) and the traces of completed stages.
//!
//! Every loader validates the artifact's recorded structural
//! configuration against the requesting one and refuses on mismatch
//! *before* touching any weights — a checkpoint can never be silently
//! grafted onto a differently-shaped model.

use crate::config::OvsConfig;
use crate::estimator::{matrix_to_tod, tod_to_matrix};
use crate::model::OvsModel;
use crate::trainer::{PipelineCheckpoint, Stage, StageState, TrainReport};
use checkpoint::format::{Artifact, ArtifactBuilder};
use checkpoint::store::Provenance;
use checkpoint::CheckpointError;
use roadnet::{OdSet, RoadNetwork, TodTensor};

/// Artifact kind of a trained OVS model.
pub const OVS_MODEL_KIND: &str = "ovs-model";

/// Artifact kind of an in-flight pipeline snapshot.
pub const PIPELINE_KIND: &str = "ovs-pipeline";

/// Artifact section recording the network-incident timeline a model
/// version was estimated under: rows of 7 f64s per incident,
/// `[kind_code, target_code, target_index, onset_tick, duration_ticks,
/// severity, status]` with status 0 = cleared before the window,
/// 1 = active during it, 2 = scheduled after it. The constant lives here
/// (not in the stream crate that writes it) so the serving layer can read
/// the section without depending on streaming internals.
pub const INCIDENTS_SECTION: &str = "network_incidents";

/// JSON of only the *structural* configuration fields — the ones that
/// determine parameter shapes and data flow. Two configs with equal
/// structural JSON build weight-compatible models; training
/// hyperparameters (learning rate, epochs, loss weights, scales) are
/// deliberately excluded so a checkpoint can be fine-tuned under
/// different training settings.
pub fn structural_config_json(cfg: &OvsConfig) -> String {
    format!(
        concat!(
            "{{\"tod_hidden\":{},\"route_hidden\":{},\"k_routes\":{},",
            "\"od_route_fc\":{},\"conv_channels\":{},\"attention_window\":{},",
            "\"lstm_hidden\":{},\"rnn_kind\":\"{:?}\",\"variant\":\"{:?}\"}}"
        ),
        cfg.tod_hidden,
        cfg.route_hidden,
        cfg.k_routes,
        cfg.od_route_fc,
        cfg.conv_channels,
        cfg.attention_window,
        cfg.lstm_hidden,
        cfg.rnn_kind,
        cfg.variant,
    )
}

fn config_json(cfg: &OvsConfig) -> checkpoint::Result<String> {
    serde_json::to_string(cfg)
        .map_err(|e| CheckpointError::Malformed(format!("config encode: {e}")))
}

fn config_from_artifact(artifact: &Artifact) -> checkpoint::Result<OvsConfig> {
    let json = artifact.str_section("config")?;
    serde_json::from_str(&json)
        .map_err(|e| CheckpointError::Malformed(format!("recorded config: {e}")))
}

/// Refuses an artifact whose recorded structural config differs from the
/// requesting one.
fn check_structure(recorded: &OvsConfig, requesting: &OvsConfig) -> checkpoint::Result<()> {
    let rec = structural_config_json(recorded);
    let req = structural_config_json(requesting);
    if rec != req {
        return Err(CheckpointError::ShapeMismatch {
            expected: req,
            actual: rec,
        });
    }
    Ok(())
}

/// Serialises a trained model (and optionally its recovered TOD) into an
/// `"ovs-model"` artifact.
pub fn save_model(
    model: &mut OvsModel,
    recovered: Option<&TodTensor>,
) -> checkpoint::Result<ArtifactBuilder> {
    let mut b = ArtifactBuilder::new(OVS_MODEL_KIND);
    b.add_str("config", &config_json(model.config())?);
    b.add_f64s("geometry", &[model.intervals() as f64, model.interval_s()]);
    b.add_matrices("weights", &model.export_weights());
    if let Some(tod) = recovered {
        b.add_matrix("recovered_tod", &tod_to_matrix(tod));
    }
    Ok(b)
}

/// Imports an `"ovs-model"` artifact's weights into an existing model of
/// matching structure. The structural config is checked first; on any
/// mismatch the model is left untouched.
pub fn import_model(model: &mut OvsModel, artifact: &Artifact) -> checkpoint::Result<()> {
    artifact.expect_kind(OVS_MODEL_KIND)?;
    let recorded = config_from_artifact(artifact)?;
    check_structure(&recorded, model.config())?;
    let weights = artifact.matrices("weights")?;
    model
        .import_weights(&weights)
        .map_err(|e| CheckpointError::ShapeMismatch {
            expected: "weights matching the model's parameter slots".into(),
            actual: e.to_string(),
        })
}

/// Rebuilds a full model from an `"ovs-model"` artifact: the recorded
/// config (seed included, so the generator's Gaussian seeds regenerate
/// identically) plus the recorded weights. The reloaded model's
/// `recovered_tod()` is bit-identical to the saved model's.
pub fn load_model(
    net: &RoadNetwork,
    ods: &OdSet,
    artifact: &Artifact,
) -> checkpoint::Result<OvsModel> {
    artifact.expect_kind(OVS_MODEL_KIND)?;
    let cfg = config_from_artifact(artifact)?;
    let geom = artifact.f64s("geometry")?;
    let (intervals, interval_s) = match geom.as_slice() {
        &[n, s] if n >= 1.0 && s.is_finite() => (n, s),
        _ => {
            return Err(CheckpointError::Malformed(format!(
                "geometry section must be [intervals, interval_s], got {geom:?}"
            )))
        }
    };
    let mut model = OvsModel::new(net, ods, intervals as usize, interval_s, cfg)
        .map_err(|e| CheckpointError::Malformed(format!("model rebuild: {e}")))?;
    import_model(&mut model, artifact)?;
    Ok(model)
}

/// Extracts an `"ovs-model"` artifact's weight matrices after validating
/// its recorded structural config against `cfg` — the warm-start path:
/// feed the result to [`crate::trainer::OvsTrainer::run_warm`].
pub fn model_weights(
    artifact: &Artifact,
    cfg: &OvsConfig,
) -> checkpoint::Result<Vec<neural::Matrix>> {
    artifact.expect_kind(OVS_MODEL_KIND)?;
    let recorded = config_from_artifact(artifact)?;
    check_structure(&recorded, cfg)?;
    artifact.matrices("weights")
}

/// The recovered TOD stored in an `"ovs-model"` artifact, if any.
pub fn recovered_tod(artifact: &Artifact) -> checkpoint::Result<Option<TodTensor>> {
    if !artifact.has("recovered_tod") {
        return Ok(None);
    }
    Ok(Some(matrix_to_tod(&artifact.matrix("recovered_tod")?)))
}

/// Builds the provenance record for a trained model: config JSON, seed,
/// parameter shape signature, and the loss traces of every stage.
pub fn model_provenance(
    model: &mut OvsModel,
    report: &TrainReport,
) -> checkpoint::Result<Provenance> {
    let mut p = Provenance::new(
        OVS_MODEL_KIND,
        &config_json(model.config())?,
        model.config().seed,
    );
    p.shape_sig = model.shape_signature();
    p.v2s_losses = report.v2s_losses.clone();
    p.tod2v_losses = report.tod2v_losses.clone();
    p.fit_losses = report.fit_losses.clone();
    Ok(p)
}

/// Serialises a whole-pipeline training snapshot into an
/// `"ovs-pipeline"` artifact.
pub fn save_pipeline(
    cp: &PipelineCheckpoint,
    cfg: &OvsConfig,
) -> checkpoint::Result<ArtifactBuilder> {
    let mut b = ArtifactBuilder::new(PIPELINE_KIND);
    b.add_str("config", &config_json(cfg)?);
    b.add_matrices("model_weights", &cp.model_weights);
    b.add_str("stage", cp.state.stage.tag());
    b.add_matrices("stage_weights", &cp.state.weights);
    b.add_adam("stage_opt", &cp.state.opt);
    b.add_f64s("stage_losses", &cp.state.losses);
    // f64 holds every usize this loop could reach exactly (< 2^53), and
    // `best` may be +inf, which the bit-pattern codec round-trips.
    b.add_f64s(
        "stage_scalars",
        &[
            cp.state.step as f64,
            cp.state.best,
            cp.state.since_best as f64,
        ],
    );
    b.add_f64s("v2s_losses", &cp.v2s_losses);
    b.add_f64s("tod2v_losses", &cp.tod2v_losses);
    Ok(b)
}

/// Reconstructs a pipeline snapshot from an `"ovs-pipeline"` artifact,
/// refusing if its recorded structural config mismatches `cfg` (the
/// config of the run being resumed).
pub fn load_pipeline(
    artifact: &Artifact,
    cfg: &OvsConfig,
) -> checkpoint::Result<PipelineCheckpoint> {
    artifact.expect_kind(PIPELINE_KIND)?;
    let recorded = config_from_artifact(artifact)?;
    check_structure(&recorded, cfg)?;
    let tag = artifact.str_section("stage")?;
    let stage = Stage::from_tag(&tag)
        .ok_or_else(|| CheckpointError::Malformed(format!("unknown stage tag '{tag}'")))?;
    let scalars = artifact.f64s("stage_scalars")?;
    let (step, best, since_best) = match scalars.as_slice() {
        &[step, best, since] if step >= 0.0 && since >= 0.0 => (step, best, since),
        _ => {
            return Err(CheckpointError::Malformed(format!(
                "stage_scalars must be [step, best, since_best], got {scalars:?}"
            )))
        }
    };
    Ok(PipelineCheckpoint {
        model_weights: artifact.matrices("model_weights")?,
        state: StageState {
            stage,
            step: step as usize,
            weights: artifact.matrices("stage_weights")?,
            opt: artifact.adam("stage_opt")?,
            losses: artifact.f64s("stage_losses")?,
            best,
            since_best: since_best as usize,
        },
        v2s_losses: artifact.f64s("v2s_losses")?,
        tod2v_losses: artifact.f64s("tod2v_losses")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OvsVariant;
    use roadnet::presets::synthetic_grid;

    fn model_with(cfg: OvsConfig) -> (RoadNetwork, OdSet, OvsModel) {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let model = OvsModel::new(&net, &ods, 6, 600.0, cfg).unwrap();
        (net, ods, model)
    }

    #[test]
    fn model_artifact_round_trip_is_bit_exact() {
        let (net, ods, mut a) = model_with(OvsConfig::tiny().with_seed(11));
        let tod = matrix_to_tod(&a.recovered_tod());
        let bytes = save_model(&mut a, Some(&tod)).unwrap().to_bytes();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        let mut b = load_model(&net, &ods, &artifact).unwrap();
        // Same weights, same Gaussian seeds -> identical recovered TOD.
        assert_eq!(a.export_weights(), b.export_weights());
        assert_eq!(a.recovered_tod(), b.recovered_tod());
        let stored = recovered_tod(&artifact).unwrap().unwrap();
        assert_eq!(tod_to_matrix(&stored), a.recovered_tod());
        // And saving the reloaded model reproduces the identical bytes.
        let bytes2 = save_model(&mut b, Some(&stored)).unwrap().to_bytes();
        assert_eq!(bytes2, bytes);
    }

    #[test]
    fn mismatched_structure_is_refused_before_weights() {
        let (_, _, mut a) = model_with(OvsConfig::tiny());
        let bytes = save_model(&mut a, None).unwrap().to_bytes();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        // Different hidden width.
        let mut wide = OvsConfig::tiny();
        wide.lstm_hidden *= 2;
        let (_, _, mut b) = model_with(wide);
        let before = b.export_weights();
        assert!(matches!(
            import_model(&mut b, &artifact),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        assert_eq!(b.export_weights(), before);
        // Different variant.
        let (_, _, mut c) = model_with(OvsConfig::tiny().with_variant(OvsVariant::NoV2S));
        assert!(matches!(
            import_model(&mut c, &artifact),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        // Wrong kind.
        let other = Artifact::from_bytes(&ArtifactBuilder::new("baseline-nn").to_bytes()).unwrap();
        assert!(matches!(
            import_model(&mut a, &other),
            Err(CheckpointError::WrongKind { .. })
        ));
    }

    #[test]
    fn structural_json_ignores_training_hyperparameters() {
        let a = OvsConfig::tiny();
        let mut b = OvsConfig::tiny().with_seed(999);
        b.lr *= 10.0;
        b.epochs_fit += 100;
        assert_eq!(structural_config_json(&a), structural_config_json(&b));
        let mut c = OvsConfig::tiny();
        c.attention_window += 1;
        assert_ne!(structural_config_json(&a), structural_config_json(&c));
    }
}
