//! Volume-Speed mapping (paper §IV-D, Eqs. 9-11).
//!
//! Two LSTM layers plus a fully connected head, **shared across all
//! links**: each link's volume series is one batch row, so the module
//! learns a single nonlinear volume->speed response (the data-driven
//! replacement for a fundamental diagram) that transfers between links.
//! Volumes are normalised by `q_norm`; speed comes out of a sigmoid scaled
//! to `v_max`, matching Table IV's all-sigmoid head.
//!
//! The Table IX ablation [`OvsVariant::NoV2S`] swaps the LSTMs for a
//! time-distributed FC stack — each interval mapped independently, no
//! temporal carry-over of congestion.

use crate::config::{OvsConfig, OvsVariant, RnnKind};
use neural::layers::{
    ActKind, Dense, Gru, Lstm, SeqActivation, SeqLayer, SeqSequential, TimeDistributed,
};
use neural::matrix::Matrix;
use neural::rng::Rng64;
use neural::tensor3::Tensor3;
use neural::workspace::Workspace;

/// The volume -> speed module.
pub struct VolumeSpeedMapping {
    net: SeqSequential,
    q_norm: f64,
    v_max: f64,
}

impl VolumeSpeedMapping {
    /// Builds the module.
    pub fn new(cfg: &OvsConfig, rng: &mut Rng64) -> Self {
        let h = cfg.lstm_hidden;
        let net = if cfg.variant == OvsVariant::NoV2S {
            SeqSequential::new(vec![
                Box::new(TimeDistributed::new(Dense::new(1, h, rng))),
                Box::new(SeqActivation::new(ActKind::Sigmoid)),
                Box::new(TimeDistributed::new(Dense::new(h, h, rng))),
                Box::new(SeqActivation::new(ActKind::Sigmoid)),
                Box::new(TimeDistributed::new(Dense::new(h, 1, rng))),
                Box::new(SeqActivation::new(ActKind::Sigmoid)),
            ])
        } else {
            let rnn = |input: usize, rng: &mut neural::rng::Rng64| -> Box<dyn SeqLayer> {
                match cfg.rnn_kind {
                    RnnKind::Lstm => Box::new(Lstm::new(input, h, rng)),
                    RnnKind::Gru => Box::new(Gru::new(input, h, rng)),
                }
            };
            SeqSequential::new(vec![
                rnn(1, rng),
                rnn(h, rng),
                Box::new(TimeDistributed::new(Dense::new(h, 1, rng))),
                Box::new(SeqActivation::new(ActKind::Sigmoid)),
            ])
        };
        Self {
            net,
            q_norm: cfg.q_norm,
            v_max: cfg.v_max,
        }
    }

    /// Maps link volumes `(M, T)` to link speeds `(M, T)` in m/s.
    pub fn forward(&mut self, q: &Matrix, train: bool) -> Matrix {
        let mut q_norm = q.clone();
        q_norm.scale(1.0 / self.q_norm);
        let x = Tensor3::from_matrix_single_feature(&q_norm);
        let y = self.net.forward(&x, train);
        let mut v = y
            .to_matrix_single_feature()
            .expect("head outputs one feature");
        v.scale(self.v_max);
        v
    }

    /// Backpropagates `d loss / d speed` and returns `d loss / d volume`.
    pub fn backward(&mut self, dv: &Matrix) -> Matrix {
        let mut d = dv.clone();
        d.scale(self.v_max);
        let dy = Tensor3::from_matrix_single_feature(&d);
        let dx = self.net.backward(&dy);
        let mut dq = dx
            .to_matrix_single_feature()
            .expect("input had one feature");
        dq.scale(1.0 / self.q_norm);
        dq
    }

    /// [`forward`](Self::forward) through pooled buffers — identical bits,
    /// no steady-state allocation. Return the result to `ws` when done.
    pub fn forward_ws(&mut self, q: &Matrix, train: bool, ws: &mut Workspace) -> Matrix {
        let (m, t) = q.shape();
        let inv_q = 1.0 / self.q_norm;
        let mut x = ws.take3(m, t, 1);
        // (M, T) and (M, T, 1) share the same row-major linear layout, so
        // the reshape is a scaled copy.
        for (o, &v) in x.as_mut_slice().iter_mut().zip(q.as_slice()) {
            *o = v * inv_q;
        }
        let y = self.net.forward_ws(&x, train, ws);
        ws.give3(x);
        let mut v = ws.take(m, t);
        v.as_mut_slice().copy_from_slice(y.as_slice());
        ws.give3(y);
        v.scale(self.v_max);
        v
    }

    /// [`backward`](Self::backward) through pooled buffers — identical
    /// bits, no steady-state allocation. Return the result to `ws`.
    pub fn backward_ws(&mut self, dv: &Matrix, ws: &mut Workspace) -> Matrix {
        let (m, t) = dv.shape();
        let mut dy = ws.take3(m, t, 1);
        for (o, &v) in dy.as_mut_slice().iter_mut().zip(dv.as_slice()) {
            *o = v * self.v_max;
        }
        let dx = self.net.backward_ws(&dy, ws);
        ws.give3(dy);
        let mut dq = ws.take(m, t);
        dq.as_mut_slice().copy_from_slice(dx.as_slice());
        ws.give3(dx);
        dq.scale(1.0 / self.q_norm);
        dq
    }

    /// Visits `(param, grad)` pairs.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.net.visit_params(f);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.net.zero_grad();
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::loss::mse;
    use neural::optim::{Adam, Optimizer};

    fn cfg(variant: OvsVariant) -> OvsConfig {
        OvsConfig::tiny().with_variant(variant)
    }

    #[test]
    fn output_bounded_by_v_max() {
        let mut rng = Rng64::new(0);
        let c = cfg(OvsVariant::Full);
        let mut m = VolumeSpeedMapping::new(&c, &mut rng);
        let q = Matrix::filled(5, 6, 100.0);
        let v = m.forward(&q, false);
        assert_eq!(v.shape(), (5, 6));
        assert!(v.as_slice().iter().all(|&s| s >= 0.0 && s <= c.v_max));
    }

    /// The module must be able to learn a decreasing volume->speed law —
    /// the macroscopic fundamental-diagram shape the simulator produces.
    fn learns_fundamental_diagram(variant: OvsVariant) -> f64 {
        let mut rng = Rng64::new(1);
        let c = cfg(variant);
        let mut m = VolumeSpeedMapping::new(&c, &mut rng);
        // synthetic law: v = v_max * exp(-q / 40)
        let q = Matrix::from_fn(8, 6, |r, t| (r * 6 + t) as f64 * 3.0);
        let target = q.map(|qv| c.v_max * (-qv / 40.0).exp());
        let mut opt = Adam::new(0.01);
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let pred = m.forward(&q, true);
            let (loss, grad) = mse(&pred, &target);
            m.backward(&grad);
            let mut slot = 0;
            opt.begin_step();
            m.visit_params(&mut |p, g| {
                opt.apply(slot, p, g);
                slot += 1;
            });
            m.zero_grad();
            last = loss;
        }
        last
    }

    #[test]
    fn lstm_variant_learns_decreasing_law() {
        let loss = learns_fundamental_diagram(OvsVariant::Full);
        assert!(loss < 1.0, "final loss {loss}");
    }

    #[test]
    fn fc_variant_learns_decreasing_law() {
        let loss = learns_fundamental_diagram(OvsVariant::NoV2S);
        assert!(loss < 1.0, "final loss {loss}");
    }

    #[test]
    fn gradcheck_through_module() {
        let mut rng = Rng64::new(2);
        let c = cfg(OvsVariant::Full);
        let mut m = VolumeSpeedMapping::new(&c, &mut rng);
        let q = Matrix::from_fn(2, 4, |r, t| 10.0 + (r + t) as f64 * 5.0);
        let v = m.forward(&q, false);
        let dq = m.backward(&v); // loss = 0.5 ||v||^2
        let eps = 1e-5;
        for &idx in &[0usize, 3, 7] {
            let mut qp = q.clone();
            qp.as_mut_slice()[idx] += eps;
            let mut qm = q.clone();
            qm.as_mut_slice()[idx] -= eps;
            let lp = 0.5
                * m.forward(&qp, false)
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let lm = 0.5
                * m.forward(&qm, false)
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dq.as_slice()[idx];
            let denom = analytic.abs().max(numeric.abs()).max(1.0);
            assert!(
                ((analytic - numeric) / denom).abs() < 1e-5,
                "idx {idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gru_backend_works_and_is_smaller() {
        let mut rng = Rng64::new(4);
        let mut c = cfg(OvsVariant::Full);
        c.rnn_kind = crate::config::RnnKind::Gru;
        let mut gru = VolumeSpeedMapping::new(&c, &mut rng);
        let q = Matrix::filled(3, 4, 25.0);
        let v = gru.forward(&q, false);
        assert!(v.is_finite());
        assert!(v.as_slice().iter().all(|&s| s >= 0.0 && s <= c.v_max));
        let mut lstm = VolumeSpeedMapping::new(&cfg(OvsVariant::Full), &mut rng);
        assert!(gru.param_count() < lstm.param_count());
    }

    #[test]
    fn variants_have_different_parameterisations() {
        let mut rng = Rng64::new(3);
        let mut lstm = VolumeSpeedMapping::new(&cfg(OvsVariant::Full), &mut rng);
        let mut fc = VolumeSpeedMapping::new(&cfg(OvsVariant::NoV2S), &mut rng);
        assert_ne!(lstm.param_count(), fc.param_count());
    }
}
