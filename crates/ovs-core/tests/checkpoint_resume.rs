//! Resume-equivalence integration tests: training for 2N steps must be
//! indistinguishable — loss trace and weights, bit for bit — from
//! training N steps, checkpointing, and resuming for the remaining N.
//! Also covers the warm-start path (skip stages 1-2 entirely) and the
//! pipeline artifact round trip.

use checkpoint::format::Artifact;
use datagen::{Dataset, TodPattern};
use ovs_core::trainer::{OvsTrainer, PipelineCheckpoint, Stage};
use ovs_core::{artifact, EstimatorInput, OvsConfig, RecoveryPolicy, TrainError};

fn tiny_dataset() -> Dataset {
    let spec = datagen::dataset::DatasetSpec {
        t: 3,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.2,
        seed: 9,
    };
    Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
}

fn input(ds: &Dataset) -> EstimatorInput<'_> {
    EstimatorInput::builder(&ds.net, &ds.ods)
        .interval_s(ds.sim_config.interval_s)
        .sim_seed(ds.sim_config.seed)
        .train(&ds.train)
        .observed_speed(&ds.observed_speed)
        .build()
}

/// Deterministic config: dropout off, because the dropout RNG is not part
/// of the checkpoint (documented in DESIGN.md §7).
fn cfg() -> OvsConfig {
    OvsConfig {
        dropout: 0.0,
        ..OvsConfig::tiny()
    }
}

#[test]
fn resume_reproduces_uninterrupted_training_bit_exactly() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    // Reference: one uninterrupted run.
    let (mut ref_model, ref_report) = trainer.run(&inp).unwrap();
    let ref_weights = ref_model.export_weights();

    // Same run with periodic checkpoint capture — the hook must not
    // perturb training.
    let mut caps: Vec<PipelineCheckpoint> = Vec::new();
    let (_, hooked_report) = trainer
        .run_resumable(
            &inp,
            7,
            &mut |cp| {
                caps.push(cp.clone());
                Ok(())
            },
            None,
        )
        .unwrap();
    assert_eq!(hooked_report.v2s_losses, ref_report.v2s_losses);
    assert_eq!(hooked_report.tod2v_losses, ref_report.tod2v_losses);
    assert_eq!(hooked_report.fit_losses, ref_report.fit_losses);
    assert!(
        caps.len() >= 3,
        "expected several checkpoints, got {}",
        caps.len()
    );
    // All three stages should have produced at least one snapshot.
    for stage in [Stage::V2s, Stage::Tod2v, Stage::Fit] {
        assert!(
            caps.iter().any(|cp| cp.state.stage == stage),
            "no checkpoint captured during {stage:?}"
        );
    }

    // Resume from an early, a middle, and a late snapshot: each resumed
    // run must land on the exact same traces and weights.
    for idx in [0, caps.len() / 2, caps.len() - 1] {
        let cp = caps[idx].clone();
        let stage = cp.state.stage;
        let step = cp.state.step;
        let (mut res_model, res_report) = trainer
            .run_resumable(&inp, 0, &mut |_| Ok(()), Some(cp))
            .unwrap();
        assert_eq!(
            res_report.v2s_losses, ref_report.v2s_losses,
            "v2s trace diverged resuming from {stage:?} step {step}"
        );
        assert_eq!(
            res_report.tod2v_losses, ref_report.tod2v_losses,
            "tod2v trace diverged resuming from {stage:?} step {step}"
        );
        assert_eq!(
            res_report.fit_losses, ref_report.fit_losses,
            "fit trace diverged resuming from {stage:?} step {step}"
        );
        assert_eq!(
            res_model.export_weights(),
            ref_weights,
            "weights diverged resuming from {stage:?} step {step}"
        );
    }
}

#[test]
fn pipeline_checkpoint_survives_the_artifact_format() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    let mut caps: Vec<PipelineCheckpoint> = Vec::new();
    trainer
        .run_resumable(
            &inp,
            11,
            &mut |cp| {
                caps.push(cp.clone());
                Ok(())
            },
            None,
        )
        .unwrap();
    let cp = caps[caps.len() / 2].clone();

    let bytes = artifact::save_pipeline(&cp, &cfg()).unwrap().to_bytes();
    let parsed = Artifact::from_bytes(&bytes).unwrap();
    let back = artifact::load_pipeline(&parsed, &cfg()).unwrap();

    assert_eq!(back.state.stage, cp.state.stage);
    assert_eq!(back.state.step, cp.state.step);
    assert_eq!(back.state.losses, cp.state.losses);
    assert_eq!(back.state.weights, cp.state.weights);
    assert_eq!(back.state.opt.t, cp.state.opt.t);
    assert_eq!(back.state.opt.m, cp.state.opt.m);
    assert_eq!(back.state.opt.v, cp.state.opt.v);
    assert_eq!(back.model_weights, cp.model_weights);
    assert_eq!(back.v2s_losses, cp.v2s_losses);
    assert_eq!(back.tod2v_losses, cp.tod2v_losses);

    // And a resume from the decoded snapshot matches a resume from the
    // in-memory one.
    let (_, rep_mem) = trainer
        .run_resumable(&inp, 0, &mut |_| Ok(()), Some(cp))
        .unwrap();
    let (_, rep_disk) = trainer
        .run_resumable(&inp, 0, &mut |_| Ok(()), Some(back))
        .unwrap();
    assert_eq!(rep_mem.fit_losses, rep_disk.fit_losses);
}

/// Fault-injection extension of the resume-equivalence property: a loss
/// transiently poisoned to `NaN` mid-stage trips the non-finite guard,
/// which rolls back to the last good checkpoint and replays — and the
/// replayed trajectory is bit-identical to a run that was never poisoned.
#[test]
fn transiently_poisoned_run_heals_bit_exactly() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    let (mut ref_model, ref_report) = trainer.run(&inp).unwrap();
    let ref_weights = ref_model.export_weights();

    // Poison one step in every stage, once each; all steps sit past the
    // first checkpoint anchor (every 7 steps) so each rollback replays a
    // short stretch rather than the whole stage.
    let mut poisoned: Vec<(Stage, usize)> = Vec::new();
    let mut tamper = |stage: Stage, step: usize, loss: &mut f64, _norm: &mut f64| {
        let plan = [(Stage::V2s, 9), (Stage::Tod2v, 8), (Stage::Fit, 10)];
        if plan.contains(&(stage, step)) && !poisoned.contains(&(stage, step)) {
            poisoned.push((stage, step));
            *loss = f64::NAN;
        }
    };
    let (mut healed_model, healed_report) = trainer
        .run_resumable_guarded(
            &inp,
            7,
            &mut |_| Ok(()),
            None,
            RecoveryPolicy::default(),
            Some(&mut tamper),
        )
        .expect("a transient non-finite loss must heal, not abort");

    assert_eq!(
        poisoned.len(),
        3,
        "all three stage faults fired: {poisoned:?}"
    );
    assert_eq!(healed_report.v2s_losses, ref_report.v2s_losses);
    assert_eq!(healed_report.tod2v_losses, ref_report.tod2v_losses);
    assert_eq!(healed_report.fit_losses, ref_report.fit_losses);
    assert_eq!(
        healed_model.export_weights(),
        ref_weights,
        "healed weights must be bit-identical to the uninjected run"
    );
}

/// The retry budget is finite: a fault that re-fires on every replay of
/// the same step ends in the typed divergence error.
#[test]
fn persistent_poison_is_a_typed_divergence() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    let mut tamper = |stage: Stage, step: usize, loss: &mut f64, _norm: &mut f64| {
        if stage == Stage::Tod2v && step == 2 {
            *loss = f64::INFINITY;
        }
    };
    let outcome = trainer.run_resumable_guarded(
        &inp,
        0,
        &mut |_| Ok(()),
        None,
        RecoveryPolicy {
            max_retries: 2,
            lr_backoff: 0.5,
        },
        Some(&mut tamper),
    );
    let Err(err) = outcome else {
        panic!("a persistent fault must not heal");
    };
    match err {
        TrainError::Diverged {
            stage,
            step,
            retries,
        } => {
            assert_eq!((stage, step, retries), (Stage::Tod2v, 2, 2));
        }
        other => panic!("expected TrainError::Diverged, got {other}"),
    }
}

#[test]
fn warm_start_skips_stages_and_converges() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    let (mut cold_model, cold_report) = trainer.run(&inp).unwrap();
    assert!(cold_report.final_tod2v().is_some());
    let weights = cold_model.export_weights();

    let (_, warm_report) = trainer.run_warm(&inp, &weights).unwrap();
    assert!(warm_report.v2s_losses.is_empty());
    assert!(warm_report.tod2v_losses.is_empty());
    assert!(!warm_report.fit_losses.is_empty());
    assert!(warm_report.final_fit().unwrap().is_finite());

    let cold_steps = cold_report.v2s_losses.len()
        + cold_report.tod2v_losses.len()
        + cold_report.fit_losses.len();
    let warm_steps = warm_report.fit_losses.len();
    assert!(
        warm_steps < cold_steps,
        "warm start must save steps: {warm_steps} vs {cold_steps}"
    );
}
