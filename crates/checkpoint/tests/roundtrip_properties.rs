//! Property-based tests for the artifact container: save -> load -> save
//! byte-identity over random layer stacks and random section mixes,
//! bit-exactness of every `f64` (NaN payloads included), and the
//! corruption guarantees — a flipped payload byte or a truncation can
//! only surface as a typed error, never as data or a panic.

use checkpoint::format::{crc32, Artifact, ArtifactBuilder, MAGIC};
use checkpoint::module::{export_layer, export_seq_layer, import_layer, import_seq_layer};
use checkpoint::CheckpointError;
use neural::layers::{
    ActKind, Activation, Dense, Lstm, SeqSequential, Sequential, TimeDistributed,
};
use neural::optim::AdamSnapshot;
use neural::rng::Rng64;
use neural::Matrix;
use proptest::prelude::*;

/// A random dense stack `inp -> w1 -> ... -> wk -> out` with sigmoid
/// gaps, weights drawn from the seeded RNG.
fn random_dense_stack(seed: u64, widths: &[usize]) -> Sequential {
    let mut rng = Rng64::new(seed);
    let mut layers: Vec<Box<dyn neural::layers::Layer>> = Vec::new();
    for pair in widths.windows(2) {
        layers.push(Box::new(Dense::new(pair[0], pair[1], &mut rng)));
        layers.push(Box::new(Activation::new(ActKind::Sigmoid)));
    }
    Sequential::new(layers)
}

/// Byte offset where the payload region starts: header, then one table
/// entry per section (2-byte name length + name + 8-byte payload length
/// + 4-byte CRC). Everything at or after this offset is CRC-covered.
fn payload_start(artifact: &Artifact) -> usize {
    let mut off = 8 + 4 + 4; // magic + version + section count
    off += 2 + "__kind__".len() + 8 + 4;
    for name in artifact.section_names() {
        off += 2 + name.len() + 8 + 4;
    }
    off
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Export -> serialise -> parse -> import -> export again is
    /// bit-identical for random layer stacks: the weights decode exactly
    /// and the re-serialised artifact matches byte for byte.
    #[test]
    fn dense_stack_save_load_save_is_byte_identical(
        seed in 0u64..1000,
        w1 in 1usize..6,
        w2 in 1usize..6,
        w3 in 1usize..6,
    ) {
        let widths = [w1, w2, w3];
        let mut net = random_dense_stack(seed, &widths);
        let mut b = ArtifactBuilder::new("prop-dense");
        b.add_matrices("weights", &export_layer(&mut net));
        let bytes = b.to_bytes();

        let parsed = Artifact::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed.to_bytes(), bytes.clone());

        // Import into a differently-initialised net of the same shape.
        let mut other = random_dense_stack(seed.wrapping_add(1), &widths);
        import_layer(&mut other, &parsed.matrices("weights").unwrap()).unwrap();
        let mut b2 = ArtifactBuilder::new("prop-dense");
        b2.add_matrices("weights", &export_layer(&mut other));
        prop_assert_eq!(b2.to_bytes(), bytes);
    }

    /// The same byte-identity holds for recurrent stacks (LSTM gates have
    /// many parameter slots; slot order must be stable).
    #[test]
    fn lstm_stack_save_load_save_is_byte_identical(
        seed in 0u64..1000,
        inp in 1usize..4,
        hidden in 1usize..4,
        out in 1usize..4,
    ) {
        let build = |s: u64| {
            let mut rng = Rng64::new(s);
            SeqSequential::new(vec![
                Box::new(Lstm::new(inp, hidden, &mut rng)) as Box<dyn neural::layers::SeqLayer>,
                Box::new(TimeDistributed::new(Dense::new(hidden, out, &mut rng))),
            ])
        };
        let mut net = build(seed);
        let mut b = ArtifactBuilder::new("prop-lstm");
        b.add_matrices("weights", &export_seq_layer(&mut net));
        let bytes = b.to_bytes();

        let parsed = Artifact::from_bytes(&bytes).unwrap();
        let mut other = build(seed.wrapping_add(17));
        import_seq_layer(&mut other, &parsed.matrices("weights").unwrap()).unwrap();
        let mut b2 = ArtifactBuilder::new("prop-lstm");
        b2.add_matrices("weights", &export_seq_layer(&mut other));
        prop_assert_eq!(b2.to_bytes(), bytes);
    }

    /// Every `f64` bit pattern survives a section round trip exactly —
    /// including NaNs with payloads, signed zeros, infinities and
    /// subnormals, which textual formats mangle.
    #[test]
    fn f64_sections_are_bit_exact(bits in proptest::collection::vec(0u64..u64::MAX, 16)) {
        let mut vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        // Always include the patterns text formats mangle.
        vals.extend([
            f64::NAN,
            f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN with payload
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0, // subnormal
        ]);
        let mut b = ArtifactBuilder::new("prop-f64");
        b.add_f64s("values", &vals);
        let parsed = Artifact::from_bytes(&b.to_bytes()).unwrap();
        let back = parsed.f64s("values").unwrap();
        prop_assert_eq!(back.len(), vals.len());
        for (a, b) in back.iter().zip(&vals) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Adam state (step count and both moment buffers) round trips
    /// exactly through its dedicated section codec.
    #[test]
    fn adam_state_round_trips(
        seed in 0u64..1000,
        t in 0u64..100_000,
        slots in 1usize..4,
        r in 1usize..4,
        c in 1usize..4,
    ) {
        let mut rng = Rng64::new(seed);
        let mut mk = || {
            let mut m = Matrix::zeros(r, c);
            rng.fill_normal(m.as_mut_slice());
            m
        };
        let snap = AdamSnapshot {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t,
            m: (0..slots).map(|_| mk()).collect(),
            v: (0..slots).map(|_| mk()).collect(),
        };
        let mut b = ArtifactBuilder::new("prop-adam");
        b.add_adam("opt", &snap);
        let parsed = Artifact::from_bytes(&b.to_bytes()).unwrap();
        let back = parsed.adam("opt").unwrap();
        prop_assert_eq!(back.t, snap.t);
        prop_assert_eq!(back.m.len(), slots);
        for (a, b) in back.m.iter().zip(&snap.m) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
        for (a, b) in back.v.iter().zip(&snap.v) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// Flipping any bit in the payload region is caught by a section CRC:
    /// the parse fails with `ChecksumMismatch`, never succeeds and never
    /// panics.
    #[test]
    fn payload_corruption_is_always_detected(
        seed in 0u64..1000,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut net = random_dense_stack(seed, &[3, 4, 2]);
        let mut b = ArtifactBuilder::new("prop-corrupt");
        b.add_matrices("weights", &export_layer(&mut net));
        b.add_f64s("losses", &[1.0, 0.5]);
        let bytes = b.to_bytes();
        let parsed = Artifact::from_bytes(&bytes).unwrap();

        let start = payload_start(&parsed);
        let pos = start + ((bytes.len() - start - 1) as f64 * pos_frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        prop_assert!(matches!(
            Artifact::from_bytes(&corrupt),
            Err(CheckpointError::ChecksumMismatch { .. })
        ), "flip at byte {} bit {} must be caught", pos, bit);
    }

    /// Corrupting *any* byte anywhere (header and table included) never
    /// panics: the result is either a typed error or — only when the flip
    /// lands in an uncovered table field like a section name — a parse
    /// whose re-serialisation still differs from the original.
    #[test]
    fn arbitrary_corruption_never_panics(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut b = ArtifactBuilder::new("prop-any");
        b.add_f64s("values", &[1.0, 2.0, 3.0]);
        b.add_str("meta", "hello");
        let bytes = b.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        match Artifact::from_bytes(&corrupt) {
            Err(_) => {}
            Ok(a) => prop_assert_eq!(a.to_bytes(), corrupt),
        }
    }

    /// Truncating the file at any point yields a typed error, not a panic
    /// and not a silently shorter artifact.
    #[test]
    fn truncation_is_always_detected(cut_frac in 0.0f64..1.0) {
        let mut b = ArtifactBuilder::new("prop-trunc");
        b.add_f64s("values", &[4.0; 32]);
        let bytes = b.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(Artifact::from_bytes(&bytes[..cut]).is_err());
    }
}

/// The CRC implementation matches the IEEE 802.3 reference vector, so
/// files are portable across independent implementations.
#[test]
fn crc_matches_reference_vector() {
    assert_eq!(crc32(b"123456789"), 0xCBF43926);
}

/// The magic keeps artifacts from being confused with other binary files.
#[test]
fn magic_is_the_documented_constant() {
    assert_eq!(&MAGIC, b"OVSCKPT\0");
    let b = ArtifactBuilder::new("k");
    assert_eq!(&b.to_bytes()[..8], b"OVSCKPT\0");
}
