//! Read-side snapshot API: immutable, cheaply shareable artifact handles.
//!
//! Training writes artifacts through [`crate::store::ArtifactStore::save`];
//! everything that *reads* a model — the eval harness, the bench model
//! cache, the `cityod checkpoint` CLI and the serving layer — goes through
//! a [`Snapshot`] instead of raw `load` calls. A snapshot is taken exactly
//! once: the bytes are read, every section checksum is verified, and the
//! decoded [`Artifact`] plus a stable content fingerprint are frozen
//! behind an `Arc`. Cloning a snapshot is a pointer copy, so a server can
//! hand the same decoded model to hundreds of concurrent readers without
//! re-reading or re-verifying anything.
//!
//! The fingerprint is a pure function of the artifact bytes
//! (`"{len:x}-{crc32:08x}"`), which makes it usable as an HTTP ETag: two
//! stores holding byte-identical artifacts produce byte-identical
//! fingerprints, and `cityod checkpoint inspect` prints the same string a
//! server would emit in its `ETag` header.
//!
//! [`SnapshotWatcher`] closes the loop for long-running readers: it polls
//! the newest good version of an artifact family (quarantining corrupt
//! entries exactly like the self-healing trainer does) and atomically
//! swaps in a fresh snapshot when a newer checkpoint lands. Readers that
//! grabbed the old snapshot keep a valid handle — there is no torn state,
//! only old-or-new.

use crate::format::{crc32, Artifact};
use crate::retry::{is_transient, Clock, RetryPolicy};
use crate::store::{ArtifactStore, PinGuard, Provenance};
use crate::{CheckpointError, Result};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable overriding the default watcher poll interval, in
/// milliseconds. Shared by every long-running watcher host (`cityod
/// serve`, `cityod stream run`); an explicit builder or CLI setting beats
/// the environment, which beats [`DEFAULT_WATCH_INTERVAL_MS`].
pub const WATCH_INTERVAL_ENV: &str = "CITYOD_WATCH_INTERVAL_MS";

/// Default watcher poll interval when neither a builder option nor
/// [`WATCH_INTERVAL_ENV`] says otherwise.
pub const DEFAULT_WATCH_INTERVAL_MS: u64 = 200;

/// Empty-poll backoff cap, as a multiple of the configured interval:
/// consecutive polls that resolve *no* artifact double the suggested
/// delay (interval, 2x, 4x, ...) up to `interval * WATCH_BACKOFF_CAP`,
/// and any poll that finds an artifact resets the delay to the interval.
pub const WATCH_BACKOFF_CAP: u64 = 8;

/// The effective default poll interval: [`WATCH_INTERVAL_ENV`] when set
/// to a positive integer, [`DEFAULT_WATCH_INTERVAL_MS`] otherwise.
pub fn default_watch_interval_ms() -> u64 {
    // lint: allow(determinism) — operator-facing poll cadence, not data.
    std::env::var(WATCH_INTERVAL_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_WATCH_INTERVAL_MS)
}

/// Immutable view of one verified artifact: decoded contents plus the
/// content fingerprint. Cloning is an `Arc` pointer copy.
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    name: String,
    fingerprint: String,
    size: u64,
    content_crc: u32,
    artifact: Artifact,
    provenance: Option<Provenance>,
}

impl Snapshot {
    /// Builds a snapshot from raw artifact bytes (already read from
    /// somewhere). Verifies every section checksum before freezing.
    pub fn from_bytes(name: &str, bytes: &[u8], provenance: Option<Provenance>) -> Result<Self> {
        let artifact = Artifact::from_bytes(bytes)?;
        let crc = crc32(bytes);
        Ok(Self {
            inner: Arc::new(SnapshotInner {
                name: name.to_string(),
                fingerprint: fingerprint(bytes.len() as u64, crc),
                size: bytes.len() as u64,
                content_crc: crc,
                artifact,
                provenance,
            }),
        })
    }

    /// Reads and verifies a `.ckpt` file directly (no store). The
    /// snapshot name is the file stem; no provenance sidecar is read.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("artifact")
            .to_string();
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&name, &bytes, None)
    }

    /// The artifact name the snapshot was taken from.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Stable content fingerprint: `"{size:x}-{crc32:08x}"` over the
    /// whole artifact byte string. Byte-identical artifacts always yield
    /// identical fingerprints, on any machine.
    pub fn fingerprint(&self) -> &str {
        &self.inner.fingerprint
    }

    /// The fingerprint in HTTP ETag form: `"\"{fingerprint}\""`.
    pub fn etag(&self) -> String {
        format!("\"{}\"", self.inner.fingerprint)
    }

    /// Size of the artifact file in bytes.
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// CRC32 of the whole artifact byte string.
    pub fn content_crc(&self) -> u32 {
        self.inner.content_crc
    }

    /// The decoded, checksum-verified artifact.
    pub fn artifact(&self) -> &Artifact {
        &self.inner.artifact
    }

    /// Provenance sidecar contents, when the snapshot came from a store
    /// that had one.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.inner.provenance.as_ref()
    }

    /// True when `other` refers to byte-identical artifact content.
    pub fn same_content(&self, other: &Snapshot) -> bool {
        self.inner.fingerprint == other.inner.fingerprint
    }
}

/// The shared fingerprint encoding: length (hex) + CRC32 of the bytes.
fn fingerprint(size: u64, crc: u32) -> String {
    format!("{size:x}-{crc:08x}")
}

impl ArtifactStore {
    /// Takes a snapshot of a named artifact: one read, full checksum
    /// verification, provenance sidecar attached when present.
    pub fn snapshot(&self, name: &str) -> Result<Snapshot> {
        Self::validate_name(name)?;
        let path = self.artifact_path(name);
        if !path.exists() {
            return Err(CheckpointError::MissingSection {
                name: format!("artifact '{name}' in {}", self.dir().display()),
            });
        }
        let bytes = std::fs::read(&path)?;
        Snapshot::from_bytes(name, &bytes, self.provenance(name)?)
    }

    /// [`ArtifactStore::snapshot`] under a bounded retry policy:
    /// transient read failures (torn concurrent writes, IO hiccups) are
    /// retried with deterministic backoff before the error surfaces.
    pub fn snapshot_with_retry(
        &self,
        name: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<Snapshot> {
        crate::retry::with_retry(policy, clock, || self.snapshot(name))
    }

    /// Snapshot with retries; persistent corruption-class failures
    /// quarantine the artifact and return `Ok(None)` so callers can fall
    /// back to an older version. Permanent errors still surface as `Err`.
    pub fn snapshot_or_quarantine(
        &self,
        name: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<Option<Snapshot>> {
        match self.snapshot_with_retry(name, policy, clock) {
            Ok(s) => Ok(Some(s)),
            Err(e) if is_transient(&e) => {
                self.quarantine(name)?;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Walks a versioned family (`{family}-vNNN`) newest-first and
    /// returns a snapshot of the first member that loads clean,
    /// quarantining every corrupt entry it skips. `Ok(None)` means no
    /// version of the family survived.
    pub fn latest_good(
        &self,
        family: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<Option<Snapshot>> {
        Self::validate_name(family)?;
        let versions = self.family_versions(family)?;
        for (_, name) in versions.into_iter().rev() {
            if let Some(snapshot) = self.snapshot_or_quarantine(&name, policy, clock)? {
                return Ok(Some(snapshot));
            }
        }
        Ok(None)
    }
}

/// Where a [`SnapshotWatcher`] resolves its artifact from.
#[derive(Debug, Clone)]
pub enum SnapshotSource {
    /// A fixed artifact name; the watcher re-snapshots when the bytes at
    /// that name change.
    Name(String),
    /// A versioned family; the watcher follows the newest good version,
    /// quarantining corrupt entries along the way.
    Family(String),
}

impl SnapshotSource {
    /// Follow the newest good version of a versioned family — the
    /// spelling streaming callers use. Alias for
    /// [`SnapshotSource::Family`]: resolution walks `{family}-vNNN`
    /// newest-first and quarantines corrupt entries on the way (see
    /// [`ArtifactStore::latest_good`]).
    pub fn latest_good(family: impl Into<String>) -> Self {
        Self::Family(family.into())
    }

    /// The name or family string the watcher was pointed at.
    pub fn target(&self) -> &str {
        match self {
            Self::Name(s) | Self::Family(s) => s,
        }
    }
}

/// Polls a store for new artifact versions and atomically swaps the
/// current [`Snapshot`]. `current()` is wait-free for readers (a mutex'd
/// `Arc` clone); `poll()` does the IO and is meant to run on one
/// background thread or timer.
#[derive(Debug)]
pub struct SnapshotWatcher {
    store: ArtifactStore,
    source: SnapshotSource,
    policy: RetryPolicy,
    interval_ms: u64,
    empty_streak: AtomicU32,
    current: Mutex<Option<Snapshot>>,
    // Pin on the installed snapshot's artifact: an in-process gc of the
    // watched family can never collect the version readers are holding.
    pin: Mutex<Option<PinGuard>>,
}

impl SnapshotWatcher {
    /// A watcher with no snapshot loaded yet; call [`SnapshotWatcher::poll`]
    /// to populate it. The poll interval starts at
    /// [`default_watch_interval_ms`] (environment-aware); override it
    /// with [`SnapshotWatcher::with_poll_interval`].
    pub fn new(store: ArtifactStore, source: SnapshotSource, policy: RetryPolicy) -> Self {
        Self {
            store,
            source,
            policy,
            interval_ms: default_watch_interval_ms(),
            empty_streak: AtomicU32::new(0),
            current: Mutex::new(None),
            pin: Mutex::new(None),
        }
    }

    /// Sets the base poll interval in milliseconds (clamped to >= 1),
    /// overriding the environment-derived default.
    pub fn with_poll_interval(mut self, ms: u64) -> Self {
        self.interval_ms = ms.max(1);
        self
    }

    /// The configured base poll interval in milliseconds.
    pub fn poll_interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// How long the host loop should sleep before the next poll: the base
    /// interval, doubled for each consecutive poll that resolved no
    /// artifact, capped at `interval * `[`WATCH_BACKOFF_CAP`]. Any poll
    /// that finds an artifact (swap or not) resets the backoff.
    pub fn next_poll_delay_ms(&self) -> u64 {
        let streak = self.empty_streak.load(Ordering::Relaxed).min(32);
        let factor = 1u64.checked_shl(streak).unwrap_or(u64::MAX);
        self.interval_ms
            .saturating_mul(factor.min(WATCH_BACKOFF_CAP))
    }

    /// The store the watcher polls.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The source the watcher resolves.
    pub fn source(&self) -> &SnapshotSource {
        &self.source
    }

    /// The currently installed snapshot, if any. Cheap (`Arc` clone).
    pub fn current(&self) -> Option<Snapshot> {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Resolves the source to its freshest good snapshot and installs it
    /// if the content changed. Returns `Ok(true)` when a swap happened.
    ///
    /// A resolution that finds *no* good artifact leaves the previous
    /// snapshot installed — a reader never loses a working model because
    /// the newest write was corrupt; the corrupt entry is quarantined and
    /// the fallback version takes over on the same poll.
    pub fn poll(&self, clock: &dyn Clock) -> Result<bool> {
        let fresh = match &self.source {
            SnapshotSource::Name(name) => {
                self.store
                    .snapshot_or_quarantine(name, &self.policy, clock)?
            }
            SnapshotSource::Family(family) => {
                self.store.latest_good(family, &self.policy, clock)?
            }
        };
        let Some(fresh) = fresh else {
            self.empty_streak.fetch_add(1, Ordering::Relaxed);
            obs::global()
                .counter("snapshot_watcher_empty_polls_total")
                .inc();
            return Ok(false);
        };
        self.empty_streak.store(0, Ordering::Relaxed);
        let mut cur = self
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let changed = match cur.as_ref() {
            Some(existing) => !existing.same_content(&fresh),
            None => true,
        };
        if changed {
            // Pin the incoming version before releasing the old pin so an
            // in-process gc can never catch the family unpinned.
            // lint: allow(concurrency) — lock order is always `current` then the store's internal lock, never the reverse, so pinning under the guard cannot deadlock.
            let fresh_pin = self.store.pin(fresh.name()).ok();
            *cur = Some(fresh);
            *self.pin.lock().unwrap_or_else(|p| p.into_inner()) = fresh_pin;
            obs::global().counter("snapshot_watcher_swaps_total").inc();
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ArtifactBuilder;
    use crate::retry::RecordingClock;
    use neural::Matrix;

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("cityod-snapshot-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).unwrap()
    }

    fn builder(fill: f64) -> ArtifactBuilder {
        let mut b = ArtifactBuilder::new("snap-test");
        b.add_matrices("w", &[Matrix::filled(2, 2, fill)]);
        b
    }

    #[test]
    fn snapshot_matches_inspect_and_is_cheap_to_clone() {
        let store = tmp_store("basic");
        let prov = Provenance::new("snap-test", "{}", 11);
        store.save("alpha", &builder(1.0), &prov).unwrap();

        let snap = store.snapshot("alpha").unwrap();
        let rec = store.inspect("alpha").unwrap();
        assert_eq!(snap.name(), "alpha");
        assert_eq!(snap.size(), rec.size);
        assert_eq!(snap.content_crc(), rec.content_crc);
        assert_eq!(
            snap.fingerprint(),
            format!("{:x}-{:08x}", rec.size, rec.content_crc)
        );
        assert_eq!(snap.etag(), format!("\"{}\"", snap.fingerprint()));
        assert_eq!(snap.provenance().unwrap().seed, 11);
        assert_eq!(snap.artifact().kind(), "snap-test");

        let clone = snap.clone();
        assert!(clone.same_content(&snap));
        assert!(std::ptr::eq(clone.artifact(), snap.artifact()));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fingerprint_is_content_derived() {
        let store = tmp_store("fp");
        let prov = Provenance::new("snap-test", "{}", 0);
        store.save("a", &builder(1.0), &prov).unwrap();
        store.save("b", &builder(1.0), &prov).unwrap();
        store.save("c", &builder(2.0), &prov).unwrap();
        let a = store.snapshot("a").unwrap();
        let b = store.snapshot("b").unwrap();
        let c = store.snapshot("c").unwrap();
        // Same bytes, different name -> same fingerprint.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different content -> different fingerprint.
        assert_ne!(a.fingerprint(), c.fingerprint());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn read_from_file_agrees_with_store_snapshot() {
        let store = tmp_store("file");
        let prov = Provenance::new("snap-test", "{}", 0);
        let path = store.save("direct", &builder(0.5), &prov).unwrap();
        let via_store = store.snapshot("direct").unwrap();
        let via_file = Snapshot::read_from(&path).unwrap();
        assert_eq!(via_file.name(), "direct");
        assert!(via_file.same_content(&via_store));
        // File path skips the sidecar on purpose.
        assert!(via_file.provenance().is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_artifact_is_permanent_error() {
        let store = tmp_store("missing");
        assert!(matches!(
            store.snapshot("absent"),
            Err(CheckpointError::MissingSection { .. })
        ));
        let clock = RecordingClock::new();
        assert!(store
            .snapshot_or_quarantine("absent", &RetryPolicy::default(), &clock)
            .is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn latest_good_skips_corrupt_newest_and_quarantines() {
        let store = tmp_store("latest");
        let prov = Provenance::new("snap-test", "{}", 0);
        store.save_versioned("fam", &builder(1.0), &prov).unwrap();
        let v2 = store.save_versioned("fam", &builder(2.0), &prov).unwrap();
        // Corrupt the newest version's payload.
        let path = store.artifact_path(&v2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let clock = RecordingClock::new();
        let got = store
            .latest_good(
                "fam",
                &RetryPolicy {
                    attempts: 2,
                    base_backoff_ms: 1,
                },
                &clock,
            )
            .unwrap()
            .expect("v001 still good");
        assert_eq!(got.name(), "fam-v001");
        assert!(!store.names().unwrap().contains(&v2));
        // No versions at all -> Ok(None).
        assert!(store
            .latest_good("ghost", &RetryPolicy::default(), &clock)
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn watcher_swaps_only_on_content_change() {
        let store = tmp_store("watch");
        let prov = Provenance::new("snap-test", "{}", 0);
        let clock = RecordingClock::new();
        let watcher = SnapshotWatcher::new(
            store.clone(),
            SnapshotSource::Family("m".to_string()),
            RetryPolicy {
                attempts: 2,
                base_backoff_ms: 1,
            },
        );
        // Empty family: no snapshot, no swap.
        assert!(!watcher.poll(&clock).unwrap());
        assert!(watcher.current().is_none());

        store.save_versioned("m", &builder(1.0), &prov).unwrap();
        assert!(watcher.poll(&clock).unwrap());
        let first = watcher.current().expect("installed");
        assert_eq!(first.name(), "m-v001");

        // Re-poll with nothing new: no swap, same snapshot.
        assert!(!watcher.poll(&clock).unwrap());
        assert!(watcher.current().unwrap().same_content(&first));

        // A new version lands: swap, new fingerprint.
        store.save_versioned("m", &builder(3.0), &prov).unwrap();
        assert!(watcher.poll(&clock).unwrap());
        let second = watcher.current().expect("still installed");
        assert_eq!(second.name(), "m-v002");
        assert!(!second.same_content(&first));
        // The old handle is still fully usable after the swap.
        assert_eq!(first.artifact().kind(), "snap-test");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_poll_backoff_doubles_to_cap_and_resets() {
        let store = tmp_store("backoff");
        let clock = RecordingClock::new();
        let watcher = SnapshotWatcher::new(
            store.clone(),
            SnapshotSource::latest_good("fam"),
            RetryPolicy::default(),
        )
        .with_poll_interval(10);
        assert_eq!(watcher.poll_interval_ms(), 10);
        assert_eq!(watcher.next_poll_delay_ms(), 10);
        // Each empty poll doubles the suggested delay, capped at
        // interval * WATCH_BACKOFF_CAP.
        for expect in [20, 40, 80, 80, 80] {
            assert!(!watcher.poll(&clock).unwrap());
            assert_eq!(watcher.next_poll_delay_ms(), expect);
        }
        // A poll that finds an artifact resets the backoff.
        let prov = Provenance::new("snap-test", "{}", 0);
        store.save_versioned("fam", &builder(1.0), &prov).unwrap();
        assert!(watcher.poll(&clock).unwrap());
        assert_eq!(watcher.next_poll_delay_ms(), 10);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn watch_interval_env_sets_default() {
        std::env::set_var(WATCH_INTERVAL_ENV, "77");
        assert_eq!(default_watch_interval_ms(), 77);
        std::env::set_var(WATCH_INTERVAL_ENV, "not-a-number");
        assert_eq!(default_watch_interval_ms(), DEFAULT_WATCH_INTERVAL_MS);
        std::env::remove_var(WATCH_INTERVAL_ENV);
        assert_eq!(default_watch_interval_ms(), DEFAULT_WATCH_INTERVAL_MS);
    }

    #[test]
    fn watcher_pins_current_version_against_gc() {
        let store = tmp_store("pin");
        let prov = Provenance::new("snap-test", "{}", 0);
        let clock = RecordingClock::new();
        let watcher = SnapshotWatcher::new(
            store.clone(),
            SnapshotSource::latest_good("fam"),
            RetryPolicy::default(),
        );
        store.save_versioned("fam", &builder(1.0), &prov).unwrap();
        assert!(watcher.poll(&clock).unwrap());
        assert!(store.is_pinned("fam-v001"));

        // Two newer versions land; gc keep=1 may not touch the pinned
        // v001 (still installed in the watcher) nor v003 (newest good).
        store.save_versioned("fam", &builder(2.0), &prov).unwrap();
        store.save_versioned("fam", &builder(3.0), &prov).unwrap();
        assert_eq!(store.gc("fam", 1).unwrap(), ["fam-v002"]);
        assert!(store.names().unwrap().contains(&"fam-v001".to_string()));

        // The watcher advances to v003: the pin moves with it and v001
        // becomes collectable.
        assert!(watcher.poll(&clock).unwrap());
        assert_eq!(watcher.current().unwrap().name(), "fam-v003");
        assert!(store.is_pinned("fam-v003"));
        assert!(!store.is_pinned("fam-v001"));
        assert_eq!(store.gc("fam", 1).unwrap(), ["fam-v001"]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn watcher_keeps_old_snapshot_when_newest_is_corrupt() {
        let store = tmp_store("watch-corrupt");
        let prov = Provenance::new("snap-test", "{}", 0);
        let clock = RecordingClock::new();
        let policy = RetryPolicy {
            attempts: 2,
            base_backoff_ms: 1,
        };
        let watcher = SnapshotWatcher::new(
            store.clone(),
            SnapshotSource::Family("m".to_string()),
            policy,
        );
        store.save_versioned("m", &builder(1.0), &prov).unwrap();
        assert!(watcher.poll(&clock).unwrap());
        let good = watcher.current().expect("v001 installed");

        // Newest version is corrupt: poll quarantines it and keeps v001
        // (resolution falls back to the same content -> no swap).
        let v2 = store.save_versioned("m", &builder(9.0), &prov).unwrap();
        let path = store.artifact_path(&v2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(!watcher.poll(&clock).unwrap());
        assert!(watcher.current().unwrap().same_content(&good));
        assert!(!store.names().unwrap().contains(&v2));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
