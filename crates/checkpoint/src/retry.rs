//! Bounded retry-with-backoff for artifact IO.
//!
//! Storage faults (torn writes, transient filesystem errors, bit rot)
//! surface from this crate as typed [`CheckpointError`]s. The retry layer
//! classifies them: *transient* failures (`Io`, `Truncated`,
//! `ChecksumMismatch`) are retried a bounded number of times with
//! exponential backoff, everything else (wrong kind, bad magic, shape
//! mismatch — redoing the read cannot help) fails immediately.
//!
//! Time is injected through the [`Clock`] trait so the fault-injection
//! suite can run thousands of retry cycles without sleeping: production
//! code passes [`SystemClock`], tests pass a recording stub. The backoff
//! schedule itself is a pure function of the policy and the attempt
//! index, so retry behaviour is bit-identical across runs and thread
//! counts — the determinism contract of DESIGN.md §10.

use crate::{CheckpointError, Result};

/// Injectable time source for retry backoff.
///
/// The only operation retries need is "wait this long"; wall-clock reads
/// stay out of the interface so nothing time-dependent can leak into
/// deterministic state.
pub trait Clock {
    /// Sleeps for `ms` milliseconds (or records that it would have).
    fn sleep_ms(&self, ms: u64);
}

/// Real wall-clock sleeping, for production use.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep_ms(&self, ms: u64) {
        // lint: allow(determinism) — backoff sleep only; duration is a
        // pure function of the policy and never read back into state.
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Test clock that records requested sleeps instead of performing them.
#[derive(Debug, Default)]
pub struct RecordingClock {
    sleeps: std::sync::Mutex<Vec<u64>>,
}

impl RecordingClock {
    /// A fresh recording clock with no sleeps recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sleep durations requested so far, in order.
    pub fn sleeps(&self) -> Vec<u64> {
        // A poisoned lock still holds valid data (u64 pushes can't leave
        // it half-written); recover the guard instead of panicking.
        self.sleeps
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl Clock for RecordingClock {
    fn sleep_ms(&self, ms: u64) {
        self.sleeps
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(ms);
    }
}

/// Bounded-retry policy: how many attempts, and the backoff base.
///
/// Attempt `k` (zero-based) that fails transiently is followed by a
/// `base_backoff_ms << k` millisecond sleep before the next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` is treated as `1`).
    pub attempts: u32,
    /// Backoff after the first failed attempt, in milliseconds.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_backoff_ms: 10,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (zero-based failure
    /// index): exponential doubling from the base.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_backoff_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
    }
}

/// True when retrying the operation could plausibly succeed: transient
/// IO failures and corruption that a concurrent writer may be repairing.
pub fn is_transient(e: &CheckpointError) -> bool {
    matches!(
        e,
        CheckpointError::Io(_)
            | CheckpointError::Truncated { .. }
            | CheckpointError::ChecksumMismatch { .. }
    )
}

/// Runs `op` under the retry policy: transient failures are retried with
/// exponential backoff until the attempt budget is exhausted, permanent
/// failures return immediately. The final error is returned unchanged.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    clock: &dyn Clock,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let attempts = policy.attempts.max(1);
    let mut failure = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && failure + 1 < attempts => {
                obs::global().counter("store_retries_total").inc();
                clock.sleep_ms(policy.backoff_ms(failure));
                failure += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_err() -> CheckpointError {
        CheckpointError::Io(std::io::Error::other("flaky"))
    }

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let clock = RecordingClock::new();
        let out: Result<i32> = with_retry(&RetryPolicy::default(), &clock, || Ok(7));
        assert_eq!(out.unwrap(), 7);
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn transient_failures_back_off_exponentially_then_give_up() {
        let clock = RecordingClock::new();
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff_ms: 5,
        };
        let mut calls = 0;
        let out: Result<()> = with_retry(&policy, &clock, || {
            calls += 1;
            Err(io_err())
        });
        assert!(out.is_err());
        assert_eq!(calls, 4);
        assert_eq!(clock.sleeps(), vec![5, 10, 20]);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let clock = RecordingClock::new();
        let mut calls = 0;
        let out = with_retry(&RetryPolicy::default(), &clock, || {
            calls += 1;
            if calls < 3 {
                Err(io_err())
            } else {
                Ok("fine")
            }
        });
        assert_eq!(out.unwrap(), "fine");
        assert_eq!(clock.sleeps().len(), 2);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let clock = RecordingClock::new();
        let mut calls = 0;
        let out: Result<()> = with_retry(&RetryPolicy::default(), &clock, || {
            calls += 1;
            Err(CheckpointError::WrongKind {
                expected: "a".into(),
                actual: "b".into(),
            })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            attempts: 80,
            base_backoff_ms: u64::MAX / 2,
        };
        assert_eq!(p.backoff_ms(70), u64::MAX);
    }
}
