//! # checkpoint — versioned model checkpoints and the artifact registry
//!
//! The persistence layer that turns the workspace from a batch of
//! retrain-everything scripts into a train-once / serve-many stack (the
//! reuse pattern production OD-estimation systems are built around — see
//! DESIGN.md §7). Three layers, bottom-up:
//!
//! 1. **[`format`]** — a versioned, checksummed, endianness-stable binary
//!    container: magic + format version + named section table + CRC32 per
//!    section. Serialisation is byte-deterministic: `save -> load -> save`
//!    reproduces the identical byte string, and every load verifies every
//!    checksum, so a corrupted artifact fails with a typed
//!    [`CheckpointError`] — never a garbage model.
//! 2. **[`codec`] / [`module`]** — encoders for the payloads that matter
//!    here: `f64` matrices (bit-exact, including the full Adam moment
//!    state via [`neural::optim::AdamSnapshot`]) and whole trainable
//!    modules reached through the deterministic `visit_params` slot
//!    ordering of `crates/neural`.
//! 3. **[`store`]** — the [`store::ArtifactStore`] registry: names,
//!    hashes, lists, verifies and garbage-collects artifacts under a
//!    workspace directory, and records provenance metadata (config JSON,
//!    seed, git describe, loss traces) with every save.
//!
//! Model-specific glue (saving an `OvsModel`, warm-starting a trainer)
//! lives next to the models themselves in `ovs-core` and `baselines`;
//! this crate only knows about matrices, optimiser snapshots and bytes.
//!
//! ```
//! use checkpoint::format::{Artifact, ArtifactBuilder};
//! use neural::Matrix;
//!
//! let mut b = ArtifactBuilder::new("example");
//! b.add_matrices("weights", &[Matrix::filled(2, 3, 0.5)]);
//! let bytes = b.to_bytes();
//! let a = Artifact::from_bytes(&bytes).unwrap();
//! assert_eq!(a.kind(), "example");
//! assert_eq!(a.matrices("weights").unwrap()[0].shape(), (2, 3));
//! assert_eq!(a.to_bytes(), bytes); // byte-deterministic round trip
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod format;
pub mod module;
pub mod retry;
pub mod snapshot;
pub mod store;

pub use format::{audit_bytes, Artifact, ArtifactAudit, ArtifactBuilder, FORMAT_VERSION, MAGIC};
pub use retry::{Clock, RecordingClock, RetryPolicy, SystemClock};
pub use snapshot::{
    default_watch_interval_ms, Snapshot, SnapshotSource, SnapshotWatcher,
    DEFAULT_WATCH_INTERVAL_MS, WATCH_BACKOFF_CAP, WATCH_INTERVAL_ENV,
};
pub use store::{ArtifactRecord, ArtifactStore, PinGuard, Provenance};

use std::fmt;

/// Typed failure modes of checkpoint parsing, verification and storage.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file does not start with the checkpoint magic — it is not an
    /// artifact at all (or an artifact of a foreign tool).
    BadMagic {
        /// The first bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The byte stream ended before a structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section's stored CRC32 does not match its payload.
    ChecksumMismatch {
        /// Section name.
        section: String,
        /// CRC recorded in the section table.
        stored: u32,
        /// CRC computed over the payload actually present.
        computed: u32,
    },
    /// A required section is absent from the artifact.
    MissingSection {
        /// The missing section's name.
        name: String,
    },
    /// The container parsed but a payload or field is inconsistent.
    Malformed(String),
    /// A tensor shape recorded in the artifact does not match the
    /// requesting model.
    ShapeMismatch {
        /// What the loader expected.
        expected: String,
        /// What the artifact holds.
        actual: String,
    },
    /// Artifact kind mismatch: the artifact exists and verifies, but it
    /// is not the kind of object the caller asked to load.
    WrongKind {
        /// Kind the caller expected.
        expected: String,
        /// Kind recorded in the artifact.
        actual: String,
    },
    /// Underlying filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => {
                write!(f, "bad magic: not a checkpoint artifact (found {found:02x?})")
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build supports <= {supported})"
            ),
            Self::Truncated { context } => {
                write!(f, "truncated artifact: bytes ran out while reading {context}")
            }
            Self::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in section '{section}': stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::MissingSection { name } => write!(f, "missing section '{name}'"),
            Self::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            Self::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, artifact holds {actual}")
            }
            Self::WrongKind { expected, actual } => {
                write!(f, "wrong artifact kind: expected '{expected}', found '{actual}'")
            }
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CheckpointError>;
