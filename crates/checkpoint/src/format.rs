//! The binary artifact container.
//!
//! Byte layout (all integers little-endian, independent of host
//! endianness; see DESIGN.md §7 for the versioning policy):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "OVSCKPT\0"
//! 8       4     u32    format version (currently 1)
//! 12      4     u32    section count S
//! 16      ...   section table, S entries:
//!                 u16  name length L
//!                 L    section name (UTF-8)
//!                 u64  payload length
//!                 u32  CRC32 (IEEE) of the payload
//! ...     ...   payloads, concatenated in table order
//! ```
//!
//! The artifact *kind* (what the payload is — an OVS model, a baseline
//! net, a stage state) travels as a reserved section named `__kind__`
//! whose payload is the UTF-8 kind string, so the container itself stays
//! schema-free. Section order is preserved exactly through a load, which
//! makes `save -> load -> save` byte-identical — the property the
//! round-trip proptests pin down.

use crate::{CheckpointError, Result};
use std::path::Path;

/// The 8-byte artifact magic.
pub const MAGIC: [u8; 8] = *b"OVSCKPT\0";

/// Current (and highest understood) container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Reserved section carrying the artifact kind string.
const KIND_SECTION: &str = "__kind__";

// --- CRC32 (IEEE 802.3, reflected) ---------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice — the per-section checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- little-endian primitives ---------------------------------------------

/// Append-only little-endian byte sink used by the payload codecs.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u16` (LE).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by its IEEE-754 bit pattern (LE) — bit-exact for
    /// every value including NaN payloads and signed zeros.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Finishes, yielding the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a byte slice; every
/// out-of-bounds read becomes a typed [`CheckpointError::Truncated`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated {
                context: format!("{context} ({n} bytes needed, {} left)", self.remaining()),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u16` (LE).
    pub fn u16(&mut self, context: &str) -> Result<u16> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self, context: &str) -> Result<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self, context: &str) -> Result<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern (LE).
    pub fn f64(&mut self, context: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a `u64` and narrows it to `usize`, guarding 32-bit hosts.
    pub fn len_u64(&mut self, context: &str) -> Result<usize> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| {
            CheckpointError::Malformed(format!("{context}: length {v} overflows usize"))
        })
    }
}

// --- builder ---------------------------------------------------------------

/// Accumulates named sections and serialises them into the container
/// format. Sections are written in insertion order; serialisation is
/// fully deterministic.
#[derive(Debug, Clone)]
pub struct ArtifactBuilder {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl ArtifactBuilder {
    /// Starts an artifact of the given kind (e.g. `"ovs-model"`).
    pub fn new(kind: &str) -> Self {
        Self {
            kind: kind.to_string(),
            sections: Vec::new(),
        }
    }

    /// The artifact kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Adds a raw byte section.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate or reserved section name, or a name longer
    /// than `u16::MAX` bytes — both are programming errors at the call
    /// site, not runtime conditions.
    pub fn add_bytes(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        assert!(
            name != KIND_SECTION,
            "section name '{KIND_SECTION}' is reserved"
        );
        assert!(
            !self.sections.iter().any(|(n, _)| n == name),
            "duplicate section '{name}'"
        );
        assert!(name.len() <= u16::MAX as usize, "section name too long");
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Adds a matrix-list section (see [`crate::codec::encode_matrices`]).
    pub fn add_matrices(&mut self, name: &str, ms: &[neural::Matrix]) -> &mut Self {
        self.add_bytes(name, crate::codec::encode_matrices(ms))
    }

    /// Adds a single-matrix section.
    pub fn add_matrix(&mut self, name: &str, m: &neural::Matrix) -> &mut Self {
        self.add_matrices(name, std::slice::from_ref(m))
    }

    /// Adds an Adam optimiser-state section.
    pub fn add_adam(&mut self, name: &str, s: &neural::optim::AdamSnapshot) -> &mut Self {
        self.add_bytes(name, crate::codec::encode_adam(s))
    }

    /// Adds an `f64`-vector section.
    pub fn add_f64s(&mut self, name: &str, vs: &[f64]) -> &mut Self {
        self.add_bytes(name, crate::codec::encode_f64s(vs))
    }

    /// Adds a UTF-8 string section (JSON metadata, notes, ...).
    pub fn add_str(&mut self, name: &str, s: &str) -> &mut Self {
        self.add_bytes(name, s.as_bytes().to_vec())
    }

    /// Serialises the artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION);
        let all: Vec<(&str, &[u8])> = std::iter::once((KIND_SECTION, self.kind.as_bytes()))
            .chain(
                self.sections
                    .iter()
                    .map(|(n, p)| (n.as_str(), p.as_slice())),
            )
            .collect();
        w.u32(all.len() as u32);
        for (name, payload) in &all {
            w.u16(name.len() as u16);
            w.bytes(name.as_bytes());
            w.u64(payload.len() as u64);
            w.u32(crc32(payload));
        }
        for (_, payload) in &all {
            w.bytes(payload);
        }
        w.into_bytes()
    }

    /// Serialises and writes the artifact to `path` atomically (write to
    /// a sibling temp file, then rename).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

// --- audit -----------------------------------------------------------------

/// Verification result for one section, as produced by [`audit_bytes`].
///
/// Unlike [`Artifact::from_bytes`], the audit does not stop at the first
/// bad checksum: every section is checked and reported with its payload
/// byte offset, so an operator (or the quarantine logic) can see exactly
/// which regions of the file are damaged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionAudit {
    /// Section name from the table.
    pub name: String,
    /// Byte offset of the section's payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 recorded in the section table.
    pub stored: u32,
    /// CRC32 computed over the payload actually present.
    pub computed: u32,
}

impl SectionAudit {
    /// True when the stored and computed checksums agree.
    pub fn ok(&self) -> bool {
        self.stored == self.computed
    }
}

/// Full-container audit: per-section checksum verdicts plus any
/// structural failure that stopped the walk early.
#[derive(Debug, Clone, Default)]
pub struct ArtifactAudit {
    /// Every section reachable through the table, in file order
    /// (including the reserved kind section).
    pub sections: Vec<SectionAudit>,
    /// Structural failure (bad magic, truncated table, ...) that ended
    /// the audit before all sections could be checked, if any.
    pub structural: Option<String>,
}

impl ArtifactAudit {
    /// The sections whose checksums do not match.
    pub fn failures(&self) -> Vec<&SectionAudit> {
        self.sections.iter().filter(|s| !s.ok()).collect()
    }

    /// True when the container is structurally sound and every section
    /// checksum verifies.
    pub fn is_clean(&self) -> bool {
        self.structural.is_none() && self.sections.iter().all(SectionAudit::ok)
    }
}

/// Audits a serialized artifact without decoding it: walks the section
/// table, checks **every** section's CRC32, and reports all failures
/// with byte offsets instead of stopping at the first one.
pub fn audit_bytes(bytes: &[u8]) -> ArtifactAudit {
    let mut audit = ArtifactAudit::default();
    let mut r = ByteReader::new(bytes);
    let structural = |e: CheckpointError| Some(e.to_string());

    let magic = match r.take(8, "magic") {
        Ok(m) => m,
        Err(e) => {
            audit.structural = structural(e);
            return audit;
        }
    };
    if magic != MAGIC {
        audit.structural = structural(CheckpointError::BadMagic {
            found: magic.to_vec(),
        });
        return audit;
    }
    let version = match r.u32("format version") {
        Ok(v) => v,
        Err(e) => {
            audit.structural = structural(e);
            return audit;
        }
    };
    if version == 0 || version > FORMAT_VERSION {
        audit.structural = structural(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
        return audit;
    }
    let count = match r.u32("section count") {
        Ok(c) => c as usize,
        Err(e) => {
            audit.structural = structural(e);
            return audit;
        }
    };
    let mut table = Vec::with_capacity(count);
    for i in 0..count {
        let entry = (|| -> Result<(String, usize, u32)> {
            let name_len = r.u16(&format!("section {i} name length"))? as usize;
            let name_bytes = r.take(name_len, &format!("section {i} name"))?;
            let name = String::from_utf8_lossy(name_bytes).into_owned();
            let len = r.len_u64(&format!("section '{name}' length"))?;
            let crc = r.u32(&format!("section '{name}' checksum"))?;
            Ok((name, len, crc))
        })();
        match entry {
            Ok(e) => table.push(e),
            Err(e) => {
                audit.structural = structural(e);
                return audit;
            }
        }
    }
    let mut offset = (bytes.len() - r.remaining()) as u64;
    for (name, len, stored) in table {
        // A truncated payload is still audited: the checksum over the
        // bytes that remain will not match the table entry.
        let avail = len.min(r.remaining());
        let payload = r
            .take(avail, &format!("section '{name}' payload"))
            .unwrap_or(&[]);
        audit.sections.push(SectionAudit {
            name: name.clone(),
            offset,
            len: len as u64,
            stored,
            computed: crc32(payload),
        });
        if avail < len {
            audit.structural = structural(CheckpointError::Truncated {
                context: format!("section '{name}' payload ({len} bytes needed, {avail} left)"),
            });
            return audit;
        }
        offset += len as u64;
    }
    if r.remaining() != 0 {
        audit.structural = Some(format!(
            "malformed artifact: {} trailing bytes after the last section",
            r.remaining()
        ));
    }
    audit
}

// --- parsed artifact -------------------------------------------------------

/// A fully parsed and checksum-verified artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl Artifact {
    /// Parses an artifact, verifying the magic, the format version, the
    /// section table, and **every section's CRC32**. A corrupted file can
    /// only come out of here as a typed error, never as data.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic {
                found: magic.to_vec(),
            });
        }
        let version = r.u32("format version")?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = r.u32("section count")? as usize;
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let name_len = r.u16(&format!("section {i} name length"))? as usize;
            let name_bytes = r.take(name_len, &format!("section {i} name"))?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Malformed(format!("section {i} name is not UTF-8")))?
                .to_string();
            let len = r.len_u64(&format!("section '{name}' length"))?;
            let crc = r.u32(&format!("section '{name}' checksum"))?;
            table.push((name, len, crc));
        }
        let mut sections = Vec::with_capacity(count);
        let mut kind = None;
        for (name, len, stored) in table {
            let payload = r.take(len, &format!("section '{name}' payload"))?;
            let computed = crc32(payload);
            if computed != stored {
                return Err(CheckpointError::ChecksumMismatch {
                    section: name,
                    stored,
                    computed,
                });
            }
            if name == KIND_SECTION {
                kind = Some(
                    std::str::from_utf8(payload)
                        .map_err(|_| {
                            CheckpointError::Malformed("kind section is not UTF-8".into())
                        })?
                        .to_string(),
                );
            } else {
                sections.push((name, payload.to_vec()));
            }
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        let kind = kind.ok_or(CheckpointError::MissingSection {
            name: KIND_SECTION.to_string(),
        })?;
        Ok(Self { kind, sections })
    }

    /// Reads and parses an artifact file.
    pub fn read_from(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Re-serialises the artifact; byte-identical to the bytes it was
    /// parsed from.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = ArtifactBuilder::new(&self.kind);
        for (name, payload) in &self.sections {
            b.add_bytes(name, payload.clone());
        }
        b.to_bytes()
    }

    /// The artifact kind string.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Fails with [`CheckpointError::WrongKind`] unless the artifact has
    /// the expected kind.
    pub fn expect_kind(&self, expected: &str) -> Result<()> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(CheckpointError::WrongKind {
                expected: expected.to_string(),
                actual: self.kind.clone(),
            })
        }
    }

    /// Section names in file order (the reserved kind section excluded).
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// True when the artifact has a section of this name.
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// Raw payload of a section.
    pub fn bytes(&self, name: &str) -> Result<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| CheckpointError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Decodes a matrix-list section.
    pub fn matrices(&self, name: &str) -> Result<Vec<neural::Matrix>> {
        crate::codec::decode_matrices(self.bytes(name)?)
    }

    /// Decodes a single-matrix section.
    pub fn matrix(&self, name: &str) -> Result<neural::Matrix> {
        let ms = self.matrices(name)?;
        if ms.len() != 1 {
            return Err(CheckpointError::Malformed(format!(
                "section '{name}' holds {} matrices, expected exactly 1",
                ms.len()
            )));
        }
        Ok(ms.into_iter().next().expect("checked length"))
    }

    /// Decodes an Adam optimiser-state section.
    pub fn adam(&self, name: &str) -> Result<neural::optim::AdamSnapshot> {
        crate::codec::decode_adam(self.bytes(name)?)
    }

    /// Decodes an `f64`-vector section.
    pub fn f64s(&self, name: &str) -> Result<Vec<f64>> {
        crate::codec::decode_f64s(self.bytes(name)?)
    }

    /// Decodes a UTF-8 string section.
    pub fn str_section(&self, name: &str) -> Result<String> {
        String::from_utf8(self.bytes(name)?.to_vec())
            .map_err(|_| CheckpointError::Malformed(format!("section '{name}' is not UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::Matrix;

    fn sample() -> ArtifactBuilder {
        let mut b = ArtifactBuilder::new("test-kind");
        b.add_matrices(
            "weights",
            &[Matrix::filled(2, 3, 1.5), Matrix::filled(1, 1, -0.0)],
        );
        b.add_f64s("losses", &[1.0, 0.5, 0.25]);
        b.add_str("meta", "{\"x\":1}");
        b
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_everything() {
        let bytes = sample().to_bytes();
        let a = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(a.kind(), "test-kind");
        assert_eq!(a.section_names(), ["weights", "losses", "meta"]);
        let ws = a.matrices("weights").unwrap();
        assert_eq!(ws[0], Matrix::filled(2, 3, 1.5));
        // -0.0 survives bit-exactly
        assert!(ws[1].get(0, 0).is_sign_negative());
        assert_eq!(a.f64s("losses").unwrap(), vec![1.0, 0.5, 0.25]);
        assert_eq!(a.str_section("meta").unwrap(), "{\"x\":1}");
        assert_eq!(a.to_bytes(), bytes);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
        assert!(matches!(
            Artifact::from_bytes(b"short"),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let bytes = sample().to_bytes();
        // Flip one bit in every payload byte position and require a typed
        // failure each time (the table region yields Truncated/Malformed
        // instead, so start after it).
        let a = Artifact::from_bytes(&bytes).unwrap();
        let payload_len: usize = a.to_bytes().len();
        let first_payload = payload_len
            - (a.bytes("weights").unwrap().len()
                + a.bytes("losses").unwrap().len()
                + a.bytes("meta").unwrap().len()
                + "test-kind".len());
        for pos in [first_payload, payload_len - 1] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                matches!(
                    Artifact::from_bytes(&corrupt),
                    Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "bit flip at {pos} must be caught"
            );
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            let err = Artifact::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn missing_kind_section_is_typed() {
        // Hand-build a container with zero sections.
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(0);
        assert!(matches!(
            Artifact::from_bytes(&w.into_bytes()),
            Err(CheckpointError::MissingSection { .. })
        ));
    }

    #[test]
    fn audit_reports_every_bad_section_with_offsets() {
        let bytes = sample().to_bytes();
        let clean = audit_bytes(&bytes);
        assert!(clean.is_clean());
        assert_eq!(
            clean
                .sections
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            ["__kind__", "weights", "losses", "meta"]
        );
        // Payloads are contiguous after the table, in table order.
        for w in clean.sections.windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }

        // Corrupt two sections at once; the audit must report both,
        // where from_bytes stops at the first.
        let mut corrupt = bytes.clone();
        corrupt[clean.sections[1].offset as usize] ^= 0x01;
        corrupt[clean.sections[3].offset as usize] ^= 0x01;
        let audit = audit_bytes(&corrupt);
        assert!(audit.structural.is_none());
        let failures = audit.failures();
        assert_eq!(
            failures.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["weights", "meta"]
        );
        for f in &failures {
            assert_ne!(f.stored, f.computed);
        }
        assert!(matches!(
            Artifact::from_bytes(&corrupt),
            Err(CheckpointError::ChecksumMismatch { section, .. }) if section == "weights"
        ));
    }

    #[test]
    fn audit_flags_structural_damage() {
        let bytes = sample().to_bytes();
        let truncated = audit_bytes(&bytes[..bytes.len() - 4]);
        assert!(!truncated.is_clean());
        assert!(truncated.structural.is_some());
        // Sections before the cut are still individually audited.
        assert!(!truncated.sections.is_empty());

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        let audit = audit_bytes(&bad_magic);
        assert!(audit.structural.is_some());
        assert!(audit.sections.is_empty());
    }

    #[test]
    fn trailing_garbage_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
