//! Save/load for trainable modules through their `visit_params` slot
//! ordering.
//!
//! Every trainable thing in the workspace — `neural` layers and stacks,
//! the three OVS modules, the baseline nets — exposes its parameters
//! through a `visit_params(&mut FnMut(&mut Matrix, &mut Matrix))` walk
//! with a **deterministic slot order**. That order is the checkpoint
//! schema: exporting clones the parameter matrices slot by slot, and
//! importing validates every slot's shape against the artifact before a
//! single value is written, so a failed load never leaves a model
//! half-overwritten.

use crate::{CheckpointError, Result};
use neural::layers::{Layer, SeqLayer};
use neural::Matrix;

/// The `visit_params` closure shape shared by all trainable modules.
pub type ParamVisitor<'v> = dyn FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)) + 'v;

/// Clones every parameter matrix a visitor exposes, in slot order.
pub fn export_visit(visit: &mut ParamVisitor<'_>) -> Vec<Matrix> {
    let mut out = Vec::new();
    visit(&mut |p, _| out.push(p.clone()));
    out
}

/// The `(rows, cols)` of every parameter slot, in slot order — the shape
/// signature a loader checks before touching the model.
pub fn signature_visit(visit: &mut ParamVisitor<'_>) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    visit(&mut |p, _| out.push(p.shape()));
    out
}

/// Copies `weights` into the visitor's parameter slots. Validates the
/// slot count and every shape first; on any mismatch the model is left
/// untouched and a typed error is returned.
pub fn import_visit(visit: &mut ParamVisitor<'_>, weights: &[Matrix]) -> Result<()> {
    let sig = signature_visit(visit);
    check_signature(&sig, weights)?;
    let mut idx = 0usize;
    visit(&mut |p, _| {
        p.as_mut_slice().copy_from_slice(weights[idx].as_slice());
        idx += 1;
    });
    Ok(())
}

/// Validates `weights` against a shape signature without writing anything.
pub fn check_signature(sig: &[(usize, usize)], weights: &[Matrix]) -> Result<()> {
    if sig.len() != weights.len() {
        return Err(CheckpointError::ShapeMismatch {
            expected: format!("{} parameter slots", sig.len()),
            actual: format!("{} matrices", weights.len()),
        });
    }
    for (i, (shape, w)) in sig.iter().zip(weights).enumerate() {
        if *shape != w.shape() {
            return Err(CheckpointError::ShapeMismatch {
                expected: format!("slot {i} of shape {shape:?}"),
                actual: format!("{:?}", w.shape()),
            });
        }
    }
    Ok(())
}

/// [`export_visit`] for a flat [`Layer`] (or stack).
pub fn export_layer(layer: &mut dyn Layer) -> Vec<Matrix> {
    export_visit(&mut |f| layer.visit_params(f))
}

/// [`import_visit`] for a flat [`Layer`] (or stack).
pub fn import_layer(layer: &mut dyn Layer, weights: &[Matrix]) -> Result<()> {
    import_visit(&mut |f| layer.visit_params(f), weights)
}

/// [`signature_visit`] for a flat [`Layer`].
pub fn layer_signature(layer: &mut dyn Layer) -> Vec<(usize, usize)> {
    signature_visit(&mut |f| layer.visit_params(f))
}

/// [`export_visit`] for a [`SeqLayer`] (or stack).
pub fn export_seq_layer(layer: &mut dyn SeqLayer) -> Vec<Matrix> {
    export_visit(&mut |f| layer.visit_params(f))
}

/// [`import_visit`] for a [`SeqLayer`] (or stack).
pub fn import_seq_layer(layer: &mut dyn SeqLayer, weights: &[Matrix]) -> Result<()> {
    import_visit(&mut |f| layer.visit_params(f), weights)
}

/// [`signature_visit`] for a [`SeqLayer`].
pub fn seq_layer_signature(layer: &mut dyn SeqLayer) -> Vec<(usize, usize)> {
    signature_visit(&mut |f| layer.visit_params(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::layers::{ActKind, Activation, Dense, Sequential};
    use neural::rng::Rng64;

    fn stack(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::new(ActKind::Tanh)),
            Box::new(Dense::new(4, 2, &mut rng)),
        ])
    }

    #[test]
    fn export_import_round_trip() {
        let mut a = stack(1);
        let mut b = stack(2);
        let wa = export_layer(&mut a);
        assert_eq!(wa.len(), 4); // W1 b1 W2 b2
        import_layer(&mut b, &wa).unwrap();
        assert_eq!(export_layer(&mut b), wa);
    }

    #[test]
    fn mismatched_import_leaves_model_untouched() {
        let mut a = stack(1);
        let before = export_layer(&mut a);
        // Wrong count.
        assert!(import_layer(&mut a, &before[..2]).is_err());
        // Wrong shape in a later slot: nothing before it may be written.
        let mut wrong = before.clone();
        wrong[3] = Matrix::zeros(9, 9);
        assert!(matches!(
            import_layer(&mut a, &wrong),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        assert_eq!(export_layer(&mut a), before);
    }

    #[test]
    fn signature_matches_export() {
        let mut a = stack(3);
        let sig = layer_signature(&mut a);
        let ws = export_layer(&mut a);
        assert_eq!(sig, ws.iter().map(|w| w.shape()).collect::<Vec<_>>());
        assert!(check_signature(&sig, &ws).is_ok());
    }
}
