//! Payload codecs: matrices, `f64` vectors and Adam optimiser state.
//!
//! All encodings are little-endian and positional; `f64`s travel as raw
//! IEEE-754 bit patterns so round trips are bit-exact (NaN payloads and
//! signed zeros included). Matrix lists carry explicit shapes, so the
//! decoder validates sizes before allocating.

use crate::format::{ByteReader, ByteWriter};
use crate::{CheckpointError, Result};
use neural::optim::AdamSnapshot;
use neural::Matrix;

/// Ceiling on a single decoded matrix's element count (guards corrupt or
/// adversarial length fields before allocation; 1 GiB of `f64`s).
const MAX_MATRIX_ELEMS: usize = 1 << 27;

fn write_matrix(w: &mut ByteWriter, m: &Matrix) {
    w.u64(m.rows() as u64);
    w.u64(m.cols() as u64);
    for &v in m.as_slice() {
        w.f64(v);
    }
}

fn read_matrix(r: &mut ByteReader<'_>, context: &str) -> Result<Matrix> {
    let rows = r.len_u64(&format!("{context} rows"))?;
    let cols = r.len_u64(&format!("{context} cols"))?;
    let n = rows
        .checked_mul(cols)
        .filter(|&n| n <= MAX_MATRIX_ELEMS)
        .ok_or_else(|| {
            CheckpointError::Malformed(format!("{context}: implausible shape {rows}x{cols}"))
        })?;
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        data.push(r.f64(&format!("{context} element {i}"))?);
    }
    Matrix::from_vec(rows, cols, data)
        .map_err(|e| CheckpointError::Malformed(format!("{context}: {e}")))
}

/// Encodes a list of matrices: `u64` count, then per matrix `u64 rows`,
/// `u64 cols`, and the row-major `f64` data.
pub fn encode_matrices(ms: &[Matrix]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(ms.len() as u64);
    for m in ms {
        write_matrix(&mut w, m);
    }
    w.into_bytes()
}

/// Decodes a matrix list written by [`encode_matrices`].
pub fn decode_matrices(bytes: &[u8]) -> Result<Vec<Matrix>> {
    let mut r = ByteReader::new(bytes);
    let count = r.len_u64("matrix count")?;
    let mut out = Vec::new();
    for i in 0..count {
        out.push(read_matrix(&mut r, &format!("matrix {i}"))?);
    }
    expect_consumed(&r, "matrix list")?;
    Ok(out)
}

/// Encodes an `f64` vector: `u64` length then the raw bit patterns.
pub fn encode_f64s(vs: &[f64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(vs.len() as u64);
    for &v in vs {
        w.f64(v);
    }
    w.into_bytes()
}

/// Decodes an `f64` vector written by [`encode_f64s`].
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut r = ByteReader::new(bytes);
    let n = r.len_u64("f64 vector length")?;
    if n > MAX_MATRIX_ELEMS {
        return Err(CheckpointError::Malformed(format!(
            "implausible f64 vector length {n}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(r.f64(&format!("f64 element {i}"))?);
    }
    expect_consumed(&r, "f64 vector")?;
    Ok(out)
}

/// Encodes the full Adam state: step counter, hyperparameters, then both
/// moment-estimate matrix lists.
pub fn encode_adam(s: &AdamSnapshot) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(s.t);
    w.f64(s.lr);
    w.f64(s.beta1);
    w.f64(s.beta2);
    w.f64(s.eps);
    w.u64(s.m.len() as u64);
    for m in &s.m {
        write_matrix(&mut w, m);
    }
    for v in &s.v {
        write_matrix(&mut w, v);
    }
    w.into_bytes()
}

/// Decodes an Adam state written by [`encode_adam`].
pub fn decode_adam(bytes: &[u8]) -> Result<AdamSnapshot> {
    let mut r = ByteReader::new(bytes);
    let t = r.u64("adam t")?;
    let lr = r.f64("adam lr")?;
    let beta1 = r.f64("adam beta1")?;
    let beta2 = r.f64("adam beta2")?;
    let eps = r.f64("adam eps")?;
    let slots = r.len_u64("adam slot count")?;
    if slots > MAX_MATRIX_ELEMS {
        return Err(CheckpointError::Malformed(format!(
            "implausible adam slot count {slots}"
        )));
    }
    let mut m = Vec::with_capacity(slots);
    for i in 0..slots {
        m.push(read_matrix(&mut r, &format!("adam m[{i}]"))?);
    }
    let mut v = Vec::with_capacity(slots);
    for i in 0..slots {
        v.push(read_matrix(&mut r, &format!("adam v[{i}]"))?);
    }
    for (i, (mm, vv)) in m.iter().zip(&v).enumerate() {
        if mm.shape() != vv.shape() {
            return Err(CheckpointError::Malformed(format!(
                "adam slot {i}: m is {:?} but v is {:?}",
                mm.shape(),
                vv.shape()
            )));
        }
    }
    expect_consumed(&r, "adam state")?;
    Ok(AdamSnapshot {
        lr,
        beta1,
        beta2,
        eps,
        t,
        m,
        v,
    })
}

fn expect_consumed(r: &ByteReader<'_>, what: &str) -> Result<()> {
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{what}: {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_round_trip_bit_exactly() {
        let ms = vec![
            Matrix::from_vec(2, 2, vec![1.0, -0.0, f64::MIN_POSITIVE, 1e300]).unwrap(),
            Matrix::zeros(0, 5),
            Matrix::filled(1, 3, f64::NAN),
        ];
        let back = decode_matrices(&encode_matrices(&ms)).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in ms.iter().zip(&back) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn adam_round_trip() {
        let s = AdamSnapshot {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 42,
            m: vec![Matrix::filled(2, 2, 0.25)],
            v: vec![Matrix::filled(2, 2, 0.5)],
        };
        assert_eq!(decode_adam(&encode_adam(&s)).unwrap(), s);
    }

    #[test]
    fn corrupt_lengths_are_typed_errors() {
        // Matrix count claims more than the buffer holds.
        let mut bytes = encode_matrices(&[Matrix::zeros(1, 1)]);
        bytes[0] = 200;
        assert!(decode_matrices(&bytes).is_err());
        // Absurd shape is refused before allocation.
        let mut w = ByteWriter::new();
        w.u64(1);
        w.u64(u64::MAX / 2);
        w.u64(u64::MAX / 2);
        assert!(matches!(
            decode_matrices(&w.into_bytes()),
            Err(CheckpointError::Malformed(_))
        ));
        // Trailing bytes are refused.
        let mut bytes = encode_f64s(&[1.0]);
        bytes.push(7);
        assert!(matches!(
            decode_f64s(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn adam_m_v_shape_disagreement_is_refused() {
        let s = AdamSnapshot {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 1,
            m: vec![Matrix::zeros(2, 2)],
            v: vec![Matrix::zeros(2, 2)],
        };
        let mut bytes = encode_adam(&s);
        // Rewrite v[0]'s rows field (after header 40 bytes + slot count 8 +
        // m[0] (16 + 4*8) = 48 + 48 = offset 96) from 2 to 1... easier:
        // truncate instead and expect a typed error.
        bytes.truncate(bytes.len() - 8);
        assert!(decode_adam(&bytes).is_err());
    }
}
