//! The artifact registry: named, hashed, garbage-collected checkpoints
//! under a workspace directory.
//!
//! An [`ArtifactStore`] is just a directory of `<name>.ckpt` files plus
//! one `<name>.meta.json` provenance sidecar per artifact. The `.ckpt`
//! files are fully self-describing (kind, sections, checksums), so the
//! registry carries no separate index that could drift: listing is a
//! directory scan, and every load re-verifies every section checksum.
//!
//! Provenance records *how* a model came to be — the exact config JSON,
//! the RNG seed, `git describe` of the working tree, the parameter shape
//! signature, and the loss traces of each training stage — which is what
//! lets a loader refuse an artifact whose recorded shapes do not match
//! the requesting configuration, before a single weight is copied.

use crate::format::{audit_bytes, crc32, Artifact, ArtifactAudit, ArtifactBuilder};
use crate::retry::{is_transient, with_retry, Clock, RetryPolicy};
use crate::{CheckpointError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Process-global pin refcounts, keyed by `(store dir, artifact name)`.
/// Pinned artifacts are invisible to [`ArtifactStore::gc`], which is what
/// lets a long-lived reader (a [`crate::snapshot::SnapshotWatcher`]) hold
/// its current version while a writer garbage-collects the same family
/// from another thread of the same process.
static PINS: Mutex<BTreeMap<(PathBuf, String), usize>> = Mutex::new(BTreeMap::new());

/// RAII pin on one artifact: while any guard for a name is alive,
/// [`ArtifactStore::gc`] refuses to remove that artifact. Obtained from
/// [`ArtifactStore::pin`]; dropping the guard releases the pin.
#[derive(Debug)]
pub struct PinGuard {
    dir: PathBuf,
    name: String,
}

impl PinGuard {
    /// The pinned artifact's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = PINS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let key = (self.dir.clone(), self.name.clone());
        if let Some(count) = pins.get_mut(&key) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&key);
            }
        }
    }
}

/// Environment variable overriding the default store directory.
pub const STORE_ENV: &str = "CITYOD_ARTIFACTS";

/// Default store directory (relative to the working directory).
pub const DEFAULT_DIR: &str = "artifacts";

/// File extension of checkpoint artifacts.
const CKPT_EXT: &str = "ckpt";

/// Suffix of provenance sidecar files.
const META_SUFFIX: &str = ".meta.json";

/// Subdirectory artifacts that fail CRC verification are moved into.
/// Quarantined files drop out of [`ArtifactStore::names`] (the listing
/// scan is non-recursive) but stay on disk for post-mortem inspection.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Provenance metadata recorded alongside every artifact: enough to
/// reproduce (or refuse) the model without opening the weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Artifact kind, duplicated from the container for cheap listing.
    pub kind: String,
    /// The full config the model was built from, as JSON.
    pub config_json: String,
    /// RNG seed the training run used.
    pub seed: u64,
    /// `git describe --always --dirty` of the tree that produced the
    /// artifact, or `"unknown"` outside a repository.
    pub git: String,
    /// Unix timestamp (seconds) of the save.
    pub created_unix: u64,
    /// `(rows, cols)` of every parameter slot, in `visit_params` order.
    pub shape_sig: Vec<(usize, usize)>,
    /// Per-step loss trace of the V2S fitting stage.
    pub v2s_losses: Vec<f64>,
    /// Per-step loss trace of the TOD2V fitting stage.
    pub tod2v_losses: Vec<f64>,
    /// Per-step loss trace of the test-time TOD-generator fit.
    pub fit_losses: Vec<f64>,
    /// Free-form operator note.
    pub note: String,
}

impl Provenance {
    /// A minimal provenance record; fill in traces and note as needed.
    pub fn new(kind: &str, config_json: &str, seed: u64) -> Self {
        Self {
            kind: kind.to_string(),
            config_json: config_json.to_string(),
            seed,
            git: git_describe(),
            created_unix: unix_now(),
            shape_sig: Vec::new(),
            v2s_losses: Vec::new(),
            tod2v_losses: Vec::new(),
            fit_losses: Vec::new(),
            note: String::new(),
        }
    }
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now() -> u64 {
    // lint: allow(determinism) — provenance sidecar timestamp only; never
    // read back into model state or stable exports.
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// One registry entry, as reported by [`ArtifactStore::list`] and
/// [`ArtifactStore::inspect`].
#[derive(Debug, Clone)]
pub struct ArtifactRecord {
    /// Artifact name (file stem).
    pub name: String,
    /// Absolute-ish path of the `.ckpt` file.
    pub path: PathBuf,
    /// Artifact kind from the container.
    pub kind: String,
    /// File size in bytes.
    pub size: u64,
    /// CRC32 of the whole file — the registry-level content hash.
    pub content_crc: u32,
    /// Section names in file order.
    pub sections: Vec<String>,
    /// Provenance sidecar, when present and parseable.
    pub provenance: Option<Provenance>,
}

/// A directory-backed registry of checkpoint artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// A relative `dir` is canonicalized against the working directory
    /// *once, here* — every later operation (including a long-lived
    /// [`crate::snapshot::SnapshotWatcher`]) uses the resolved absolute
    /// path, so a process that chdirs after opening keeps reading the
    /// same store instead of silently re-resolving against the new cwd.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Canonicalization can only fail on exotic filesystems now that
        // the directory exists; fall back to the raw path in that case.
        let dir = std::fs::canonicalize(&dir).unwrap_or(dir);
        Ok(Self { dir })
    }

    /// Opens the default store: `$CITYOD_ARTIFACTS` when set, otherwise
    /// `./artifacts`.
    pub fn open_default() -> Result<Self> {
        // lint: allow(determinism) — opt-in store location, not data.
        let dir = std::env::var(STORE_ENV).unwrap_or_else(|_| DEFAULT_DIR.to_string());
        Self::open(dir)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn ckpt_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{CKPT_EXT}"))
    }

    /// The `.ckpt` path an artifact of this name lives (or would live) at.
    pub fn artifact_path(&self, name: &str) -> PathBuf {
        self.ckpt_path(name)
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}{META_SUFFIX}"))
    }

    /// Validates an artifact name: non-empty ASCII alphanumerics plus
    /// `-`, `_` and `.` (no path separators, no hidden files).
    pub fn validate_name(name: &str) -> Result<()> {
        let ok = !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if ok {
            Ok(())
        } else {
            Err(CheckpointError::Malformed(format!(
                "invalid artifact name '{name}': use alphanumerics, '-', '_', '.'"
            )))
        }
    }

    /// Saves an artifact under `name`, overwriting any previous version,
    /// and writes its provenance sidecar. Returns the `.ckpt` path.
    pub fn save(
        &self,
        name: &str,
        builder: &ArtifactBuilder,
        provenance: &Provenance,
    ) -> Result<PathBuf> {
        Self::validate_name(name)?;
        let path = self.ckpt_path(name);
        builder.write_to(&path)?;
        let meta = serde_json::to_string(provenance)
            .map_err(|e| CheckpointError::Malformed(format!("provenance encode: {e}")))?;
        std::fs::write(self.meta_path(name), meta)?;
        Ok(path)
    }

    /// Saves under the next free `"{family}-vNNN"` name, never
    /// overwriting. Returns the assigned name.
    pub fn save_versioned(
        &self,
        family: &str,
        builder: &ArtifactBuilder,
        provenance: &Provenance,
    ) -> Result<String> {
        Self::validate_name(family)?;
        let next = self
            .family_versions(family)?
            .last()
            .map(|&(v, _)| v + 1)
            .unwrap_or(1);
        let name = format!("{family}-v{next:03}");
        self.save(&name, builder, provenance)?;
        Ok(name)
    }

    /// Loads (and checksum-verifies) an artifact by name.
    pub fn load(&self, name: &str) -> Result<Artifact> {
        Self::validate_name(name)?;
        let path = self.ckpt_path(name);
        if !path.exists() {
            return Err(CheckpointError::MissingSection {
                name: format!("artifact '{name}' in {}", self.dir.display()),
            });
        }
        Artifact::read_from(&path)
    }

    /// Loads an artifact's provenance sidecar, if one exists.
    pub fn provenance(&self, name: &str) -> Result<Option<Provenance>> {
        Self::validate_name(name)?;
        let path = self.meta_path(name);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)?;
        serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| CheckpointError::Malformed(format!("provenance decode: {e}")))
    }

    /// All artifact names in the store, sorted.
    pub fn names(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(CKPT_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    out.push(stem.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Inspects one artifact: size, content hash, kind, sections and
    /// provenance. Fails if the artifact is missing or corrupt.
    pub fn inspect(&self, name: &str) -> Result<ArtifactRecord> {
        let path = self.ckpt_path(name);
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CheckpointError::MissingSection {
                    name: format!("artifact '{name}' in {}", self.dir.display()),
                }
            } else {
                CheckpointError::Io(e)
            }
        })?;
        let artifact = Artifact::from_bytes(&bytes)?;
        Ok(ArtifactRecord {
            name: name.to_string(),
            path,
            kind: artifact.kind().to_string(),
            size: bytes.len() as u64,
            content_crc: crc32(&bytes),
            sections: artifact
                .section_names()
                .into_iter()
                .map(str::to_string)
                .collect(),
            provenance: self.provenance(name)?,
        })
    }

    /// Lists every artifact in the store (sorted by name), skipping none:
    /// a corrupt artifact fails the listing so damage is never silent.
    pub fn list(&self) -> Result<Vec<ArtifactRecord>> {
        self.names()?.iter().map(|n| self.inspect(n)).collect()
    }

    /// Verifies one artifact end-to-end (magic, version, every section
    /// CRC). Returns its record on success.
    pub fn verify(&self, name: &str) -> Result<ArtifactRecord> {
        self.inspect(name)
    }

    /// Verifies every artifact, returning `(name, error-or-none)` pairs.
    pub fn verify_all(&self) -> Result<Vec<(String, Option<CheckpointError>)>> {
        Ok(self
            .names()?
            .into_iter()
            .map(|n| {
                let err = self.verify(&n).err();
                (n, err)
            })
            .collect())
    }

    /// Audits one artifact: checks **every** section checksum and reports
    /// all failures with byte offsets, instead of stopping at the first
    /// bad section the way [`ArtifactStore::verify`] does.
    pub fn audit(&self, name: &str) -> Result<ArtifactAudit> {
        Self::validate_name(name)?;
        let path = self.ckpt_path(name);
        if !path.exists() {
            return Err(CheckpointError::MissingSection {
                name: format!("artifact '{name}' in {}", self.dir.display()),
            });
        }
        let bytes = std::fs::read(&path)?;
        Ok(audit_bytes(&bytes))
    }

    /// Moves a damaged artifact (and its provenance sidecar) into the
    /// store's `quarantine/` subdirectory, removing it from the listing
    /// while preserving the bytes for post-mortem. Returns the new path
    /// of the quarantined `.ckpt` file.
    pub fn quarantine(&self, name: &str) -> Result<PathBuf> {
        Self::validate_name(name)?;
        let src = self.ckpt_path(name);
        if !src.exists() {
            return Err(CheckpointError::MissingSection {
                name: format!("artifact '{name}' in {}", self.dir.display()),
            });
        }
        let qdir = self.dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&qdir)?;
        let dst = qdir.join(format!("{name}.{CKPT_EXT}"));
        std::fs::rename(&src, &dst)?;
        let meta_src = self.meta_path(name);
        if meta_src.exists() {
            std::fs::rename(&meta_src, qdir.join(format!("{name}{META_SUFFIX}")))?;
        }
        obs::global().counter("store_quarantined_total").inc();
        Ok(dst)
    }

    /// Loads an artifact under a bounded retry policy: transient failures
    /// (IO errors, checksum mismatches from a torn concurrent write) are
    /// retried with deterministic backoff before the error surfaces.
    pub fn load_with_retry(
        &self,
        name: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<Artifact> {
        with_retry(policy, clock, || self.load(name))
    }

    /// Loads an artifact with retries; if the failure persists *and* is
    /// corruption-class (transient per [`is_transient`] but unrecoverable
    /// by rereading), the artifact is quarantined and `Ok(None)` is
    /// returned so a caller can fall back to an older version instead of
    /// aborting the whole run. Permanent errors (missing artifact, wrong
    /// kind) still surface as `Err`.
    pub fn load_or_quarantine(
        &self,
        name: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<Option<Artifact>> {
        match self.load_with_retry(name, policy, clock) {
            Ok(a) => Ok(Some(a)),
            Err(e) if is_transient(&e) => {
                self.quarantine(name)?;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Removes an artifact and its provenance sidecar.
    pub fn remove(&self, name: &str) -> Result<()> {
        Self::validate_name(name)?;
        let path = self.ckpt_path(name);
        if !path.exists() {
            return Err(CheckpointError::MissingSection {
                name: format!("artifact '{name}' in {}", self.dir.display()),
            });
        }
        std::fs::remove_file(path)?;
        let meta = self.meta_path(name);
        if meta.exists() {
            std::fs::remove_file(meta)?;
        }
        Ok(())
    }

    /// Versioned members of a family, as `(version, name)` sorted
    /// ascending by version.
    pub(crate) fn family_versions(&self, family: &str) -> Result<Vec<(u32, String)>> {
        let prefix = format!("{family}-v");
        let mut out: Vec<(u32, String)> = self
            .names()?
            .into_iter()
            .filter_map(|n| {
                let v = n.strip_prefix(&prefix)?.parse::<u32>().ok()?;
                Some((v, n))
            })
            .collect();
        out.sort();
        Ok(out)
    }

    /// Pins an artifact against garbage collection for the guard's
    /// lifetime. Pins are per-process and refcounted: the same name can
    /// be pinned by several readers, and the artifact becomes collectable
    /// again only when every guard has been dropped.
    pub fn pin(&self, name: &str) -> Result<PinGuard> {
        Self::validate_name(name)?;
        let mut pins = PINS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *pins
            .entry((self.dir.clone(), name.to_string()))
            .or_insert(0) += 1;
        Ok(PinGuard {
            dir: self.dir.clone(),
            name: name.to_string(),
        })
    }

    /// True while at least one [`PinGuard`] for `name` is alive in this
    /// process.
    pub fn is_pinned(&self, name: &str) -> bool {
        PINS.lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .contains_key(&(self.dir.clone(), name.to_string()))
    }

    /// Garbage-collects a version family, keeping only the newest `keep`
    /// versions. Returns the names removed.
    ///
    /// Two classes of version survive regardless of `keep`:
    ///
    /// * the newest version that verifies clean — that is the version a
    ///   [`crate::snapshot::SnapshotWatcher`]'s next poll resolves to, so
    ///   collecting it would race the reader into an empty family (the
    ///   newest version *by number* is not enough: when it is corrupt,
    ///   readers fall back to the newest good one);
    /// * any version currently pinned via [`ArtifactStore::pin`].
    pub fn gc(&self, family: &str, keep: usize) -> Result<Vec<String>> {
        Self::validate_name(family)?;
        let versions = self.family_versions(family)?;
        let newest_good = versions
            .iter()
            .rev()
            .find(|(_, name)| self.verify(name).is_ok())
            .map(|(_, name)| name.clone());
        let drop_count = versions.len().saturating_sub(keep);
        let mut removed = Vec::with_capacity(drop_count);
        for (_, name) in versions.into_iter().take(drop_count) {
            if newest_good.as_ref() == Some(&name) || self.is_pinned(&name) {
                obs::global().counter("store_gc_retained_total").inc();
                continue;
            }
            self.remove(&name)?;
            removed.push(name);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::Matrix;

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("cityod-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).unwrap()
    }

    fn sample_builder() -> ArtifactBuilder {
        let mut b = ArtifactBuilder::new("test-kind");
        b.add_matrices("w", &[Matrix::filled(2, 2, 1.0)]);
        b
    }

    #[test]
    fn save_load_list_remove() {
        let store = tmp_store("basic");
        let mut prov = Provenance::new("test-kind", "{}", 7);
        prov.shape_sig = vec![(2, 2)];
        store.save("alpha", &sample_builder(), &prov).unwrap();
        let a = store.load("alpha").unwrap();
        assert_eq!(a.kind(), "test-kind");
        let recs = store.list().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "alpha");
        assert_eq!(recs[0].kind, "test-kind");
        assert_eq!(recs[0].provenance.as_ref().unwrap().seed, 7);
        assert_eq!(recs[0].provenance.as_ref().unwrap().shape_sig, vec![(2, 2)]);
        store.remove("alpha").unwrap();
        assert!(store.list().unwrap().is_empty());
        assert!(store.load("alpha").is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn versioned_saves_and_gc() {
        let store = tmp_store("gc");
        let prov = Provenance::new("test-kind", "{}", 1);
        for _ in 0..5 {
            store
                .save_versioned("model", &sample_builder(), &prov)
                .unwrap();
        }
        assert_eq!(
            store.names().unwrap(),
            [
                "model-v001",
                "model-v002",
                "model-v003",
                "model-v004",
                "model-v005"
            ]
        );
        let removed = store.gc("model", 2).unwrap();
        assert_eq!(removed, ["model-v001", "model-v002", "model-v003"]);
        assert_eq!(store.names().unwrap(), ["model-v004", "model-v005"]);
        // Next save continues the numbering past the survivors.
        let name = store
            .save_versioned("model", &sample_builder(), &prov)
            .unwrap();
        assert_eq!(name, "model-v006");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_skips_pinned_versions_until_released() {
        let store = tmp_store("gc-pin");
        let prov = Provenance::new("test-kind", "{}", 1);
        for _ in 0..4 {
            store
                .save_versioned("model", &sample_builder(), &prov)
                .unwrap();
        }
        let guard = store.pin("model-v001").unwrap();
        assert!(store.is_pinned("model-v001"));
        // keep=1 would normally remove v001-v003; the pin protects v001.
        assert_eq!(store.gc("model", 1).unwrap(), ["model-v002", "model-v003"]);
        assert!(store.names().unwrap().contains(&"model-v001".to_string()));
        // Refcounted: a second guard keeps the pin alive after the first
        // drops.
        let guard2 = store.pin("model-v001").unwrap();
        drop(guard);
        assert!(store.is_pinned("model-v001"));
        drop(guard2);
        assert!(!store.is_pinned("model-v001"));
        assert_eq!(store.gc("model", 1).unwrap(), ["model-v001"]);
        assert_eq!(store.names().unwrap(), ["model-v004"]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_retains_newest_good_version_when_newest_is_corrupt() {
        let store = tmp_store("gc-newest-good");
        let prov = Provenance::new("test-kind", "{}", 1);
        for _ in 0..3 {
            store
                .save_versioned("model", &sample_builder(), &prov)
                .unwrap();
        }
        // Corrupt the newest version: the newest *good* one is now v002,
        // which a watcher's next poll would load — gc must keep it even
        // though keep=1 nominally covers only v003.
        let path = store.artifact_path("model-v003");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.gc("model", 1).unwrap(), ["model-v001"]);
        assert_eq!(store.names().unwrap(), ["model-v002", "model-v003"]);
        assert!(store.verify("model-v002").is_ok());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bad_names_are_rejected() {
        let store = tmp_store("names");
        let prov = Provenance::new("k", "{}", 0);
        for bad in ["", "../etc", "a/b", ".hidden", "sp ace"] {
            assert!(store.save(bad, &sample_builder(), &prov).is_err(), "{bad}");
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_artifact_fails_verify_with_typed_error() {
        let store = tmp_store("verify");
        let prov = Provenance::new("test-kind", "{}", 0);
        let path = store.save("ok", &sample_builder(), &prov).unwrap();
        assert!(store.verify("ok").is_ok());
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.verify("ok"),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let report = store.verify_all().unwrap();
        assert_eq!(report.len(), 1);
        assert!(report[0].1.is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn audit_lists_all_bad_sections() {
        let store = tmp_store("audit");
        let prov = Provenance::new("test-kind", "{}", 0);
        let mut b = ArtifactBuilder::new("test-kind");
        b.add_f64s("a", &[1.0, 2.0]);
        b.add_f64s("b", &[3.0, 4.0]);
        let path = store.save("multi", &b, &prov).unwrap();
        let clean = store.audit("multi").unwrap();
        assert!(clean.is_clean());

        let mut bytes = std::fs::read(&path).unwrap();
        let off_a = clean
            .sections
            .iter()
            .find(|s| s.name == "a")
            .unwrap()
            .offset;
        let off_b = clean
            .sections
            .iter()
            .find(|s| s.name == "b")
            .unwrap()
            .offset;
        bytes[off_a as usize] ^= 0xFF;
        bytes[off_b as usize] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let audit = store.audit("multi").unwrap();
        let failures = audit.failures();
        assert_eq!(
            failures.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn quarantine_removes_from_listing_but_keeps_bytes() {
        let store = tmp_store("quarantine");
        let prov = Provenance::new("test-kind", "{}", 0);
        let path = store.save("bad", &sample_builder(), &prov).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let qpath = store.quarantine("bad").unwrap();
        assert!(qpath.exists());
        assert!(!path.exists());
        assert!(store.names().unwrap().is_empty());
        // Sidecar went with it.
        assert!(qpath.parent().unwrap().join("bad.meta.json").exists());
        assert!(matches!(
            store.quarantine("bad"),
            Err(CheckpointError::MissingSection { .. })
        ));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_or_quarantine_falls_back_on_persistent_corruption() {
        use crate::retry::{RecordingClock, RetryPolicy};
        let store = tmp_store("loadq");
        let prov = Provenance::new("test-kind", "{}", 0);
        let clock = RecordingClock::new();
        let policy = RetryPolicy {
            attempts: 3,
            base_backoff_ms: 1,
        };

        // Healthy artifact loads with zero retries.
        store.save("ok", &sample_builder(), &prov).unwrap();
        let got = store.load_or_quarantine("ok", &policy, &clock).unwrap();
        assert!(got.is_some());
        assert!(clock.sleeps().is_empty());

        // Corrupt artifact: retried, then quarantined, then Ok(None).
        let path = store.save("corrupt", &sample_builder(), &prov).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let got = store
            .load_or_quarantine("corrupt", &policy, &clock)
            .unwrap();
        assert!(got.is_none());
        assert_eq!(clock.sleeps(), vec![1, 2]);
        assert!(!path.exists());
        assert!(store
            .dir()
            .join(QUARANTINE_DIR)
            .join("corrupt.ckpt")
            .exists());

        // Missing artifact is a permanent error, not a quarantine.
        assert!(store.load_or_quarantine("absent", &policy, &clock).is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn open_canonicalizes_relative_paths_once() {
        // Open through a relative-ish path containing a `..` hop; the
        // stored dir must come back absolute and normalized, so a later
        // chdir cannot re-resolve it somewhere else.
        let base = std::env::temp_dir().join(format!("cityod-store-canon-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(base.join("sub")).unwrap();
        let via_dots = base.join("sub").join("..").join("store");
        let store = ArtifactStore::open(&via_dots).unwrap();
        assert!(store.dir().is_absolute());
        assert!(
            !store.dir().components().any(|c| c.as_os_str() == ".."),
            "dir is normalized: {}",
            store.dir().display()
        );
        assert_eq!(
            store.dir(),
            std::fs::canonicalize(base.join("store")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn provenance_round_trips_through_json() {
        let mut p = Provenance::new("ovs-model", "{\"t\":4}", 99);
        p.shape_sig = vec![(3, 4), (1, 4)];
        p.v2s_losses = vec![1.0, 0.5];
        p.note = "warm start source".to_string();
        let json = serde_json::to_string(&p).unwrap();
        let back: Provenance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
