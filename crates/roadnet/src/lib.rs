//! # roadnet — road-network substrate for the `city-od` workspace
//!
//! This crate provides the domain model shared by every other crate in the
//! reproduction of *Rebuilding City-Wide Traffic Origin Destination from Road
//! Speed Data* (ICDE 2021):
//!
//! * typed identifiers for nodes, links, regions and OD pairs ([`ids`]),
//! * a directed road-network graph with per-link attributes ([`network`]),
//! * parameterised network generators and the four city presets of the
//!   paper's Table III ([`generators`], [`presets`]),
//! * shortest / fastest / k-shortest / time-dependent routing ([`routing`]),
//! * the traffic tensors the paper manipulates: the temporal
//!   origin-destination tensor `G` (N_od x T) and per-link observation
//!   tensors (M x T) ([`tensor`]).
//!
//! The paper's notation is kept where practical: `K` regions, `M` links,
//! `T` time intervals, `N` OD pairs.
//!
//! ```
//! use roadnet::generators::GridSpec;
//! use roadnet::routing::shortest_path;
//!
//! let net = GridSpec::new(3, 3).build(7);
//! assert_eq!(net.num_nodes(), 9);
//! let path = shortest_path(&net, net.nodes()[0].id, net.nodes()[8].id).unwrap();
//! assert!(!path.links.is_empty());
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod export;
pub mod generators;
pub mod geometry;
pub mod ids;
pub mod network;
pub mod od;
pub mod parallel;
pub mod presets;
pub mod routing;
pub mod sample;
pub mod stats;
pub mod tensor;

pub use error::{Result, RoadnetError};
pub use geometry::Point;
pub use ids::{LinkId, NodeId, OdPairId, RegionId};
pub use network::{Link, Node, Region, RoadNetwork};
pub use od::{OdPair, OdSet};
pub use parallel::Parallelism;
pub use sample::TrainTriple;
pub use tensor::{LinkTensor, TodTensor};
