//! Typed identifiers for the entities of a road network.
//!
//! Each identifier is a thin newtype over a dense `usize` index so it can be
//! used directly to index the owning collection, while preventing a node
//! index from being accidentally used as a link index (the classic
//! "stringly/intly typed" bug the newtype pattern exists to kill).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// The dense index backing this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }
    };
}

dense_id!(
    /// Identifier of an intersection (graph node).
    NodeId,
    "n"
);
dense_id!(
    /// Identifier of a directed road segment ("link" in the paper's terms:
    /// each direction of one road segment is a separate link).
    LinkId,
    "l"
);
dense_id!(
    /// Identifier of a city region (the paper's `r \in R`; TOD is defined
    /// between regions).
    RegionId,
    "r"
);
dense_id!(
    /// Identifier of an origin-destination pair (the paper's OD index `i`).
    OdPairId,
    "od"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(0).to_string(), "l0");
        assert_eq!(RegionId(12).to_string(), "r12");
        assert_eq!(OdPairId(7).to_string(), "od7");
    }

    #[test]
    fn index_round_trips() {
        let id = LinkId::from(42usize);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(RegionId(5), RegionId(5));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&LinkId(9)).unwrap();
        assert_eq!(json, "9");
        let back: LinkId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, LinkId(9));
    }
}
