//! Parameterised road-network generators.
//!
//! The paper evaluates on a 3x3 synthetic grid (§V-B) plus four real city
//! networks pulled from OpenStreetMap (Table III). We generate all of them
//! (see DESIGN.md substitution table): [`GridSpec`] produces regular
//! Manhattan-style grids of any size, and [`IrregularSpec`] produces
//! organically-shaped networks with *exact* intersection and road counts so
//! the presets can match Table III precisely.

use crate::error::{Result, RoadnetError};
use crate::geometry::Point;
use crate::ids::NodeId;
use crate::network::{NetworkBuilder, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default urban block edge length, metres.
pub const DEFAULT_SPACING_M: f64 = 300.0;
/// Default urban speed limit, metres per second (~40 km/h).
pub const DEFAULT_SPEED_MPS: f64 = 11.0;
/// Default arterial speed limit, metres per second (~60 km/h).
pub const DEFAULT_ARTERIAL_SPEED_MPS: f64 = 16.7;

/// Specification of a regular `rows x cols` grid network.
///
/// Every interior street is bidirectional. Optionally, evenly spaced
/// arterial rows/columns get extra lanes and a higher speed limit, which
/// gives the heterogeneous congestion patterns the OVS attention module is
/// designed to capture.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Number of intersection rows.
    pub rows: usize,
    /// Number of intersection columns.
    pub cols: usize,
    /// Block edge length in metres.
    pub spacing_m: f64,
    /// Lanes on ordinary streets.
    pub lanes: u8,
    /// Speed limit on ordinary streets (m/s).
    pub speed_mps: f64,
    /// Every `arterial_every`-th row/column becomes an arterial
    /// (0 disables arterials).
    pub arterial_every: usize,
    /// Lanes on arterials.
    pub arterial_lanes: u8,
    /// Speed limit on arterials (m/s).
    pub arterial_speed_mps: f64,
    /// Region partition (`rows x cols` of region cells).
    pub region_grid: (usize, usize),
}

impl GridSpec {
    /// A plain grid with library defaults and a 3x3 region partition
    /// (capped by the grid size).
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            spacing_m: DEFAULT_SPACING_M,
            lanes: 1,
            speed_mps: DEFAULT_SPEED_MPS,
            arterial_every: 0,
            arterial_lanes: 2,
            arterial_speed_mps: DEFAULT_ARTERIAL_SPEED_MPS,
            region_grid: (rows.min(3), cols.min(3)),
        }
    }

    /// Enables arterials on every `n`-th row/column.
    pub fn with_arterials(mut self, n: usize) -> Self {
        self.arterial_every = n;
        self
    }

    /// Overrides the region partition.
    pub fn with_regions(mut self, rows: usize, cols: usize) -> Self {
        self.region_grid = (rows, cols);
        self
    }

    /// Builds the network. `seed` only perturbs node placement slightly
    /// (sub-metre jitter) so distinct seeds stay topologically identical.
    pub fn build(&self, seed: u64) -> RoadNetwork {
        assert!(self.rows >= 1 && self.cols >= 1, "grid must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::with_capacity(self.rows * self.cols);
        for y in 0..self.rows {
            for x in 0..self.cols {
                let jx: f64 = rng.gen_range(-0.5..0.5);
                let jy: f64 = rng.gen_range(-0.5..0.5);
                ids.push(b.add_node(Point::new(
                    x as f64 * self.spacing_m + jx,
                    y as f64 * self.spacing_m + jy,
                )));
            }
        }
        let is_arterial = |idx: usize| -> bool {
            self.arterial_every != 0 && idx.is_multiple_of(self.arterial_every)
        };
        for y in 0..self.rows {
            for x in 0..self.cols {
                let i = y * self.cols + x;
                if x + 1 < self.cols {
                    let (lanes, speed) = if is_arterial(y) {
                        (self.arterial_lanes, self.arterial_speed_mps)
                    } else {
                        (self.lanes, self.speed_mps)
                    };
                    if let (Some(&a), Some(&c)) = (ids.get(i), ids.get(i + 1)) {
                        // lint: allow(panic) — generator invariant: grid
                        // nodes and spec-checked lanes/speeds are valid.
                        b.add_road(a, c, lanes, speed).expect("grid road is valid");
                    }
                }
                if y + 1 < self.rows {
                    let (lanes, speed) = if is_arterial(x) {
                        (self.arterial_lanes, self.arterial_speed_mps)
                    } else {
                        (self.lanes, self.speed_mps)
                    };
                    if let (Some(&a), Some(&c)) = (ids.get(i), ids.get(i + self.cols)) {
                        // lint: allow(panic) — generator invariant: grid
                        // nodes and spec-checked lanes/speeds are valid.
                        b.add_road(a, c, lanes, speed).expect("grid road is valid");
                    }
                }
            }
        }
        // lint: allow(panic) — generator invariant: a grid spec always builds
        b.assign_regions_grid(self.region_grid.0, self.region_grid.1)
            .build()
            .expect("grid spec always yields a valid network")
    }
}

/// Specification of an irregular network with exact node and road counts.
///
/// Nodes are placed uniformly at random in a square; a greedy spanning tree
/// over nearest neighbours guarantees connectivity; the remaining road
/// budget is spent on the geometrically shortest unused node pairs, which
/// yields planar-ish, organically-shaped street patterns.
#[derive(Debug, Clone)]
pub struct IrregularSpec {
    /// Exact number of intersections.
    pub nodes: usize,
    /// Exact number of bidirectional roads; must be >= nodes - 1.
    pub roads: usize,
    /// Side of the square the city occupies, metres.
    pub extent_m: f64,
    /// Lanes on every street.
    pub lanes: u8,
    /// Speed limit (m/s).
    pub speed_mps: f64,
    /// Region partition.
    pub region_grid: (usize, usize),
}

impl IrregularSpec {
    /// Creates a spec with library defaults and a 2x2 region partition.
    pub fn new(nodes: usize, roads: usize) -> Self {
        Self {
            nodes,
            roads,
            extent_m: (nodes as f64).sqrt() * DEFAULT_SPACING_M,
            lanes: 1,
            speed_mps: DEFAULT_SPEED_MPS,
            region_grid: (2, 2),
        }
    }

    /// Overrides the region partition.
    pub fn with_regions(mut self, rows: usize, cols: usize) -> Self {
        self.region_grid = (rows, cols);
        self
    }

    /// Builds the network deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Result<RoadNetwork> {
        if self.nodes < 2 {
            return Err(RoadnetError::InvalidSpec(
                "irregular network needs at least 2 nodes".into(),
            ));
        }
        if self.roads < self.nodes - 1 {
            return Err(RoadnetError::InvalidSpec(format!(
                "{} roads cannot connect {} nodes",
                self.roads, self.nodes
            )));
        }
        let max_roads = self.nodes * (self.nodes - 1) / 2;
        if self.roads > max_roads {
            return Err(RoadnetError::InvalidSpec(format!(
                "{} roads exceeds the {} possible pairs of {} nodes",
                self.roads, max_roads, self.nodes
            )));
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Point> = (0..self.nodes)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..self.extent_m),
                    rng.gen_range(0.0..self.extent_m),
                )
            })
            .collect();

        // Greedy nearest-neighbour spanning tree (Prim).
        let mut in_tree = vec![false; self.nodes];
        if let Some(root) = in_tree.first_mut() {
            *root = true;
        }
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(self.roads);
        for _ in 1..self.nodes {
            let mut best: Option<(usize, usize, f64)> = None;
            let grown = |i: usize| in_tree.get(i).copied().unwrap_or(false);
            for (a, pa) in points.iter().enumerate().filter(|&(a, _)| grown(a)) {
                for (b, pb) in points.iter().enumerate().filter(|&(b, _)| !grown(b)) {
                    let d = pa.distance_sq(pb);
                    if best.is_none_or(|(.., bd)| d < bd) {
                        best = Some((a, b, d));
                    }
                }
            }
            // The tree is incomplete, so a frontier candidate exists; an
            // empty `best` would mean zero nodes and the loop not running.
            let Some((a, b, _)) = best else {
                break;
            };
            if let Some(flag) = in_tree.get_mut(b) {
                *flag = true;
            }
            edges.push((a.min(b), a.max(b)));
        }

        // Spend the remaining budget on the shortest unused pairs.
        let mut remaining: Vec<(usize, usize, f64)> = Vec::new();
        for (a, pa) in points.iter().enumerate() {
            for (b, pb) in points.iter().enumerate().skip(a + 1) {
                if !edges.contains(&(a, b)) {
                    remaining.push((a, b, pa.distance_sq(pb)));
                }
            }
        }
        remaining.sort_by(|x, y| x.2.partial_cmp(&y.2).unwrap_or(std::cmp::Ordering::Equal));
        for &(a, b, _) in remaining.iter().take(self.roads - edges.len()) {
            edges.push((a, b));
        }

        let mut builder = NetworkBuilder::new();
        for p in &points {
            builder.add_node(*p);
        }
        for (a, b) in edges {
            builder.add_road(NodeId(a), NodeId(b), self.lanes, self.speed_mps)?;
        }
        builder
            .assign_regions_grid(self.region_grid.0, self.region_grid.1)
            .build()
    }
}

/// Specification of a radial-ring network: `rings` concentric ring roads
/// crossed by `spokes` radial arterials meeting at a centre node —
/// the classic European-city topology, complementing [`GridSpec`]'s
/// American grid.
#[derive(Debug, Clone)]
pub struct RadialSpec {
    /// Number of concentric rings (>= 1).
    pub rings: usize,
    /// Number of radial spokes (>= 3).
    pub spokes: usize,
    /// Radial distance between consecutive rings, metres.
    pub ring_spacing_m: f64,
    /// Lanes on ring roads.
    pub ring_lanes: u8,
    /// Speed limit on ring roads (m/s).
    pub ring_speed_mps: f64,
    /// Lanes on the radial spokes (arterials).
    pub spoke_lanes: u8,
    /// Speed limit on the spokes (m/s).
    pub spoke_speed_mps: f64,
    /// Region partition.
    pub region_grid: (usize, usize),
}

impl RadialSpec {
    /// Creates a spec with library defaults and a 3x3 region partition.
    pub fn new(rings: usize, spokes: usize) -> Self {
        Self {
            rings,
            spokes,
            ring_spacing_m: DEFAULT_SPACING_M,
            ring_lanes: 1,
            ring_speed_mps: DEFAULT_SPEED_MPS,
            spoke_lanes: 2,
            spoke_speed_mps: DEFAULT_ARTERIAL_SPEED_MPS,
            region_grid: (3, 3),
        }
    }

    /// Overrides the region partition.
    pub fn with_regions(mut self, rows: usize, cols: usize) -> Self {
        self.region_grid = (rows, cols);
        self
    }

    /// Builds the network: 1 centre node + rings x spokes intersection
    /// nodes; every ring is a closed loop, every spoke runs centre ->
    /// outermost ring. All roads are bidirectional.
    pub fn build(&self, seed: u64) -> Result<RoadNetwork> {
        if self.rings < 1 {
            return Err(RoadnetError::InvalidSpec("need at least 1 ring".into()));
        }
        if self.spokes < 3 {
            return Err(RoadnetError::InvalidSpec("need at least 3 spokes".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        let centre = b.add_node(Point::new(0.0, 0.0));
        // ids[ring][spoke]
        let mut ids = vec![vec![NodeId(0); self.spokes]; self.rings];
        for (r, ring_row) in ids.iter_mut().enumerate() {
            let radius = (r + 1) as f64 * self.ring_spacing_m;
            for (s, slot) in ring_row.iter_mut().enumerate() {
                let theta = 2.0 * std::f64::consts::PI * s as f64 / self.spokes as f64;
                let jitter: f64 = rng.gen_range(-0.5..0.5);
                *slot = b.add_node(Point::new(
                    (radius + jitter) * theta.cos(),
                    (radius + jitter) * theta.sin(),
                ));
            }
        }
        // Spokes: centre -> ring1 -> ... -> outermost.
        for (s, &innermost) in ids.first().into_iter().flatten().enumerate() {
            b.add_road(centre, innermost, self.spoke_lanes, self.spoke_speed_mps)?;
            for pair in ids.windows(2) {
                if let (Some(&inner), Some(&outer)) = (
                    pair.first().and_then(|row| row.get(s)),
                    pair.last().and_then(|row| row.get(s)),
                ) {
                    b.add_road(inner, outer, self.spoke_lanes, self.spoke_speed_mps)?;
                }
            }
        }
        // Rings: closed loops.
        for ring_row in &ids {
            for (s, &here) in ring_row.iter().enumerate() {
                if let Some(&next) = ring_row.get((s + 1) % self.spokes) {
                    b.add_road(here, next, self.ring_lanes, self.ring_speed_mps)?;
                }
            }
        }
        b.assign_regions_grid(self.region_grid.0, self.region_grid.1)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let net = GridSpec::new(3, 3).build(0);
        assert_eq!(net.num_nodes(), 9);
        // 3x3 grid: 2*3 horizontal + 3*2 vertical = 12 roads = 24 links
        assert_eq!(net.num_roads(), 12);
        assert_eq!(net.num_links(), 24);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn grid_10x10_matches_manhattan_counts() {
        let net = GridSpec::new(10, 10).build(0);
        assert_eq!(net.num_nodes(), 100);
        assert_eq!(net.num_roads(), 180);
    }

    #[test]
    fn grid_is_deterministic_per_seed() {
        let a = GridSpec::new(4, 4).build(42);
        let b = GridSpec::new(4, 4).build(42);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn arterials_get_more_lanes() {
        let net = GridSpec::new(5, 5).with_arterials(2).build(0);
        let lanes: Vec<u8> = net.links().iter().map(|l| l.lanes).collect();
        assert!(lanes.contains(&1));
        assert!(lanes.contains(&2));
    }

    #[test]
    fn irregular_exact_counts() {
        for &(n, r) in &[(14usize, 16usize), (46, 63), (70, 100)] {
            let net = IrregularSpec::new(n, r).build(7).unwrap();
            assert_eq!(net.num_nodes(), n, "nodes for ({n},{r})");
            assert_eq!(net.num_roads(), r, "roads for ({n},{r})");
            assert!(net.is_strongly_connected(), "connected for ({n},{r})");
        }
    }

    #[test]
    fn irregular_rejects_impossible_specs() {
        assert!(IrregularSpec::new(1, 0).build(0).is_err());
        assert!(IrregularSpec::new(10, 8).build(0).is_err()); // < n-1
        assert!(IrregularSpec::new(4, 7).build(0).is_err()); // > n(n-1)/2
    }

    #[test]
    fn irregular_is_deterministic_per_seed() {
        let a = IrregularSpec::new(20, 30).build(5).unwrap();
        let b = IrregularSpec::new(20, 30).build(5).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = IrregularSpec::new(20, 30).build(6).unwrap();
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn radial_counts_and_connectivity() {
        let net = RadialSpec::new(3, 6).build(0).unwrap();
        // nodes: 1 centre + 3 rings x 6 spokes
        assert_eq!(net.num_nodes(), 19);
        // roads: spokes 6 x 3 segments + rings 3 x 6 segments
        assert_eq!(net.num_roads(), 36);
        assert!(net.is_strongly_connected());
        // spokes are arterials: some links have 2 lanes
        assert!(net.links().iter().any(|l| l.lanes == 2));
        assert!(net.links().iter().any(|l| l.lanes == 1));
    }

    #[test]
    fn radial_rejects_degenerate_specs() {
        assert!(RadialSpec::new(0, 6).build(0).is_err());
        assert!(RadialSpec::new(2, 2).build(0).is_err());
    }

    #[test]
    fn radial_deterministic_per_seed() {
        let a = RadialSpec::new(2, 5).build(3).unwrap();
        let b = RadialSpec::new(2, 5).build(3).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn region_partition_is_honoured() {
        let net = GridSpec::new(6, 6).with_regions(3, 3).build(0);
        assert_eq!(net.num_regions(), 9);
    }
}
