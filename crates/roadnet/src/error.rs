//! Error type shared by the road-network substrate.

use crate::ids::{LinkId, NodeId, OdPairId, RegionId};
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RoadnetError>;

/// Errors produced while building or querying road networks and tensors.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadnetError {
    /// A node id referenced an index outside the network.
    UnknownNode(NodeId),
    /// A link id referenced an index outside the network.
    UnknownLink(LinkId),
    /// A region id referenced an index outside the network.
    UnknownRegion(RegionId),
    /// An OD pair id referenced an index outside the OD set.
    UnknownOdPair(OdPairId),
    /// No path exists between the requested endpoints.
    NoPath {
        /// Origin node of the failed query.
        from: NodeId,
        /// Destination node of the failed query.
        to: NodeId,
    },
    /// A tensor was constructed or accessed with an inconsistent shape.
    ShapeMismatch {
        /// What was expected, e.g. "n_od * t = 24".
        expected: String,
        /// What was actually provided.
        actual: String,
    },
    /// A generator was asked for an impossible topology.
    InvalidSpec(String),
    /// A numeric attribute was out of its legal domain (negative length, ...).
    InvalidAttribute(String),
    /// An internal invariant was violated; a bug rather than bad input.
    Internal(String),
}

impl fmt::Display for RoadnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(id) => write!(f, "unknown node {id}"),
            Self::UnknownLink(id) => write!(f, "unknown link {id}"),
            Self::UnknownRegion(id) => write!(f, "unknown region {id}"),
            Self::UnknownOdPair(id) => write!(f, "unknown OD pair {id}"),
            Self::NoPath { from, to } => write!(f, "no path from {from} to {to}"),
            Self::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            Self::InvalidSpec(msg) => write!(f, "invalid network spec: {msg}"),
            Self::InvalidAttribute(msg) => write!(f, "invalid attribute: {msg}"),
            Self::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for RoadnetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RoadnetError::NoPath {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert_eq!(e.to_string(), "no path from n1 to n2");
        let e = RoadnetError::ShapeMismatch {
            expected: "12".into(),
            actual: "13".into(),
        };
        assert!(e.to_string().contains("expected 12"));
    }
}
