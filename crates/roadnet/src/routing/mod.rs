//! Routing over road networks.
//!
//! The paper's TOD-Volume module assumes a routing policy `pi` that maps
//! each OD pair to one or more routes (§IV-C): "people will choose the
//! shortest or fastest route based on real-time traffic conditions". This
//! module provides:
//!
//! * [`shortest_path`] / [`fastest_path`] — static Dijkstra by length or
//!   free-flow travel time;
//! * [`k_shortest_paths`] — Yen's algorithm for the multi-route variant
//!   (Eq. 3 allows several routes per OD);
//! * [`time_dependent::fastest_path_at`] — fastest path under observed
//!   per-interval link speeds, the "based on real-time traffic conditions"
//!   policy used by the simulator's en-route vehicles;
//! * the `_masked` variants — the same searches under a closure mask, so
//!   route sets re-derive when incidents remove links and restore when
//!   they clear.

mod dijkstra;
mod ksp;
mod path;
pub mod time_dependent;

pub use dijkstra::{
    dijkstra, dijkstra_with_bans, fastest_path, fastest_path_masked, shortest_path,
    shortest_path_masked, CostFn,
};
pub use ksp::{k_shortest_paths, k_shortest_paths_masked};
pub use path::Route;
