//! Dijkstra shortest-path search with pluggable link costs.

use super::path::Route;
use crate::error::{Result, RoadnetError};
use crate::ids::{LinkId, NodeId};
use crate::network::{Link, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A per-link cost function. Costs must be positive and finite; a
/// non-finite cost marks the link as unusable (e.g. fully blocked by road
/// work).
pub type CostFn<'a> = &'a dyn Fn(&Link) -> f64;

/// Min-heap entry ordered by cost.
#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order for a min-heap; costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `from` to `to` under an arbitrary positive link-cost
/// function. Returns [`RoadnetError::NoPath`] when `to` is unreachable.
///
/// The `banned` predicates support Yen's algorithm: links or nodes for
/// which they return true are skipped.
pub fn dijkstra_with_bans(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    cost: CostFn<'_>,
    link_banned: &dyn Fn(LinkId) -> bool,
    node_banned: &dyn Fn(NodeId) -> bool,
) -> Result<Route> {
    net.node(from)?;
    net.node(to)?;
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_link: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];

    if let Some(d) = dist.get_mut(from.index()) {
        *d = 0.0;
    }
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        cost: 0.0,
        node: from,
    });

    // Node and link ids come out of the validated network, so every index
    // below is in range; checked access keeps that a local fact instead of
    // a cross-module invariant, and an out-of-range id degrades into
    // "unreachable" rather than a panic.
    while let Some(HeapEntry { cost: d, node }) = heap.pop() {
        if done.get(node.index()).copied().unwrap_or(true) {
            continue;
        }
        if let Some(flag) = done.get_mut(node.index()) {
            *flag = true;
        }
        if node == to {
            break;
        }
        for &lid in net.out_links(node) {
            if link_banned(lid) {
                continue;
            }
            let Some(link) = net.links().get(lid.index()) else {
                continue;
            };
            if node_banned(link.to) && link.to != to {
                continue;
            }
            let c = cost(link);
            if !c.is_finite() || c < 0.0 {
                continue;
            }
            let nd = d + c;
            if nd
                < dist
                    .get(link.to.index())
                    .copied()
                    .unwrap_or(f64::NEG_INFINITY)
            {
                if let Some(slot) = dist.get_mut(link.to.index()) {
                    *slot = nd;
                }
                if let Some(slot) = prev_link.get_mut(link.to.index()) {
                    *slot = Some(lid);
                }
                heap.push(HeapEntry {
                    cost: nd,
                    node: link.to,
                });
            }
        }
    }

    if from != to && prev_link.get(to.index()).copied().flatten().is_none() {
        return Err(RoadnetError::NoPath { from, to });
    }

    // Reconstruct the link sequence by walking predecessors. The chain is
    // complete whenever the reachability check above passed; a hole here
    // is a bug, surfaced as an error instead of a panic.
    let mut links = Vec::new();
    let mut cur = to;
    while cur != from {
        let Some(lid) = prev_link.get(cur.index()).copied().flatten() else {
            return Err(RoadnetError::Internal(format!(
                "predecessor chain broken at {cur} while reconstructing {from}->{to}"
            )));
        };
        links.push(lid);
        let Some(link) = net.links().get(lid.index()) else {
            return Err(RoadnetError::Internal(format!(
                "unknown link {lid} on the predecessor chain of {from}->{to}"
            )));
        };
        cur = link.from;
    }
    links.reverse();
    Ok(Route {
        links,
        cost: dist.get(to.index()).copied().unwrap_or(f64::INFINITY),
    })
}

/// Dijkstra under an arbitrary positive link-cost function.
pub fn dijkstra(net: &RoadNetwork, from: NodeId, to: NodeId, cost: CostFn<'_>) -> Result<Route> {
    dijkstra_with_bans(net, from, to, cost, &|_| false, &|_| false)
}

/// Shortest path by physical length (metres).
pub fn shortest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Result<Route> {
    dijkstra(net, from, to, &|l| l.length_m)
}

/// Fastest path by free-flow travel time (seconds).
pub fn fastest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Result<Route> {
    dijkstra(net, from, to, &|l| l.free_flow_time_s())
}

/// Shortest path by length avoiding every link for which `masked` returns
/// true (closed by an incident, say). [`RoadnetError::NoPath`] when the
/// mask disconnects the pair.
pub fn shortest_path_masked(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    masked: &dyn Fn(LinkId) -> bool,
) -> Result<Route> {
    dijkstra_with_bans(net, from, to, &|l| l.length_m, masked, &|_| false)
}

/// Fastest path by free-flow travel time avoiding masked links.
pub fn fastest_path_masked(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    masked: &dyn Fn(LinkId) -> bool,
) -> Result<Route> {
    dijkstra_with_bans(net, from, to, &|l| l.free_flow_time_s(), masked, &|_| false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::Point;

    /// Triangle where the direct edge is longer than the detour but faster.
    ///   a --(1000 m, 30 m/s)--> c
    ///   a --(300 m, 5 m/s)--> b --(300 m, 5 m/s)--> c
    fn triangle() -> (RoadNetwork, NodeId, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let na = b.add_node(Point::new(0.0, 0.0));
        let nb = b.add_node(Point::new(300.0, 0.0));
        let nc = b.add_node(Point::new(300.0, 300.0));
        // direct long edge a->c: we cheat geometry by placing c so that
        // a->c is ~424 m; use per-link speeds to control fastest path.
        b.add_road(na, nc, 1, 30.0).unwrap();
        b.add_road(na, nb, 1, 5.0).unwrap();
        b.add_road(nb, nc, 1, 5.0).unwrap();
        (b.build().unwrap(), na, nb, nc)
    }

    #[test]
    fn shortest_prefers_direct_edge() {
        let (net, a, _b, c) = triangle();
        let r = shortest_path(&net, a, c).unwrap();
        assert_eq!(r.links.len(), 1);
        assert!(r.is_connected(&net));
        assert!(r.is_simple(&net));
        assert!((r.cost - r.length_m(&net)).abs() < 1e-9);
    }

    #[test]
    fn fastest_respects_speed_limits() {
        let (net, a, _b, c) = triangle();
        let r = fastest_path(&net, a, c).unwrap();
        // direct: ~424 m / 30 = ~14 s; detour: 600 m / 5 = 120 s
        assert_eq!(r.links.len(), 1);
        assert!(r.cost < 20.0);
    }

    #[test]
    fn trivial_path_to_self_is_empty() {
        let (net, a, ..) = triangle();
        let r = shortest_path(&net, a, a).unwrap();
        assert!(r.links.is_empty());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn unreachable_is_no_path_error() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_link(c, a, 1, 10.0).unwrap(); // only c->a
        let net = b.build().unwrap();
        assert!(matches!(
            shortest_path(&net, a, c),
            Err(RoadnetError::NoPath { .. })
        ));
    }

    #[test]
    fn banned_link_forces_detour() {
        let (net, a, _b, c) = triangle();
        let direct = shortest_path(&net, a, c).unwrap().links[0];
        let r = dijkstra_with_bans(&net, a, c, &|l| l.length_m, &|lid| lid == direct, &|_| {
            false
        })
        .unwrap();
        assert_eq!(r.links.len(), 2);
        assert!(!r.contains_link(direct));
    }

    #[test]
    fn masked_routes_detour_and_restore() {
        let (net, a, _b, c) = triangle();
        let direct = shortest_path(&net, a, c).unwrap().links[0];
        // Mask in force: the closed direct edge is avoided.
        let r = shortest_path_masked(&net, a, c, &|l| l == direct).unwrap();
        assert_eq!(r.links.len(), 2);
        assert!(!r.contains_link(direct));
        let r = fastest_path_masked(&net, a, c, &|l| l == direct).unwrap();
        assert!(!r.contains_link(direct));
        // Mask cleared: routing restores the original choice.
        let r = shortest_path_masked(&net, a, c, &|_| false).unwrap();
        assert_eq!(r.links, vec![direct]);
    }

    #[test]
    fn mask_disconnecting_the_pair_is_no_path() {
        let (net, a, _b, c) = triangle();
        assert!(matches!(
            shortest_path_masked(&net, a, c, &|_| true),
            Err(RoadnetError::NoPath { .. })
        ));
    }

    #[test]
    fn non_finite_cost_blocks_link() {
        let (net, a, _b, c) = triangle();
        // Block the direct edge by pricing it at infinity.
        let direct = shortest_path(&net, a, c).unwrap().links[0];
        let r = dijkstra(&net, a, c, &|l| {
            if l.id == direct {
                f64::INFINITY
            } else {
                l.length_m
            }
        })
        .unwrap();
        assert_eq!(r.links.len(), 2);
    }

    #[test]
    fn unknown_endpoints_are_errors() {
        let (net, a, ..) = triangle();
        assert!(shortest_path(&net, a, NodeId(99)).is_err());
        assert!(shortest_path(&net, NodeId(99), a).is_err());
    }

    #[test]
    fn dijkstra_cost_is_optimal_on_grid() {
        // 4x4 grid, uniform speeds: shortest a->p must equal Manhattan
        // distance in metres.
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                let i = y * 4 + x;
                if x + 1 < 4 {
                    b.add_road(ids[i], ids[i + 1], 1, 10.0).unwrap();
                }
                if y + 1 < 4 {
                    b.add_road(ids[i], ids[i + 4], 1, 10.0).unwrap();
                }
            }
        }
        let net = b.build().unwrap();
        let r = shortest_path(&net, ids[0], ids[15]).unwrap();
        assert!((r.cost - 600.0).abs() < 1e-9);
        assert_eq!(r.links.len(), 6);
    }
}
