//! Time-dependent fastest paths.
//!
//! Implements the paper's "fastest route based on real-time traffic
//! conditions" routing policy: link travel times are taken from an observed
//! per-interval speed tensor instead of the static speed limit. Vehicles
//! departing in interval `t` are routed with the speeds of interval `t`
//! (a snapshot policy — the standard approximation when routing decisions
//! are made at departure time).

use super::dijkstra::dijkstra;
use super::path::Route;
use crate::error::{Result, RoadnetError};
use crate::ids::NodeId;
use crate::network::RoadNetwork;
use crate::tensor::LinkTensor;

/// Minimum speed (m/s) used when an observation reports a fully stopped
/// link, so travel times stay finite.
pub const MIN_SPEED_MPS: f64 = 0.5;

/// Fastest path from `from` to `to` using the speeds observed during
/// interval `t` of `speeds` (shape `M x T`). Links with missing (<= 0 or
/// non-finite) observations fall back to their speed limit.
pub fn fastest_path_at(
    net: &RoadNetwork,
    speeds: &LinkTensor,
    t: usize,
    from: NodeId,
    to: NodeId,
) -> Result<Route> {
    if speeds.rows() != net.num_links() {
        return Err(RoadnetError::ShapeMismatch {
            expected: format!("{} link rows", net.num_links()),
            actual: format!("{} rows", speeds.rows()),
        });
    }
    if t >= speeds.num_intervals() {
        return Err(RoadnetError::ShapeMismatch {
            expected: format!("interval < {}", speeds.num_intervals()),
            actual: format!("interval {t}"),
        });
    }
    dijkstra(net, from, to, &|l| {
        let obs = speeds.get(l.id, t);
        let v = if obs.is_finite() && obs > 0.0 {
            obs.min(l.speed_limit_mps).max(MIN_SPEED_MPS)
        } else {
            l.speed_limit_mps
        };
        l.length_m / v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::network::NetworkBuilder;
    use crate::Point;

    /// Diamond: a -> b -> d (north) and a -> c -> d (south), equal lengths.
    fn diamond() -> (RoadNetwork, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let na = b.add_node(Point::new(0.0, 0.0));
        let nb = b.add_node(Point::new(100.0, 100.0));
        let nc = b.add_node(Point::new(100.0, -100.0));
        let nd = b.add_node(Point::new(200.0, 0.0));
        b.add_road(na, nb, 1, 15.0).unwrap();
        b.add_road(nb, nd, 1, 15.0).unwrap();
        b.add_road(na, nc, 1, 15.0).unwrap();
        b.add_road(nc, nd, 1, 15.0).unwrap();
        (b.build().unwrap(), na, nd)
    }

    #[test]
    fn congestion_redirects_route() {
        let (net, a, d) = diamond();
        let m = net.num_links();
        // Interval 0: north congested, interval 1: south congested.
        let mut speeds = LinkTensor::filled(m, 2, 15.0);
        // Identify the a->b link (north first hop) and a->c (south first hop).
        let north = net.out_links(a)[0];
        let south = net.out_links(a)[1];
        speeds.set(north, 0, 1.0);
        speeds.set(south, 1, 1.0);

        let r0 = fastest_path_at(&net, &speeds, 0, a, d).unwrap();
        let r1 = fastest_path_at(&net, &speeds, 1, a, d).unwrap();
        assert!(r0.contains_link(south) && !r0.contains_link(north));
        assert!(r1.contains_link(north) && !r1.contains_link(south));
    }

    #[test]
    fn missing_observation_falls_back_to_limit() {
        let (net, a, d) = diamond();
        let speeds = LinkTensor::zeros(net.num_links(), 1); // all missing
        let r = fastest_path_at(&net, &speeds, 0, a, d).unwrap();
        // With fallback, cost equals free-flow time of a 2-hop route.
        let expected: f64 = r
            .links
            .iter()
            .map(|&l| net.links()[l.index()].free_flow_time_s())
            .sum();
        assert!((r.cost - expected).abs() < 1e-9);
    }

    #[test]
    fn observation_cannot_exceed_speed_limit() {
        let (net, a, d) = diamond();
        let speeds = LinkTensor::filled(net.num_links(), 1, 100.0); // implausible
        let r = fastest_path_at(&net, &speeds, 0, a, d).unwrap();
        let free_flow: f64 = r
            .links
            .iter()
            .map(|&l| net.links()[l.index()].free_flow_time_s())
            .sum();
        assert!(r.cost >= free_flow - 1e-9, "capped at free flow");
    }

    #[test]
    fn stopped_link_stays_finite() {
        let (net, a, d) = diamond();
        let mut speeds = LinkTensor::filled(net.num_links(), 1, 15.0);
        for lid in 0..net.num_links() {
            speeds.set(LinkId(lid), 0, 1e-12);
        }
        let r = fastest_path_at(&net, &speeds, 0, a, d).unwrap();
        assert!(r.cost.is_finite());
    }

    #[test]
    fn shape_errors_reported() {
        let (net, a, d) = diamond();
        let bad_rows = LinkTensor::zeros(net.num_links() + 1, 1);
        assert!(fastest_path_at(&net, &bad_rows, 0, a, d).is_err());
        let speeds = LinkTensor::zeros(net.num_links(), 2);
        assert!(fastest_path_at(&net, &speeds, 5, a, d).is_err());
    }
}
