//! Yen's k-shortest loopless paths.
//!
//! Supports the multi-route form of the paper's TOD-Volume mapping (Eq. 3):
//! an OD pair may correspond to several plausible routes, and the OD-Route
//! layer distributes trip counts over them.

use super::dijkstra::{dijkstra_with_bans, CostFn};
use super::path::Route;
use crate::error::{Result, RoadnetError};
use crate::ids::{LinkId, NodeId};
use crate::network::RoadNetwork;
use std::collections::BTreeSet;

/// Returns up to `k` loopless paths from `from` to `to` in non-decreasing
/// cost order. Returns an error only when *no* path exists at all; fewer
/// than `k` paths is not an error.
pub fn k_shortest_paths(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: CostFn<'_>,
) -> Result<Vec<Route>> {
    k_shortest_paths_masked(net, from, to, k, cost, &|_| false)
}

/// [`k_shortest_paths`] under a link mask: every route avoids links for
/// which `masked` returns true. This is how route sets re-derive when an
/// incident closes links — the mask changes, the same machinery reruns.
pub fn k_shortest_paths_masked(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: CostFn<'_>,
    masked: &dyn Fn(LinkId) -> bool,
) -> Result<Vec<Route>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let first = dijkstra_with_bans(net, from, to, cost, masked, &|_| false)?;
    let mut accepted: Vec<Route> = vec![first];
    let mut candidates: Vec<Route> = Vec::new();

    while accepted.len() < k {
        // `accepted` starts with one route and only grows; popping the
        // guard rather than `expect`ing keeps this loop panic-free.
        let Some(last) = accepted.last().cloned() else {
            break;
        };
        let last_nodes = last.nodes(net);

        // Deviate at every spur node of the previous accepted path.
        for spur_idx in 0..last.links.len() {
            let spur_node = if spur_idx == 0 {
                from
            } else {
                match last_nodes.get(spur_idx) {
                    Some(&n) => n,
                    None => continue,
                }
            };
            let Some(root_links) = last.links.get(..spur_idx) else {
                continue;
            };

            // Ban links that would recreate an already-accepted path with
            // the same root.
            let mut banned_links = BTreeSet::new();
            for p in &accepted {
                if p.links.get(..spur_idx) == Some(root_links) {
                    if let Some(&spur_link) = p.links.get(spur_idx) {
                        banned_links.insert(spur_link);
                    }
                }
            }
            // Ban root nodes (except the spur node) to keep paths loopless.
            let banned_nodes: BTreeSet<NodeId> = match last_nodes.get(..spur_idx) {
                Some(prefix) => prefix.iter().copied().collect(),
                None => continue,
            };

            let spur = match dijkstra_with_bans(
                net,
                spur_node,
                to,
                cost,
                &|l| masked(l) || banned_links.contains(&l),
                &|n| banned_nodes.contains(&n),
            ) {
                Ok(p) => p,
                Err(RoadnetError::NoPath { .. }) => continue,
                Err(e) => return Err(e),
            };

            let mut links = root_links.to_vec();
            links.extend_from_slice(&spur.links);
            let total_cost: f64 = links
                .iter()
                .filter_map(|&l| net.links().get(l.index()))
                .map(cost)
                .sum();
            let candidate = Route {
                links,
                cost: total_cost,
            };
            if !candidate.is_simple(net) {
                continue;
            }
            if !accepted.iter().any(|p| p.links == candidate.links)
                && !candidates.iter().any(|p| p.links == candidate.links)
            {
                candidates.push(candidate);
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate. A plain scan avoids both the
        // `partial_cmp` NaN footgun and a non-emptiness `expect`.
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            if c.cost < best_cost {
                best_cost = c.cost;
                best = i;
            }
        }
        accepted.push(candidates.swap_remove(best));
    }

    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::routing::shortest_path;
    use crate::Point;

    /// 3x3 grid with uniform attributes; many equal-length alternatives.
    fn grid3() -> (RoadNetwork, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..3usize {
            for x in 0..3usize {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    b.add_road(ids[i], ids[i + 1], 1, 10.0).unwrap();
                }
                if y + 1 < 3 {
                    b.add_road(ids[i], ids[i + 3], 1, 10.0).unwrap();
                }
            }
        }
        (b.build().unwrap(), ids[0], ids[8])
    }

    #[test]
    fn k1_matches_dijkstra() {
        let (net, a, z) = grid3();
        let ks = k_shortest_paths(&net, a, z, 1, &|l| l.length_m).unwrap();
        let d = shortest_path(&net, a, z).unwrap();
        assert_eq!(ks.len(), 1);
        assert!((ks[0].cost - d.cost).abs() < 1e-9);
    }

    #[test]
    fn paths_are_sorted_unique_simple_connected() {
        let (net, a, z) = grid3();
        let ks = k_shortest_paths(&net, a, z, 6, &|l| l.length_m).unwrap();
        assert_eq!(ks.len(), 6, "3x3 grid has 6 monotone corner paths");
        for w in ks.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
            assert_ne!(w[0].links, w[1].links);
        }
        for p in &ks {
            assert!(p.is_connected(&net));
            assert!(p.is_simple(&net));
            // all corner-to-corner monotone paths are 400 m
            assert!((p.cost - 400.0).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_path_count_returns_all() {
        // Two nodes, one road: exactly one simple path.
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_road(a, c, 1, 10.0).unwrap();
        let net = b.build().unwrap();
        let ks = k_shortest_paths(&net, a, c, 5, &|l| l.length_m).unwrap();
        assert_eq!(ks.len(), 1);
    }

    #[test]
    fn k_zero_is_empty() {
        let (net, a, z) = grid3();
        assert!(k_shortest_paths(&net, a, z, 0, &|l| l.length_m)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn masked_route_sets_avoid_closed_links() {
        let (net, a, z) = grid3();
        let open = k_shortest_paths(&net, a, z, 6, &|l| l.length_m).unwrap();
        // Close every link the best route uses; the remaining set must
        // avoid them all and shrink accordingly.
        let closed: BTreeSet<LinkId> = open[0].links.iter().copied().collect();
        let masked =
            k_shortest_paths_masked(&net, a, z, 6, &|l| l.length_m, &|l| closed.contains(&l))
                .unwrap();
        assert!(!masked.is_empty());
        assert!(masked.len() < open.len());
        for p in &masked {
            assert!(p.is_simple(&net));
            assert!(p.links.iter().all(|l| !closed.contains(l)));
        }
    }

    #[test]
    fn no_path_is_error() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_link(c, a, 1, 10.0).unwrap();
        let net = b.build().unwrap();
        assert!(k_shortest_paths(&net, a, c, 3, &|l| l.length_m).is_err());
    }
}
