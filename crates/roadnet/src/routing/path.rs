//! Route representation.

use crate::ids::{LinkId, NodeId};
use crate::network::RoadNetwork;
use serde::{Deserialize, Serialize};

/// A route: a connected sequence of links from an origin node to a
/// destination node, with its total cost under the metric that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Links in traversal order.
    pub links: Vec<LinkId>,
    /// Total cost (metres for shortest, seconds for fastest).
    pub cost: f64,
}

impl Route {
    /// Node sequence of the route including both endpoints; empty routes
    /// yield an empty sequence.
    pub fn nodes(&self, net: &RoadNetwork) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.links.len() + 1);
        for (i, &lid) in self.links.iter().enumerate() {
            let Some(l) = net.links().get(lid.index()) else {
                continue;
            };
            if i == 0 {
                out.push(l.from);
            }
            out.push(l.to);
        }
        out
    }

    /// Total length of the route in metres.
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.links
            .iter()
            .filter_map(|&l| net.links().get(l.index()))
            .map(|l| l.length_m)
            .sum()
    }

    /// True when consecutive links share endpoints (the route is connected).
    pub fn is_connected(&self, net: &RoadNetwork) -> bool {
        self.links.windows(2).all(|w| {
            let (Some(&a), Some(&b)) = (w.first(), w.last()) else {
                return false;
            };
            match (net.links().get(a.index()), net.links().get(b.index())) {
                (Some(a), Some(b)) => a.to == b.from,
                _ => false,
            }
        })
    }

    /// True when the route visits no node twice (simple path).
    pub fn is_simple(&self, net: &RoadNetwork) -> bool {
        let nodes = self.nodes(net);
        // BTreeSet: membership-only today, but an ordered set keeps any
        // future iteration deterministic (lint rule D).
        let mut seen = std::collections::BTreeSet::new();
        nodes.iter().all(|n| seen.insert(*n))
    }

    /// True when the route passes through `link`. This is the paper's
    /// "OD `i` contains link `l_j`" relation (§III).
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }
}
