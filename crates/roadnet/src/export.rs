//! Network export: Graphviz DOT and GeoJSON.
//!
//! Generated networks are easiest to sanity-check visually; these exports
//! plug into standard tooling (`dot -Tsvg`, any GeoJSON viewer). Link
//! observations can be attached as GeoJSON properties for choropleth-style
//! congestion maps.

use crate::network::RoadNetwork;
use crate::tensor::LinkTensor;

/// Renders the network as a Graphviz DOT digraph. Node positions are
/// embedded as `pos` attributes (in points, `neato -n` compatible).
pub fn to_dot(net: &RoadNetwork) -> String {
    let mut out = String::from("digraph roadnet {\n  node [shape=point];\n");
    for n in net.nodes() {
        out.push_str(&format!(
            "  n{} [pos=\"{:.1},{:.1}!\"];\n",
            n.id.index(),
            n.point.x / 10.0,
            n.point.y / 10.0
        ));
    }
    for l in net.links() {
        out.push_str(&format!(
            "  n{} -> n{} [label=\"l{}\"];\n",
            l.from.index(),
            l.to.index(),
            l.id.index()
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders the network as a GeoJSON `FeatureCollection` of `LineString`
/// links (local metric coordinates). When `speeds` is provided, each
/// feature carries `speed_t<k>` properties with that link's series —
/// ready for congestion colouring.
pub fn to_geojson(net: &RoadNetwork, speeds: Option<&LinkTensor>) -> String {
    to_geojson_fields(net, speeds, None)
}

/// Congestion bucket of one link given its mean volume and the maximum
/// mean volume over all links: the choropleth classes the map view
/// colours by. Pure and deterministic; a zero-flow network is all
/// `"low"`.
fn congestion_class(mean_volume: f64, max_mean: f64) -> &'static str {
    if max_mean <= 0.0 {
        return "low";
    }
    let ratio = mean_volume / max_mean;
    if ratio >= 0.75 {
        "high"
    } else if ratio >= 0.35 {
        "medium"
    } else {
        "low"
    }
}

/// Full-field GeoJSON export: like [`to_geojson`], plus `volume_t<k>`
/// series, `mean_volume` and a `congestion` class (`low` / `medium` /
/// `high`, relative to the most loaded link) when `volumes` is given —
/// the payload behind the serving layer's `/map/geojson` endpoint.
pub fn to_geojson_fields(
    net: &RoadNetwork,
    speeds: Option<&LinkTensor>,
    volumes: Option<&LinkTensor>,
) -> String {
    let mean = |series: &[f64]| {
        if series.is_empty() {
            0.0
        } else {
            series.iter().sum::<f64>() / series.len() as f64
        }
    };
    let max_mean = volumes
        .map(|v| {
            net.links()
                .iter()
                .map(|l| mean(v.row(l.id)))
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(0.0);
    let mut features = Vec::with_capacity(net.num_links());
    for l in net.links() {
        let (Some(a), Some(b)) = (
            net.nodes().get(l.from.index()),
            net.nodes().get(l.to.index()),
        ) else {
            // Unreachable on a validly built network; skip rather than
            // panic so the export stays total.
            continue;
        };
        let (a, b) = (a.point, b.point);
        let mut props = format!(
            "\"link\":{},\"lanes\":{},\"speed_limit\":{:.1},\"length_m\":{:.1}",
            l.id.index(),
            l.lanes,
            l.speed_limit_mps,
            l.length_m
        );
        if let Some(sp) = speeds {
            for t in 0..sp.num_intervals() {
                props.push_str(&format!(",\"speed_t{t}\":{:.2}", sp.get(l.id, t)));
            }
        }
        if let Some(vol) = volumes {
            for t in 0..vol.num_intervals() {
                props.push_str(&format!(",\"volume_t{t}\":{:.2}", vol.get(l.id, t)));
            }
            let m = mean(vol.row(l.id));
            props.push_str(&format!(
                ",\"mean_volume\":{m:.2},\"congestion\":\"{}\"",
                congestion_class(m, max_mean)
            ));
        }
        features.push(format!(
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",\"coordinates\":[[{:.1},{:.1}],[{:.1},{:.1}]]}},\"properties\":{{{props}}}}}",
            a.x, a.y, b.x, b.y
        ));
    }
    format!(
        "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
        features.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GridSpec;

    #[test]
    fn dot_lists_every_node_and_link() {
        let net = GridSpec::new(2, 2).build(0);
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph roadnet {"));
        for n in net.nodes() {
            assert!(dot.contains(&format!("n{} [pos=", n.id.index())));
        }
        assert_eq!(dot.matches(" -> ").count(), net.num_links());
    }

    #[test]
    fn geojson_is_valid_json_with_all_links() {
        let net = GridSpec::new(2, 3).build(0);
        let speeds = LinkTensor::filled(net.num_links(), 2, 9.5);
        let gj = to_geojson(&net, Some(&speeds));
        let parsed: serde_json::Value = serde_json::from_str(&gj).expect("valid JSON");
        let feats = parsed["features"].as_array().expect("feature array");
        assert_eq!(feats.len(), net.num_links());
        assert_eq!(feats[0]["properties"]["speed_t1"], 9.5);
        assert_eq!(feats[0]["geometry"]["type"], "LineString");
    }

    #[test]
    fn geojson_without_speeds_omits_series() {
        let net = GridSpec::new(2, 2).build(0);
        let gj = to_geojson(&net, None);
        assert!(!gj.contains("speed_t0"));
        let _: serde_json::Value = serde_json::from_str(&gj).expect("valid JSON");
    }

    #[test]
    fn geojson_fields_carry_volumes_and_congestion_classes() {
        let net = GridSpec::new(2, 3).build(0);
        let speeds = LinkTensor::filled(net.num_links(), 2, 9.5);
        // One heavily loaded link, the rest idle: classes must span
        // high (the max link) and low (everything at ratio ~0).
        let mut volumes = LinkTensor::filled(net.num_links(), 2, 1.0);
        volumes.row_mut(crate::ids::LinkId(0)).fill(100.0);
        let gj = to_geojson_fields(&net, Some(&speeds), Some(&volumes));
        let parsed: serde_json::Value = serde_json::from_str(&gj).expect("valid JSON");
        let feats = parsed["features"].as_array().expect("feature array");
        assert_eq!(feats.len(), net.num_links());
        assert_eq!(feats[0]["properties"]["volume_t1"], 100.0);
        assert_eq!(feats[0]["properties"]["congestion"], "high");
        assert_eq!(feats[1]["properties"]["congestion"], "low");
        assert_eq!(feats[0]["properties"]["mean_volume"], 100.0);
        // Determinism: the export is a pure function of its inputs.
        assert_eq!(gj, to_geojson_fields(&net, Some(&speeds), Some(&volumes)));
    }

    #[test]
    fn congestion_classes_are_stable_buckets() {
        assert_eq!(congestion_class(0.0, 0.0), "low");
        assert_eq!(congestion_class(1.0, 1.0), "high");
        assert_eq!(congestion_class(0.5, 1.0), "medium");
        assert_eq!(congestion_class(0.1, 1.0), "low");
    }
}
