//! Network export: Graphviz DOT and GeoJSON.
//!
//! Generated networks are easiest to sanity-check visually; these exports
//! plug into standard tooling (`dot -Tsvg`, any GeoJSON viewer). Link
//! observations can be attached as GeoJSON properties for choropleth-style
//! congestion maps.

use crate::network::RoadNetwork;
use crate::tensor::LinkTensor;

/// Renders the network as a Graphviz DOT digraph. Node positions are
/// embedded as `pos` attributes (in points, `neato -n` compatible).
pub fn to_dot(net: &RoadNetwork) -> String {
    let mut out = String::from("digraph roadnet {\n  node [shape=point];\n");
    for n in net.nodes() {
        out.push_str(&format!(
            "  n{} [pos=\"{:.1},{:.1}!\"];\n",
            n.id.index(),
            n.point.x / 10.0,
            n.point.y / 10.0
        ));
    }
    for l in net.links() {
        out.push_str(&format!(
            "  n{} -> n{} [label=\"l{}\"];\n",
            l.from.index(),
            l.to.index(),
            l.id.index()
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders the network as a GeoJSON `FeatureCollection` of `LineString`
/// links (local metric coordinates). When `speeds` is provided, each
/// feature carries `speed_t<k>` properties with that link's series —
/// ready for congestion colouring.
pub fn to_geojson(net: &RoadNetwork, speeds: Option<&LinkTensor>) -> String {
    let mut features = Vec::with_capacity(net.num_links());
    for l in net.links() {
        let a = net.nodes()[l.from.index()].point;
        let b = net.nodes()[l.to.index()].point;
        let mut props = format!(
            "\"link\":{},\"lanes\":{},\"speed_limit\":{:.1},\"length_m\":{:.1}",
            l.id.index(),
            l.lanes,
            l.speed_limit_mps,
            l.length_m
        );
        if let Some(sp) = speeds {
            for t in 0..sp.num_intervals() {
                props.push_str(&format!(",\"speed_t{t}\":{:.2}", sp.get(l.id, t)));
            }
        }
        features.push(format!(
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",\"coordinates\":[[{:.1},{:.1}],[{:.1},{:.1}]]}},\"properties\":{{{props}}}}}",
            a.x, a.y, b.x, b.y
        ));
    }
    format!(
        "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
        features.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GridSpec;

    #[test]
    fn dot_lists_every_node_and_link() {
        let net = GridSpec::new(2, 2).build(0);
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph roadnet {"));
        for n in net.nodes() {
            assert!(dot.contains(&format!("n{} [pos=", n.id.index())));
        }
        assert_eq!(dot.matches(" -> ").count(), net.num_links());
    }

    #[test]
    fn geojson_is_valid_json_with_all_links() {
        let net = GridSpec::new(2, 3).build(0);
        let speeds = LinkTensor::filled(net.num_links(), 2, 9.5);
        let gj = to_geojson(&net, Some(&speeds));
        let parsed: serde_json::Value = serde_json::from_str(&gj).expect("valid JSON");
        let feats = parsed["features"].as_array().expect("feature array");
        assert_eq!(feats.len(), net.num_links());
        assert_eq!(feats[0]["properties"]["speed_t1"], 9.5);
        assert_eq!(feats[0]["geometry"]["type"], "LineString");
    }

    #[test]
    fn geojson_without_speeds_omits_series() {
        let net = GridSpec::new(2, 2).build(0);
        let gj = to_geojson(&net, None);
        assert!(!gj.contains("speed_t0"));
        let _: serde_json::Value = serde_json::from_str(&gj).expect("valid JSON");
    }
}
