//! City presets matching the paper's Table III.
//!
//! | Dataset       | Intersections | # roads | # trajectories |
//! |---------------|---------------|---------|----------------|
//! | Hangzhou      | 46            | 63      | 9,656          |
//! | Porto         | 70            | 100     | 2,576          |
//! | Manhattan     | 100           | 180     | 1,242,408      |
//! | State College | 14            | 16      | —              |
//!
//! Manhattan is a literal 10x10 grid (which has exactly 100 intersections
//! and 180 roads — the historical reason Table III is so round); Hangzhou,
//! Porto and State College use the irregular generator with exact counts.
//! Trajectory counts are carried as metadata so `datagen` can synthesise
//! taxi-sized samples and Table III can be reprinted.

use crate::generators::{GridSpec, IrregularSpec};
use crate::network::RoadNetwork;

/// Metadata + network for one of the paper's datasets.
#[derive(Debug, Clone)]
pub struct CityPreset {
    /// Dataset name as printed in Table III.
    pub name: &'static str,
    /// The generated road network.
    pub network: RoadNetwork,
    /// Number of taxi trajectories in the original dataset (None for
    /// State College, which the paper leaves blank).
    pub trajectories: Option<u64>,
    /// Taxi-to-full-fleet scale factor (#all vehicles / #taxis, §V-B).
    pub taxi_scale: f64,
}

/// Fixed seed per city so every run of the reproduction sees identical
/// networks.
const HANGZHOU_SEED: u64 = 0xA001;
const PORTO_SEED: u64 = 0xA002;
const MANHATTAN_SEED: u64 = 0xA003;
const STATE_COLLEGE_SEED: u64 = 0xA004;

/// Hangzhou: 46 intersections, 63 roads, big commercial city.
pub fn hangzhou() -> CityPreset {
    let network = IrregularSpec::new(46, 63)
        .with_regions(3, 3)
        .build(HANGZHOU_SEED)
        // lint: allow(panic) — compile-time-fixed preset spec; validated
        // by the preset round-trip tests.
        .expect("preset spec is valid");
    CityPreset {
        name: "Hangzhou",
        network,
        trajectories: Some(9_656),
        taxi_scale: 8.0,
    }
}

/// Porto: 70 intersections, 100 roads.
pub fn porto() -> CityPreset {
    let network = IrregularSpec::new(70, 100)
        .with_regions(3, 3)
        .build(PORTO_SEED)
        // lint: allow(panic) — compile-time-fixed preset spec; validated
        // by the preset round-trip tests.
        .expect("preset spec is valid");
    CityPreset {
        name: "Porto",
        network,
        trajectories: Some(2_576),
        taxi_scale: 10.0,
    }
}

/// Manhattan: 100 intersections, 180 roads — a literal 10x10 grid with
/// arterial avenues every 3rd column/row.
pub fn manhattan() -> CityPreset {
    let network = GridSpec::new(10, 10)
        .with_arterials(3)
        .with_regions(3, 3)
        .build(MANHATTAN_SEED);
    CityPreset {
        name: "Manhattan",
        network,
        trajectories: Some(1_242_408),
        taxi_scale: 4.0,
    }
}

/// State College: 14 intersections, 16 roads, college town (case study #2).
pub fn state_college() -> CityPreset {
    let network = IrregularSpec::new(14, 16)
        .with_regions(2, 2)
        .build(STATE_COLLEGE_SEED)
        // lint: allow(panic) — compile-time-fixed preset spec; validated
        // by the preset round-trip tests.
        .expect("preset spec is valid");
    CityPreset {
        name: "State College",
        network,
        trajectories: None,
        taxi_scale: 1.0,
    }
}

/// The 3x3 synthetic grid of §V-B (9 intersections, 12 roads).
pub fn synthetic_grid() -> RoadNetwork {
    GridSpec::new(3, 3).with_regions(3, 3).build(0)
}

/// All four real-city presets in Table III order.
pub fn all_cities() -> Vec<CityPreset> {
    vec![hangzhou(), porto(), manhattan(), state_college()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_counts_hold() {
        let cases = [
            (hangzhou(), 46, 63),
            (porto(), 70, 100),
            (manhattan(), 100, 180),
            (state_college(), 14, 16),
        ];
        for (preset, nodes, roads) in cases {
            assert_eq!(preset.network.num_nodes(), nodes, "{}", preset.name);
            assert_eq!(preset.network.num_roads(), roads, "{}", preset.name);
            assert!(
                preset.network.is_strongly_connected(),
                "{} must be strongly connected",
                preset.name
            );
        }
    }

    #[test]
    fn trajectories_match_table_iii() {
        assert_eq!(hangzhou().trajectories, Some(9_656));
        assert_eq!(porto().trajectories, Some(2_576));
        assert_eq!(manhattan().trajectories, Some(1_242_408));
        assert_eq!(state_college().trajectories, None);
    }

    #[test]
    fn presets_are_stable_across_calls() {
        let a = hangzhou().network;
        let b = hangzhou().network;
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn synthetic_grid_is_3x3() {
        let net = synthetic_grid();
        assert_eq!(net.num_nodes(), 9);
        assert_eq!(net.num_roads(), 12);
        assert_eq!(net.num_regions(), 9, "one region per block");
    }

    #[test]
    fn all_cities_in_order() {
        let names: Vec<_> = all_cities().iter().map(|c| c.name).collect();
        assert_eq!(names, ["Hangzhou", "Porto", "Manhattan", "State College"]);
    }
}
