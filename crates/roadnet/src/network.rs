//! The road-network graph: intersections (nodes), directed road segments
//! (links) and city regions.
//!
//! Terminology follows the paper (§III): each direction of a physical road
//! segment is a separate *link* `l_j`; the city is divided into a set of
//! *regions* `R = {r}` between which trips (OD pairs) are defined. Volume and
//! speed live on links, TOD lives on region pairs.

use crate::error::{Result, RoadnetError};
use crate::geometry::Point;
use crate::ids::{LinkId, NodeId, RegionId};
use serde::{Deserialize, Serialize};

/// An intersection of the road network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier of this node.
    pub id: NodeId,
    /// Planar position in metres.
    pub point: Point,
    /// Region this node belongs to.
    pub region: RegionId,
    /// Whether a traffic signal controls this intersection.
    pub signalized: bool,
}

/// A directed road segment ("link" in the paper's sense).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Dense identifier of this link.
    pub id: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Length in metres.
    pub length_m: f64,
    /// Number of lanes in this direction.
    pub lanes: u8,
    /// Legal speed limit in metres per second.
    pub speed_limit_mps: f64,
}

impl Link {
    /// Average vehicle footprint used to derive jam capacity: effective
    /// vehicle length plus minimum standstill gap, in metres.
    pub const VEHICLE_FOOTPRINT_M: f64 = 7.5;

    /// Maximum number of vehicles the link can physically hold (jam density).
    #[inline]
    pub fn storage_capacity(&self) -> usize {
        let per_lane = (self.length_m / Self::VEHICLE_FOOTPRINT_M).floor() as usize;
        (per_lane * self.lanes as usize).max(1)
    }

    /// Travel time in seconds at the speed limit.
    #[inline]
    pub fn free_flow_time_s(&self) -> f64 {
        self.length_m / self.speed_limit_mps
    }
}

/// A city region (the paper's `r`): a group of intersections, optionally
/// carrying census information used by auxiliary losses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Dense identifier of this region.
    pub id: RegionId,
    /// Human-readable label (e.g. "residential A").
    pub name: String,
    /// Nodes contained in this region.
    pub nodes: Vec<NodeId>,
    /// Population count (synthetic census; see `datagen`).
    pub population: f64,
}

impl Region {
    /// Centroid of the region's nodes within `net`, if the region is
    /// non-empty.
    pub fn centroid(&self, net: &RoadNetwork) -> Option<Point> {
        let pts: Vec<Point> = self
            .nodes
            .iter()
            .filter_map(|&n| net.nodes.get(n.index()))
            .map(|n| n.point)
            .collect();
        crate::geometry::centroid(&pts)
    }
}

/// A directed road-network graph with region structure and adjacency
/// indices. Construct one through [`NetworkBuilder`] or the generators in
/// [`crate::generators`] / [`crate::presets`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    links: Vec<Link>,
    regions: Vec<Region>,
    /// Outgoing links per node, indexed by `NodeId`.
    out_links: Vec<Vec<LinkId>>,
    /// Incoming links per node, indexed by `NodeId`.
    in_links: Vec<Vec<LinkId>>,
}

impl RoadNetwork {
    /// Number of intersections.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links (the paper's `M`).
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of physical (bidirectional) roads. Two opposite links over the
    /// same node pair count as one road; one-way links count individually.
    pub fn num_roads(&self) -> usize {
        let mut pairs: Vec<(usize, usize)> = self
            .links
            .iter()
            .map(|l| {
                let (a, b) = (l.from.index(), l.to.index());
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Number of regions (the paper's `K`).
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// All nodes, indexable by `NodeId`.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, indexable by `LinkId`.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All regions, indexable by `RegionId`.
    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks up a node, reporting an error for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .ok_or(RoadnetError::UnknownNode(id))
    }

    /// Looks up a link, reporting an error for out-of-range ids.
    pub fn link(&self, id: LinkId) -> Result<&Link> {
        self.links
            .get(id.index())
            .ok_or(RoadnetError::UnknownLink(id))
    }

    /// Looks up a region, reporting an error for out-of-range ids.
    pub fn region(&self, id: RegionId) -> Result<&Region> {
        self.regions
            .get(id.index())
            .ok_or(RoadnetError::UnknownRegion(id))
    }

    /// Links leaving `node`.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        self.out_links
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Links arriving at `node`.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        self.in_links
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The opposite-direction twin of `link`, if the road is bidirectional.
    pub fn reverse_link(&self, link: LinkId) -> Option<LinkId> {
        let l = self.links.get(link.index())?;
        self.out_links(l.to)
            .iter()
            .copied()
            .find(|&cand| self.links.get(cand.index()).is_some_and(|c| c.to == l.from))
    }

    /// A representative node for a region (the first one), used when trips
    /// need a concrete spawn point.
    pub fn region_anchor(&self, region: RegionId) -> Result<NodeId> {
        let r = self.region(region)?;
        r.nodes
            .first()
            .copied()
            .ok_or_else(|| RoadnetError::InvalidSpec(format!("region {region} has no nodes")))
    }

    /// True when every node can reach every other node along directed links.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let start = NodeId(0);
        let fwd = self.reachable_from(start, false);
        let bwd = self.reachable_from(start, true);
        fwd.iter().all(|&v| v) && bwd.iter().all(|&v| v)
    }

    /// BFS reachability from `start`, following links backwards when
    /// `reversed` is set.
    fn reachable_from(&self, start: NodeId, reversed: bool) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        if let Some(s) = seen.get_mut(start.index()) {
            *s = true;
            queue.push_back(start);
        }
        while let Some(n) = queue.pop_front() {
            let edges = if reversed {
                self.in_links(n)
            } else {
                self.out_links(n)
            };
            for &lid in edges {
                let Some(l) = self.links.get(lid.index()) else {
                    continue;
                };
                let next = if reversed { l.from } else { l.to };
                if let Some(s) = seen.get_mut(next.index()) {
                    if !*s {
                        *s = true;
                        queue.push_back(next);
                    }
                }
            }
        }
        seen
    }

    /// Mutable access to a region's population (used by synthetic census
    /// generation in `datagen`).
    pub fn set_region_population(&mut self, region: RegionId, population: f64) -> Result<()> {
        let r = self
            .regions
            .get_mut(region.index())
            .ok_or(RoadnetError::UnknownRegion(region))?;
        if population < 0.0 || !population.is_finite() {
            return Err(RoadnetError::InvalidAttribute(format!(
                "population must be finite and non-negative, got {population}"
            )));
        }
        r.population = population;
        Ok(())
    }
}

/// Incremental builder for [`RoadNetwork`].
///
/// ```
/// use roadnet::network::NetworkBuilder;
/// use roadnet::Point;
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(300.0, 0.0));
/// b.add_road(a, c, 1, 13.9).unwrap();
/// let net = b.assign_regions_grid(1, 2).build().unwrap();
/// assert_eq!(net.num_links(), 2);
/// assert_eq!(net.num_roads(), 1);
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    points: Vec<Point>,
    signalized: Vec<bool>,
    links: Vec<Link>,
    region_grid: Option<(usize, usize)>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection at `point`; signalised by default.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = NodeId(self.points.len());
        self.points.push(point);
        self.signalized.push(true);
        id
    }

    /// Marks a node as unsignalised (e.g. a boundary stub).
    pub fn set_signalized(&mut self, node: NodeId, signalized: bool) -> Result<()> {
        let slot = self
            .signalized
            .get_mut(node.index())
            .ok_or(RoadnetError::UnknownNode(node))?;
        *slot = signalized;
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Adds a single directed link; length is the Euclidean node distance.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        lanes: u8,
        speed_mps: f64,
    ) -> Result<LinkId> {
        let pf = *self
            .points
            .get(from.index())
            .ok_or(RoadnetError::UnknownNode(from))?;
        let pt = *self
            .points
            .get(to.index())
            .ok_or(RoadnetError::UnknownNode(to))?;
        if from == to {
            return Err(RoadnetError::InvalidSpec(format!(
                "self-loop link at {from}"
            )));
        }
        if lanes == 0 {
            return Err(RoadnetError::InvalidAttribute("lanes must be >= 1".into()));
        }
        if speed_mps.is_nan() || speed_mps <= 0.0 {
            return Err(RoadnetError::InvalidAttribute(format!(
                "speed limit must be positive, got {speed_mps}"
            )));
        }
        let length = pf.distance(&pt).max(1.0);
        let id = LinkId(self.links.len());
        self.links.push(Link {
            id,
            from,
            to,
            length_m: length,
            lanes,
            speed_limit_mps: speed_mps,
        });
        Ok(id)
    }

    /// Adds a bidirectional road: two opposite links with identical
    /// attributes. Returns `(forward, backward)` link ids.
    pub fn add_road(
        &mut self,
        a: NodeId,
        b: NodeId,
        lanes: u8,
        speed_mps: f64,
    ) -> Result<(LinkId, LinkId)> {
        let f = self.add_link(a, b, lanes, speed_mps)?;
        let r = self.add_link(b, a, lanes, speed_mps)?;
        Ok((f, r))
    }

    /// Clusters nodes into a `rows x cols` spatial grid of regions based on
    /// node coordinates. Empty cells are dropped, so the final region count
    /// may be below `rows * cols`.
    pub fn assign_regions_grid(mut self, rows: usize, cols: usize) -> Self {
        self.region_grid = Some((rows.max(1), cols.max(1)));
        self
    }

    /// Finalises the network, building adjacency and region structure.
    pub fn build(self) -> Result<RoadNetwork> {
        if self.points.is_empty() {
            return Err(RoadnetError::InvalidSpec("network has no nodes".into()));
        }
        let (rows, cols) = self.region_grid.unwrap_or((1, 1));

        // Bounding box for spatial region assignment.
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);

        // Map every node to a provisional grid cell, then compact non-empty
        // cells into dense region ids.
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - min_x) / span_x) * cols as f64).min(cols as f64 - 1.0) as usize;
            let cy = (((p.y - min_y) / span_y) * rows as f64).min(rows as f64 - 1.0) as usize;
            cy * cols + cx
        };
        let mut cell_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); rows * cols];
        for (i, p) in self.points.iter().enumerate() {
            if let Some(cell) = cell_nodes.get_mut(cell_of(p)) {
                cell.push(NodeId(i));
            }
        }
        let mut regions = Vec::new();
        let mut node_region = vec![RegionId(0); self.points.len()];
        for nodes in cell_nodes.into_iter().filter(|c| !c.is_empty()) {
            let rid = RegionId(regions.len());
            for &n in &nodes {
                if let Some(slot) = node_region.get_mut(n.index()) {
                    *slot = rid;
                }
            }
            regions.push(Region {
                id: rid,
                name: format!("region-{}", rid.index()),
                nodes,
                population: 0.0,
            });
        }

        let nodes: Vec<Node> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, &point)| Node {
                id: NodeId(i),
                point,
                region: node_region.get(i).copied().unwrap_or(RegionId(0)),
                signalized: self.signalized.get(i).copied().unwrap_or(false),
            })
            .collect();

        let mut out_links = vec![Vec::new(); nodes.len()];
        let mut in_links = vec![Vec::new(); nodes.len()];
        for l in &self.links {
            if let Some(out) = out_links.get_mut(l.from.index()) {
                out.push(l.id);
            }
            if let Some(inl) = in_links.get_mut(l.to.index()) {
                inl.push(l.id);
            }
        }

        Ok(RoadNetwork {
            nodes,
            links: self.links,
            regions,
            out_links,
            in_links,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(500.0, 0.0));
        b.add_road(a, c, 2, 14.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_counts_nodes_links_roads() {
        let net = two_node_net();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_links(), 2);
        assert_eq!(net.num_roads(), 1);
        assert_eq!(net.num_regions(), 1);
    }

    #[test]
    fn adjacency_matches_links() {
        let net = two_node_net();
        assert_eq!(net.out_links(NodeId(0)).len(), 1);
        assert_eq!(net.in_links(NodeId(0)).len(), 1);
        let out = net.out_links(NodeId(0))[0];
        assert_eq!(net.link(out).unwrap().to, NodeId(1));
    }

    #[test]
    fn reverse_link_finds_twin() {
        let net = two_node_net();
        let fwd = net.out_links(NodeId(0))[0];
        let rev = net.reverse_link(fwd).unwrap();
        assert_eq!(net.link(rev).unwrap().from, NodeId(1));
        assert_eq!(net.reverse_link(rev), Some(fwd));
    }

    #[test]
    fn link_capacity_scales_with_lanes_and_length() {
        let net = two_node_net();
        let l = net.link(LinkId(0)).unwrap();
        // 500 m / 7.5 m = 66 per lane, times 2 lanes.
        assert_eq!(l.storage_capacity(), 132);
        assert!((l.free_flow_time_s() - 500.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        assert!(matches!(
            b.add_link(a, a, 1, 10.0),
            Err(RoadnetError::InvalidSpec(_))
        ));
    }

    #[test]
    fn bad_attributes_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        assert!(b.add_link(a, c, 0, 10.0).is_err());
        assert!(b.add_link(a, c, 1, 0.0).is_err());
        assert!(b.add_link(a, c, 1, -3.0).is_err());
    }

    #[test]
    fn empty_network_rejected() {
        assert!(NetworkBuilder::new().build().is_err());
    }

    #[test]
    fn region_grid_partitions_all_nodes() {
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            for j in 0..4 {
                b.add_node(Point::new(i as f64 * 100.0, j as f64 * 100.0));
            }
        }
        // connect a chain so the builder is happy later if routed
        for i in 0..15usize {
            b.add_road(NodeId(i), NodeId(i + 1), 1, 10.0).unwrap();
        }
        let net = b.assign_regions_grid(2, 2).build().unwrap();
        assert_eq!(net.num_regions(), 4);
        let total: usize = net.regions().iter().map(|r| r.nodes.len()).sum();
        assert_eq!(total, 16);
        // every node's region back-reference is consistent
        for r in net.regions() {
            for &n in &r.nodes {
                assert_eq!(net.node(n).unwrap().region, r.id);
            }
        }
    }

    #[test]
    fn strong_connectivity_detected() {
        let net = two_node_net();
        assert!(net.is_strongly_connected());

        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_link(a, c, 1, 10.0).unwrap(); // one-way only
        let net = b.build().unwrap();
        assert!(!net.is_strongly_connected());
    }

    #[test]
    fn population_validation() {
        let mut net = two_node_net();
        assert!(net.set_region_population(RegionId(0), 1000.0).is_ok());
        assert!(net.set_region_population(RegionId(0), -1.0).is_err());
        assert!(net.set_region_population(RegionId(0), f64::NAN).is_err());
        assert!(net.set_region_population(RegionId(9), 1.0).is_err());
        assert_eq!(net.region(RegionId(0)).unwrap().population, 1000.0);
    }

    #[test]
    fn lookup_errors_name_the_id() {
        let net = two_node_net();
        assert_eq!(
            net.node(NodeId(99)).unwrap_err(),
            RoadnetError::UnknownNode(NodeId(99))
        );
        assert_eq!(
            net.link(LinkId(99)).unwrap_err(),
            RoadnetError::UnknownLink(LinkId(99))
        );
    }

    #[test]
    fn serde_round_trip() {
        let net = two_node_net();
        let json = serde_json::to_string(&net).unwrap();
        let back: RoadNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_links(), net.num_links());
        assert_eq!(back.out_links(NodeId(0)), net.out_links(NodeId(0)));
    }
}
