//! Thread-count policy for the workspace's parallel sections.
//!
//! Every parallel region in the workspace (dataset generation, the
//! estimator panel, large matrix kernels) runs on rayon and inherits the
//! ambient worker count. This module owns how that count is chosen:
//!
//! 1. an explicit [`Parallelism`] scope ([`Parallelism::run`]) wins,
//! 2. otherwise the process-global pool set by [`init_global`]
//!    (`--threads` on the CLI, or the `CITYOD_THREADS` environment
//!    variable) applies,
//! 3. otherwise rayon falls back to the machine parallelism.
//!
//! Thread count never changes *results*: all parallel sections in this
//! workspace are designed to be bit-identical to their serial execution
//! (per-index RNG streams in datagen, row-parallel kernels that preserve
//! per-row operation order in `neural`). Threads only change wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Name of the environment variable consulted for the default thread
/// count when no `--threads` flag is given.
pub const THREADS_ENV: &str = "CITYOD_THREADS";

/// Worker-count ceiling the machine can actually run concurrently.
///
/// Requests above this never help a CPU-bound FP workload — each extra
/// worker just adds spawn and scheduling overhead — so the env/CLI-driven
/// policies ([`Parallelism::from_env`], [`init_global`]) clamp to it.
/// Explicit [`Parallelism::Threads`] scopes are *not* clamped: tests use
/// them to exercise the multi-thread kernel paths on any machine.
pub fn machine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Requested worker count for a parallel section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run parallel sections inline on one thread.
    Serial,
    /// Run on exactly this many worker threads (0 is treated as 1).
    Threads(usize),
    /// Inherit the ambient configuration (global pool, else machine).
    #[default]
    Auto,
}

impl Parallelism {
    /// Reads `CITYOD_THREADS`; unset, empty, or unparsable values mean
    /// [`Parallelism::Auto`], `1` means [`Parallelism::Serial`]. Counts
    /// above [`machine_threads`] are clamped — oversubscribing CPU-bound
    /// kernels only adds overhead, and thread count never changes bits.
    pub fn from_env() -> Self {
        // lint: allow(determinism) — thread-count knob; results are
        // partition-invariant by construction (see datagen tests).
        match std::env::var(THREADS_ENV) {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(0) | Err(_) => Parallelism::Auto,
                Ok(n) => match n.min(machine_threads()) {
                    1 => Parallelism::Serial,
                    m => Parallelism::Threads(m),
                },
            },
            Err(_) => Parallelism::Auto,
        }
    }

    /// The worker count this policy resolves to right now.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => rayon::current_num_threads(),
        }
    }

    /// Runs `op` with this policy's worker count in effect for every
    /// rayon parallel iterator executed inside it. `Auto` runs `op`
    /// without touching the ambient configuration.
    pub fn run<R: Send>(self, op: impl FnOnce() -> R + Send) -> R {
        match self {
            Parallelism::Auto => op(),
            other => {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(other.threads())
                    .build()
                    // lint: allow(panic) — scoped pool build only fails on zero threads; threads() >= 1
                    .expect("scoped thread pool construction cannot fail");
                pool.install(op)
            }
        }
    }
}

/// Worker count parallel sections will use on the current thread.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

static GLOBAL_INIT: AtomicUsize = AtomicUsize::new(0);

/// Configures the process-global worker count: an explicit `requested`
/// value (e.g. from `--threads`) wins, else `CITYOD_THREADS`, else the
/// machine parallelism. Returns the effective count. Safe to call more
/// than once — the first call pins the pool (rayon's global pool cannot
/// be resized) and later calls are no-ops that report the pinned size.
pub fn init_global(requested: Option<usize>) -> usize {
    let wanted = match requested {
        Some(n) if n >= 1 => n.min(machine_threads()),
        _ => match Parallelism::from_env() {
            Parallelism::Auto => {
                return rayon::current_num_threads();
            }
            p => p.threads(),
        },
    };
    if rayon::ThreadPoolBuilder::new()
        .num_threads(wanted)
        .build_global()
        .is_ok()
    {
        GLOBAL_INIT.store(wanted, Ordering::SeqCst);
        wanted
    } else {
        // Already initialised (by us or by an embedding application).
        let prior = GLOBAL_INIT.load(Ordering::SeqCst);
        if prior != 0 {
            prior
        } else {
            rayon::current_num_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resolves_to_one() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(5).threads(), 5);
    }

    #[test]
    fn run_scopes_the_worker_count() {
        assert_eq!(Parallelism::Threads(3).run(current_threads), 3);
        assert_eq!(Parallelism::Serial.run(current_threads), 1);
        // Auto leaves the ambient configuration untouched.
        let ambient = current_threads();
        assert_eq!(Parallelism::Auto.run(current_threads), ambient);
    }

    #[test]
    fn machine_threads_is_positive() {
        assert!(machine_threads() >= 1);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Parallelism::Threads(4).run(|| {
            let inner = Parallelism::Serial.run(current_threads);
            (current_threads(), inner)
        });
        assert_eq!(outer, (4, 1));
    }
}
