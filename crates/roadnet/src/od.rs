//! Origin-destination pairs.
//!
//! The paper's problem statement (§III, Problem 1) is parameterised by `N`
//! chosen OD pairs — not the full `K x (K-1)` product — because "the choice
//! of OD pairs is based on domain knowledge" (§V-D). [`OdSet`] is that
//! ordered collection, mapping the paper's OD index `i` to a concrete
//! `(origin region, destination region)` pair.

use crate::error::{Result, RoadnetError};
use crate::ids::{OdPairId, RegionId};
use crate::network::RoadNetwork;
use serde::{Deserialize, Serialize};

/// A single origin-destination pair between two regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OdPair {
    /// Origin region `o`.
    pub origin: RegionId,
    /// Destination region `d`.
    pub destination: RegionId,
}

impl OdPair {
    /// Creates an OD pair. Origin and destination may not coincide: the
    /// paper defines a trip as movement between two distinct regions.
    pub fn new(origin: RegionId, destination: RegionId) -> Result<Self> {
        if origin == destination {
            return Err(RoadnetError::InvalidSpec(format!(
                "OD pair must connect distinct regions, got {origin} -> {destination}"
            )));
        }
        Ok(Self {
            origin,
            destination,
        })
    }

    /// The reverse direction of this pair.
    pub fn reversed(self) -> Self {
        Self {
            origin: self.destination,
            destination: self.origin,
        }
    }
}

/// An ordered set of OD pairs; the index of a pair is the paper's OD index
/// `i` and doubles as the row index of [`crate::tensor::TodTensor`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OdSet {
    pairs: Vec<OdPair>,
}

impl OdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from pairs, rejecting duplicates.
    pub fn from_pairs(pairs: Vec<OdPair>) -> Result<Self> {
        let mut set = Self::new();
        for p in pairs {
            set.push(p)?;
        }
        Ok(set)
    }

    /// The full bipartite product of all distinct region pairs of `net`.
    pub fn all_pairs(net: &RoadNetwork) -> Self {
        let k = net.num_regions();
        let mut pairs = Vec::with_capacity(k * k.saturating_sub(1));
        for o in 0..k {
            for d in 0..k {
                if o != d {
                    pairs.push(OdPair {
                        origin: RegionId(o),
                        destination: RegionId(d),
                    });
                }
            }
        }
        Self { pairs }
    }

    /// Appends a pair, rejecting duplicates.
    pub fn push(&mut self, pair: OdPair) -> Result<OdPairId> {
        if self.pairs.contains(&pair) {
            return Err(RoadnetError::InvalidSpec(format!(
                "duplicate OD pair {} -> {}",
                pair.origin, pair.destination
            )));
        }
        let id = OdPairId(self.pairs.len());
        self.pairs.push(pair);
        Ok(id)
    }

    /// Number of pairs (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the set holds no pairs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// All pairs in index order.
    #[inline]
    pub fn pairs(&self) -> &[OdPair] {
        &self.pairs
    }

    /// Looks up a pair by OD index.
    pub fn pair(&self, id: OdPairId) -> Result<OdPair> {
        self.pairs
            .get(id.index())
            .copied()
            .ok_or(RoadnetError::UnknownOdPair(id))
    }

    /// Finds the index of a pair, if present.
    pub fn index_of(&self, pair: OdPair) -> Option<OdPairId> {
        self.pairs.iter().position(|&p| p == pair).map(OdPairId)
    }

    /// Iterates `(id, pair)`.
    pub fn iter(&self) -> impl Iterator<Item = (OdPairId, OdPair)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, &p)| (OdPairId(i), p))
    }

    /// Validates that every referenced region exists in `net`.
    pub fn validate(&self, net: &RoadNetwork) -> Result<()> {
        for &p in &self.pairs {
            net.region(p.origin)?;
            net.region(p.destination)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::Point;

    fn three_region_net() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1000.0, 0.0));
        let n2 = b.add_node(Point::new(2000.0, 0.0));
        b.add_road(n0, n1, 1, 10.0).unwrap();
        b.add_road(n1, n2, 1, 10.0).unwrap();
        b.assign_regions_grid(1, 3).build().unwrap()
    }

    #[test]
    fn od_pair_rejects_same_region() {
        assert!(OdPair::new(RegionId(1), RegionId(1)).is_err());
        assert!(OdPair::new(RegionId(0), RegionId(1)).is_ok());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let p = OdPair::new(RegionId(0), RegionId(2)).unwrap();
        let r = p.reversed();
        assert_eq!(r.origin, RegionId(2));
        assert_eq!(r.destination, RegionId(0));
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn all_pairs_has_k_times_k_minus_one() {
        let net = three_region_net();
        let set = OdSet::all_pairs(&net);
        assert_eq!(set.len(), 3 * 2);
        assert!(set.validate(&net).is_ok());
        // no self pairs
        assert!(set.pairs().iter().all(|p| p.origin != p.destination));
    }

    #[test]
    fn duplicates_rejected() {
        let p = OdPair::new(RegionId(0), RegionId(1)).unwrap();
        let mut set = OdSet::new();
        set.push(p).unwrap();
        assert!(set.push(p).is_err());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn index_of_round_trips() {
        let net = three_region_net();
        let set = OdSet::all_pairs(&net);
        for (id, pair) in set.iter() {
            assert_eq!(set.index_of(pair), Some(id));
            assert_eq!(set.pair(id).unwrap(), pair);
        }
        assert!(set.pair(OdPairId(set.len())).is_err());
    }

    #[test]
    fn validate_rejects_unknown_regions() {
        let net = three_region_net();
        let set = OdSet::from_pairs(vec![OdPair::new(RegionId(0), RegionId(9)).unwrap()]).unwrap();
        assert!(set.validate(&net).is_err());
    }
}
