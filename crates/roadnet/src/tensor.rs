//! Traffic tensors.
//!
//! The paper manipulates two tensor shapes:
//!
//! * the 2-D temporal origin-destination tensor `G` with `G[i, t]` = trip
//!   count of OD pair `i` departing during time interval `t`
//!   ([`TodTensor`], shape `N_od x T`);
//! * per-link observation tensors holding volume `q_{j,t}` or average speed
//!   `v_{j,t}` ([`LinkTensor`], shape `M x T`).
//!
//! Both are dense row-major `f64` matrices with strong shape checking; rows
//! are indexed by the corresponding typed id.

use crate::error::{Result, RoadnetError};
use crate::ids::{LinkId, OdPairId};
use serde::{Deserialize, Serialize};

macro_rules! series_tensor {
    ($(#[$doc:meta])* $name:ident, $row_id:ident, $rows_doc:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        pub struct $name {
            rows: usize,
            t: usize,
            data: Vec<f64>,
        }

        impl $name {
            /// Creates a zero-filled tensor with the given shape.
            pub fn zeros(rows: usize, t: usize) -> Self {
                Self { rows, t, data: vec![0.0; rows * t] }
            }

            /// Creates a tensor filled with `value`.
            pub fn filled(rows: usize, t: usize, value: f64) -> Self {
                Self { rows, t, data: vec![value; rows * t] }
            }

            /// Wraps row-major data, checking the shape.
            pub fn from_data(rows: usize, t: usize, data: Vec<f64>) -> Result<Self> {
                if data.len() != rows * t {
                    return Err(RoadnetError::ShapeMismatch {
                        expected: format!("{rows} x {t} = {}", rows * t),
                        actual: format!("{} values", data.len()),
                    });
                }
                Ok(Self { rows, t, data })
            }

            #[doc = $rows_doc]
            #[inline]
            pub fn rows(&self) -> usize {
                self.rows
            }

            /// Number of time intervals `T`.
            #[inline]
            pub fn num_intervals(&self) -> usize {
                self.t
            }

            /// Value at `(row, t)`; panics on out-of-range indices.
            #[inline]
            pub fn get(&self, row: $row_id, t: usize) -> f64 {
                debug_assert!(row.index() < self.rows && t < self.t);
                // lint: allow(panic) — hot-path accessor with a documented
                // out-of-range panic; callers index by typed id.
                self.data[row.index() * self.t + t]
            }

            /// Sets the value at `(row, t)`; panics on out-of-range indices.
            #[inline]
            pub fn set(&mut self, row: $row_id, t: usize, value: f64) {
                debug_assert!(row.index() < self.rows && t < self.t);
                // lint: allow(panic) — hot-path accessor with a documented
                // out-of-range panic; callers index by typed id.
                self.data[row.index() * self.t + t] = value;
            }

            /// Adds `delta` to the value at `(row, t)`.
            #[inline]
            pub fn add_at(&mut self, row: $row_id, t: usize, delta: f64) {
                debug_assert!(row.index() < self.rows && t < self.t);
                // lint: allow(panic) — hot-path accessor with a documented
                // out-of-range panic; callers index by typed id.
                self.data[row.index() * self.t + t] += delta;
            }

            /// The time series of one row.
            #[inline]
            pub fn row(&self, row: $row_id) -> &[f64] {
                let start = row.index() * self.t;
                // lint: allow(panic) — hot-path accessor with a documented
                // out-of-range panic; callers index by typed id.
                &self.data[start..start + self.t]
            }

            /// Mutable access to one row's time series.
            #[inline]
            pub fn row_mut(&mut self, row: $row_id) -> &mut [f64] {
                let start = row.index() * self.t;
                // lint: allow(panic) — hot-path accessor with a documented
                // out-of-range panic; callers index by typed id.
                &mut self.data[start..start + self.t]
            }

            /// Flat row-major view of all values.
            #[inline]
            pub fn as_slice(&self) -> &[f64] {
                &self.data
            }

            /// Flat mutable row-major view of all values.
            #[inline]
            pub fn as_mut_slice(&mut self) -> &mut [f64] {
                &mut self.data
            }

            /// Iterates `(row_id, time, value)` over every cell.
            pub fn iter_cells(&self) -> impl Iterator<Item = ($row_id, usize, f64)> + '_ {
                self.data.iter().enumerate().map(move |(k, &v)| {
                    ($row_id(k / self.t), k % self.t, v)
                })
            }

            /// Sum over the whole tensor.
            pub fn total(&self) -> f64 {
                self.data.iter().sum()
            }

            /// Sum of one row across all intervals (the paper's
            /// `sum_t g_{i,t}`, constrained by LEHD census data in the
            /// auxiliary loss of §IV-E).
            pub fn row_total(&self, row: $row_id) -> f64 {
                self.row(row).iter().sum()
            }

            /// Per-interval sums across all rows (column sums).
            pub fn interval_totals(&self) -> Vec<f64> {
                let mut out = vec![0.0; self.t];
                for chunk in self.data.chunks_exact(self.t) {
                    for (o, &v) in out.iter_mut().zip(chunk) {
                        *o += v;
                    }
                }
                out
            }

            /// Applies `f` to every value in place.
            pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
                for v in &mut self.data {
                    *v = f(*v);
                }
            }

            /// Multiplies every value by `factor` (the paper's taxi-to-fleet
            /// scaling of §V-B uses this).
            pub fn scale(&mut self, factor: f64) {
                self.map_inplace(|v| v * factor);
            }

            /// Clamps every value into `[lo, hi]`.
            pub fn clamp(&mut self, lo: f64, hi: f64) {
                self.map_inplace(|v| v.clamp(lo, hi));
            }

            /// Element-wise sum with a same-shaped tensor.
            pub fn add(&mut self, other: &Self) -> Result<()> {
                self.check_same_shape(other)?;
                for (a, b) in self.data.iter_mut().zip(&other.data) {
                    *a += b;
                }
                Ok(())
            }

            /// The paper's RMSE metric (§V-G): mean over intervals of the
            /// per-interval root-mean-square error across rows.
            pub fn rmse(&self, other: &Self) -> Result<f64> {
                self.check_same_shape(other)?;
                if self.t == 0 || self.rows == 0 {
                    return Ok(0.0);
                }
                let mut acc = 0.0;
                for t in 0..self.t {
                    let mut sq = 0.0;
                    for (a, b) in self
                        .data
                        .iter()
                        .skip(t)
                        .step_by(self.t)
                        .zip(other.data.iter().skip(t).step_by(self.t))
                    {
                        let d = a - b;
                        sq += d * d;
                    }
                    acc += (sq / self.rows as f64).sqrt();
                }
                Ok(acc / self.t as f64)
            }

            /// True when every value is finite.
            pub fn is_finite(&self) -> bool {
                self.data.iter().all(|v| v.is_finite())
            }

            /// True when every value is >= 0.
            pub fn is_non_negative(&self) -> bool {
                self.data.iter().all(|&v| v >= 0.0)
            }

            fn check_same_shape(&self, other: &Self) -> Result<()> {
                if self.rows != other.rows || self.t != other.t {
                    return Err(RoadnetError::ShapeMismatch {
                        expected: format!("{} x {}", self.rows, self.t),
                        actual: format!("{} x {}", other.rows, other.t),
                    });
                }
                Ok(())
            }
        }
    };
}

series_tensor!(
    /// The temporal origin-destination tensor `G` (`N_od x T`): trip counts
    /// per OD pair and departure interval.
    TodTensor,
    OdPairId,
    "Number of OD pairs `N`."
);

series_tensor!(
    /// A per-link observation tensor (`M x T`): volume `q` or speed `v`
    /// per link and time interval.
    LinkTensor,
    LinkId,
    "Number of links `M`."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_total() {
        let t = TodTensor::zeros(3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.num_intervals(), 4);
        assert_eq!(t.total(), 0.0);
        assert!(t.is_finite());
        assert!(t.is_non_negative());
    }

    #[test]
    fn from_data_checks_shape() {
        assert!(TodTensor::from_data(2, 3, vec![0.0; 6]).is_ok());
        assert!(TodTensor::from_data(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn get_set_row_roundtrip() {
        let mut t = TodTensor::zeros(2, 3);
        t.set(OdPairId(1), 2, 5.5);
        t.add_at(OdPairId(1), 2, 0.5);
        assert_eq!(t.get(OdPairId(1), 2), 6.0);
        assert_eq!(t.row(OdPairId(1)), &[0.0, 0.0, 6.0]);
        assert_eq!(t.row_total(OdPairId(1)), 6.0);
        t.row_mut(OdPairId(0)).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(t.row_total(OdPairId(0)), 6.0);
        assert_eq!(t.total(), 12.0);
    }

    #[test]
    fn interval_totals_are_column_sums() {
        let t = TodTensor::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.interval_totals(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn scale_and_clamp() {
        let mut t = LinkTensor::from_data(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        t.scale(2.0);
        assert_eq!(t.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        t.clamp(3.0, 7.0);
        assert_eq!(t.as_slice(), &[3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn add_requires_same_shape() {
        let mut a = TodTensor::zeros(2, 2);
        let b = TodTensor::filled(2, 2, 1.5);
        a.add(&b).unwrap();
        assert_eq!(a.total(), 6.0);
        let c = TodTensor::zeros(2, 3);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn rmse_zero_on_identical() {
        let a = TodTensor::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.rmse(&a).unwrap(), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // rows=2, t=2; diffs: t0 -> (1, 2), t1 -> (0, 2)
        let a = TodTensor::from_data(2, 2, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let b = TodTensor::from_data(2, 2, vec![0.0, 0.0, 2.0, 2.0]).unwrap();
        // t0: sqrt((1 + 4)/2); t1: sqrt((0 + 4)/2); mean of the two
        let expected = ((5.0f64 / 2.0).sqrt() + 2.0f64.sqrt()) / 2.0;
        assert!((a.rmse(&b).unwrap() - expected).abs() < 1e-12);
        // symmetric
        assert!((a.rmse(&b).unwrap() - b.rmse(&a).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn rmse_shape_mismatch_is_error() {
        let a = TodTensor::zeros(2, 2);
        let b = TodTensor::zeros(2, 3);
        assert!(a.rmse(&b).is_err());
    }

    #[test]
    fn iter_cells_covers_everything() {
        let t = LinkTensor::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let cells: Vec<_> = t.iter_cells().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], (LinkId(0), 0, 1.0));
        assert_eq!(cells[3], (LinkId(1), 1, 4.0));
    }

    #[test]
    fn finiteness_checks() {
        let mut t = TodTensor::zeros(1, 2);
        t.set(OdPairId(0), 0, f64::NAN);
        assert!(!t.is_finite());
        let mut t = TodTensor::zeros(1, 2);
        t.set(OdPairId(0), 1, -0.5);
        assert!(!t.is_non_negative());
    }

    #[test]
    fn serde_round_trip() {
        let t = TodTensor::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: TodTensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
