//! Planar geometry helpers.
//!
//! Networks live in a local planar coordinate system measured in metres;
//! we never need geodesy because every network in the reproduction is
//! synthetic (see DESIGN.md, substitution table).

use serde::{Deserialize, Serialize};

/// A point in the local planar frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from planar coordinates in metres.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance; cheaper when only comparing.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// Centroid of a non-empty set of points. Returns `None` for an empty slice.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    Some(Point::new(sx / n, sy / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(10.0, -1.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_bisects() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        let m = a.midpoint(&b);
        assert_eq!(m, Point::new(1.0, 3.0));
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = centroid(&pts).unwrap();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }
}
