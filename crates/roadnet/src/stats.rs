//! Network statistics — the descriptive numbers a user checks before
//! trusting a generated network (degree distribution, diameter, total
//! lane-kilometres).

use crate::ids::NodeId;
use crate::network::RoadNetwork;
use crate::routing::shortest_path;

/// Summary statistics of a road network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Number of intersections.
    pub nodes: usize,
    /// Number of directed links.
    pub links: usize,
    /// Number of physical roads.
    pub roads: usize,
    /// Number of regions.
    pub regions: usize,
    /// Total directed link length, kilometres.
    pub total_length_km: f64,
    /// Total lane-kilometres.
    pub lane_km: f64,
    /// Minimum out-degree over nodes.
    pub min_out_degree: usize,
    /// Maximum out-degree over nodes.
    pub max_out_degree: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Network diameter in metres (longest shortest path over a node
    /// sample; exact when `nodes <= sample`).
    pub diameter_m: f64,
}

/// Maximum number of source nodes the diameter estimate runs Dijkstra
/// from; beyond this the estimate uses an evenly spread sample.
pub const DIAMETER_SAMPLE: usize = 32;

/// Computes summary statistics for `net`.
pub fn network_stats(net: &RoadNetwork) -> NetworkStats {
    let nodes = net.num_nodes();
    let links = net.num_links();
    let total_length_km = net.links().iter().map(|l| l.length_m).sum::<f64>() / 1000.0;
    let lane_km = net
        .links()
        .iter()
        .map(|l| l.length_m * l.lanes as f64)
        .sum::<f64>()
        / 1000.0;
    let degrees: Vec<usize> = (0..nodes).map(|i| net.out_links(NodeId(i)).len()).collect();
    let min_out_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_out_degree = degrees.iter().copied().max().unwrap_or(0);
    let mean_out_degree = if nodes == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / nodes as f64
    };

    // Diameter: longest shortest path from a spread of source nodes.
    let stride = (nodes / DIAMETER_SAMPLE).max(1);
    let mut diameter_m = 0.0f64;
    for src in (0..nodes).step_by(stride) {
        for dst in 0..nodes {
            if src == dst {
                continue;
            }
            if let Ok(p) = shortest_path(net, NodeId(src), NodeId(dst)) {
                diameter_m = diameter_m.max(p.cost);
            }
        }
    }

    NetworkStats {
        nodes,
        links,
        roads: net.num_roads(),
        regions: net.num_regions(),
        total_length_km,
        lane_km,
        min_out_degree,
        max_out_degree,
        mean_out_degree,
        diameter_m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GridSpec;

    #[test]
    fn grid_stats_are_exact() {
        let net = GridSpec::new(3, 3).build(0);
        let s = network_stats(&net);
        assert_eq!(s.nodes, 9);
        assert_eq!(s.links, 24);
        assert_eq!(s.roads, 12);
        // corner nodes have out-degree 2, centre 4
        assert_eq!(s.min_out_degree, 2);
        assert_eq!(s.max_out_degree, 4);
        assert!((s.mean_out_degree - 24.0 / 9.0).abs() < 1e-12);
        // 12 roads x 2 directions x ~300 m
        assert!((s.total_length_km - 7.2).abs() < 0.05);
        assert!((s.lane_km - s.total_length_km).abs() < 1e-9, "1 lane each");
        // corner-to-corner: 4 blocks x 300 m
        assert!((s.diameter_m - 1200.0).abs() < 5.0);
    }

    #[test]
    fn lane_km_counts_lanes() {
        let net = GridSpec::new(3, 3).with_arterials(1).build(0);
        let s = network_stats(&net);
        assert!(s.lane_km > s.total_length_km, "arterials have 2 lanes");
    }

    #[test]
    fn stats_on_presets_are_consistent_with_table_iii() {
        let city = crate::presets::porto();
        let s = network_stats(&city.network);
        assert_eq!(s.nodes, 70);
        assert_eq!(s.roads, 100);
        assert!(s.diameter_m > 0.0);
        assert!(s.mean_out_degree >= 2.0, "bidirectional roads");
    }
}
