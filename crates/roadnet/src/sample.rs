//! The matched training triple shared across the workspace.
//!
//! The paper's data-preprocess pipeline (§V-D, Fig 7) produces corpora of
//! `(TOD, volume, speed)` triples: a generated TOD tensor together with
//! the link volumes and speeds the simulator produced for it. Both the
//! data-generation side (`datagen`) and the estimator side (`ovs-core`)
//! consume exactly this shape, so the type lives here in the substrate
//! crate and is re-exported by both (as `datagen::TrainingSample` and
//! `ovs_core::estimator::TrainTriple`).

use crate::tensor::{LinkTensor, TodTensor};

/// One matched `(TOD, volume, speed)` training triple.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTriple {
    /// Generated TOD tensor (`N x T`).
    pub tod: TodTensor,
    /// Simulated link volumes (`M x T`).
    pub volume: LinkTensor,
    /// Simulated link speeds (`M x T`).
    pub speed: LinkTensor,
}
