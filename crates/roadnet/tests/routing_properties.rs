//! Property-based tests for the routing substrate: Dijkstra against a
//! brute-force enumeration on random small networks, and structural
//! invariants of Yen's algorithm.

use proptest::prelude::*;
use roadnet::generators::IrregularSpec;
use roadnet::routing::{dijkstra, k_shortest_paths, shortest_path};
use roadnet::{NodeId, RoadNetwork};

/// All simple paths from `from` to `to` by DFS (small graphs only).
fn brute_force_shortest(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<f64> {
    fn dfs(
        net: &RoadNetwork,
        cur: NodeId,
        to: NodeId,
        visited: &mut Vec<bool>,
        cost: f64,
        best: &mut Option<f64>,
    ) {
        if cur == to {
            *best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            return;
        }
        if let Some(b) = *best {
            if cost >= b {
                return; // prune
            }
        }
        visited[cur.index()] = true;
        for &lid in net.out_links(cur) {
            let l = &net.links()[lid.index()];
            if !visited[l.to.index()] {
                dfs(net, l.to, to, visited, cost + l.length_m, best);
            }
        }
        visited[cur.index()] = false;
    }
    let mut best = None;
    let mut visited = vec![false; net.num_nodes()];
    dfs(net, from, to, &mut visited, 0.0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dijkstra's cost equals the brute-force optimum on random networks.
    #[test]
    fn dijkstra_is_optimal(seed in 0u64..500, nodes in 4usize..9) {
        let roads = nodes + 2;
        let net = IrregularSpec::new(nodes, roads).build(seed).unwrap();
        let from = NodeId(0);
        let to = NodeId(nodes - 1);
        let d = shortest_path(&net, from, to).unwrap();
        let brute = brute_force_shortest(&net, from, to).unwrap();
        prop_assert!((d.cost - brute).abs() < 1e-9, "dijkstra {} vs brute {}", d.cost, brute);
        prop_assert!(d.is_connected(&net));
        prop_assert!(d.is_simple(&net));
    }

    /// Yen's paths are sorted, unique, simple, connected, and the first
    /// one matches Dijkstra.
    #[test]
    fn yen_structural_invariants(seed in 0u64..500, nodes in 5usize..9, k in 1usize..5) {
        let roads = nodes + 3;
        let net = IrregularSpec::new(nodes, roads).build(seed).unwrap();
        let from = NodeId(0);
        let to = NodeId(nodes - 1);
        let cost_fn = |l: &roadnet::Link| l.length_m;
        let paths = k_shortest_paths(&net, from, to, k, &cost_fn).unwrap();
        prop_assert!(!paths.is_empty() && paths.len() <= k);
        let d = dijkstra(&net, from, to, &cost_fn).unwrap();
        prop_assert!((paths[0].cost - d.cost).abs() < 1e-9);
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
            prop_assert!(w[0].links != w[1].links);
        }
        for p in &paths {
            prop_assert!(p.is_connected(&net));
            prop_assert!(p.is_simple(&net));
            // reported cost matches the link costs
            let actual: f64 = p.links.iter().map(|&l| net.links()[l.index()].length_m).sum();
            prop_assert!((p.cost - actual).abs() < 1e-9);
        }
    }

    /// Generated irregular networks always meet their spec.
    #[test]
    fn irregular_generator_meets_spec(seed in 0u64..300, nodes in 4usize..20) {
        let roads = (nodes + seed as usize % 5).min(nodes * (nodes - 1) / 2);
        let net = IrregularSpec::new(nodes, roads).build(seed).unwrap();
        prop_assert_eq!(net.num_nodes(), nodes);
        prop_assert_eq!(net.num_roads(), roads);
        prop_assert!(net.is_strongly_connected());
        // link lengths positive, attributes sane
        for l in net.links() {
            prop_assert!(l.length_m > 0.0);
            prop_assert!(l.lanes >= 1);
            prop_assert!(l.speed_limit_mps > 0.0);
        }
    }
}
