//! The contract of the parallel data-generation layer: for one
//! `DatasetSpec`, the assembled dataset is a pure function of the spec —
//! bit-identical no matter how many worker threads build it. Every
//! training sample draws from its own RNG stream derived from the sample
//! index, so scheduling order cannot leak into the output.

use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use roadnet::Parallelism;

fn spec() -> DatasetSpec {
    DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 7, // not a multiple of the worker count on purpose
        demand_scale: 0.05,
        seed: 42,
    }
}

fn assert_datasets_identical(a: &Dataset, b: &Dataset) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.groundtruth_tod, b.groundtruth_tod);
    assert_eq!(a.groundtruth_volume, b.groundtruth_volume);
    assert_eq!(a.observed_speed, b.observed_speed);
    assert_eq!(a.train.len(), b.train.len());
    for (k, (sa, sb)) in a.train.iter().zip(&b.train).enumerate() {
        assert_eq!(sa.tod, sb.tod, "sample {k}: tod differs");
        assert_eq!(sa.volume, sb.volume, "sample {k}: volume differs");
        assert_eq!(sa.speed, sb.speed, "sample {k}: speed differs");
    }
    assert_eq!(a.census.as_slice(), b.census.as_slice());
    assert_eq!(a.cameras.links, b.cameras.links);
    assert_eq!(a.cameras.volumes, b.cameras.volumes);
}

#[test]
fn four_threads_bit_identical_to_serial() {
    let spec = spec();
    let serial = Parallelism::Serial
        .run(|| Dataset::synthetic(TodPattern::Poisson, &spec))
        .unwrap();
    let parallel = Parallelism::Threads(4)
        .run(|| Dataset::synthetic(TodPattern::Poisson, &spec))
        .unwrap();
    assert_datasets_identical(&serial, &parallel);
}

#[test]
fn thread_counts_two_and_three_agree_on_city_data() {
    let spec = spec();
    let two = Parallelism::Threads(2)
        .run(|| Dataset::city(roadnet::presets::state_college(), &spec))
        .unwrap();
    let three = Parallelism::Threads(3)
        .run(|| Dataset::city(roadnet::presets::state_college(), &spec))
        .unwrap();
    assert_datasets_identical(&two, &three);
}

#[test]
fn growing_the_corpus_is_a_prefix_extension() {
    // Per-index streams mean sample k does not depend on how many samples
    // exist: a larger corpus starts with the smaller corpus verbatim.
    let small = spec();
    let large = DatasetSpec {
        train_samples: 10,
        ..small.clone()
    };
    let a = Dataset::synthetic(TodPattern::Gaussian, &small).unwrap();
    let b = Dataset::synthetic(TodPattern::Gaussian, &large).unwrap();
    for (k, (sa, sb)) in a.train.iter().zip(&b.train).enumerate() {
        assert_eq!(sa.tod, sb.tod, "sample {k} changed when the corpus grew");
    }
    // Auxiliary data draws from reserved streams, so it is also unchanged.
    assert_eq!(a.census.as_slice(), b.census.as_slice());
    assert_eq!(a.cameras.volumes, b.cameras.volumes);
}
