//! Case-study demand scripts (§V-K, Figures 12-13, Table X).
//!
//! The paper's case studies feed *real* Gaode/Google speed data into OVS
//! and check the recovered TOD against known human rhythms. We have no map
//! feed (DESIGN.md substitution table), so we encode those rhythms as
//! ground-truth demand, simulate the speeds, and let the estimators
//! recover the TOD from speed alone. The check stays the same: does the
//! recovered TOD show the documented peaks?
//!
//! * **Case 1 — Hangzhou Sunday** (Fig 12): trips residential A ->
//!   commercial B peak around 10:00 and 18:00 (shopping); B -> A peaks
//!   20:00-01:00 (late return).
//! * **Case 2 — State College football** (Fig 13): a Saturday game at
//!   noon; inflows to the stadium peak around 09:00; the two origins near
//!   highway exits (O1, O3) dwarf the local residential origin (O2).

use neural::rng::Rng64;
use roadnet::{OdPair, OdPairId, OdSet, RegionId, RoadNetwork, TodTensor};

use crate::city::{assign_roles, RegionRole};

/// A Gaussian bump centred at `center` (hours) with width `sigma`.
fn bump(hour: f64, center: f64, sigma: f64) -> f64 {
    let d = (hour - center) / sigma;
    (-0.5 * d * d).exp()
}

/// Sunday A->B (residential to commercial) hourly intensity: two shopping
/// peaks (10:00, 18:00) over a small base. Exposed for tests and plots.
pub fn sunday_a_to_b(hour: f64) -> f64 {
    0.15 + 1.0 * bump(hour, 10.0, 1.6) + 0.9 * bump(hour, 18.0, 1.6)
}

/// Sunday B->A (commercial to residential) hourly intensity: one broad
/// late-evening peak from 20:00 into the night.
pub fn sunday_b_to_a(hour: f64) -> f64 {
    // Peak centred at 22:00 with mass through 01:00 (wraps past midnight).
    0.15 + 1.1 * bump(hour, 22.0, 2.2) + 1.1 * bump(hour + 24.0, 22.0, 2.2)
}

/// Output of the Hangzhou Sunday script.
#[derive(Debug, Clone)]
pub struct SundayCase {
    /// Full ground-truth TOD tensor over `ods`.
    pub tod: TodTensor,
    /// Index of the A->B pair (residential -> commercial).
    pub a_to_b: OdPairId,
    /// Index of the B->A pair.
    pub b_to_a: OdPairId,
    /// Region A (residential).
    pub region_a: RegionId,
    /// Region B (commercial).
    pub region_b: RegionId,
}

/// Builds the Sunday demand over a full day discretised into `t`
/// intervals. `peak_trips` scales the A<->B peak; other ODs carry light
/// background traffic.
pub fn hangzhou_sunday(
    net: &RoadNetwork,
    ods: &OdSet,
    t: usize,
    peak_trips: f64,
    seed: u64,
) -> SundayCase {
    let roles = assign_roles(net);
    let region_a = RegionId(
        roles
            .iter()
            .position(|&r| r == RegionRole::Residential)
            .expect("assign_roles always yields a residential region"),
    );
    let region_b = RegionId(
        roles
            .iter()
            .position(|&r| r == RegionRole::Commercial)
            .expect("assign_roles always yields a commercial region"),
    );
    let a_to_b = ods
        .index_of(OdPair::new(region_a, region_b).expect("distinct roles"))
        .expect("all-pairs OD set contains A->B");
    let b_to_a = ods
        .index_of(OdPair::new(region_b, region_a).expect("distinct roles"))
        .expect("all-pairs OD set contains B->A");

    let mut rng = Rng64::new(seed);
    let mut tod = TodTensor::zeros(ods.len(), t);
    for (id, _) in ods.iter() {
        for ti in 0..t {
            let hour = 24.0 * (ti as f64 + 0.5) / t as f64;
            let value = if id == a_to_b {
                peak_trips * sunday_a_to_b(hour)
            } else if id == b_to_a {
                peak_trips * sunday_b_to_a(hour)
            } else {
                // Light background so the network is not empty.
                0.12 * peak_trips * (0.5 + 0.5 * rng.uniform())
            };
            tod.set(id, ti, value.max(0.0));
        }
    }
    SundayCase {
        tod,
        a_to_b,
        b_to_a,
        region_a,
        region_b,
    }
}

/// Hourly intensity of game-day inflow: arrivals cluster ~2 h before the
/// noon kickoff (§V-K: "most people go to the stadium at 9 am ...
/// approximately 2 hours before the game").
pub fn football_inflow(hour: f64) -> f64 {
    0.05 + bump(hour, 9.0, 1.1)
}

/// Output of the football-game script.
#[derive(Debug, Clone)]
pub struct FootballCase {
    /// Full ground-truth TOD tensor over `ods`.
    pub tod: TodTensor,
    /// The three stadium-bound ODs `(O1, O2, O3)`; O1/O3 are the
    /// highway-adjacent origins, O2 the local residential one.
    pub inflows: [OdPairId; 3],
    /// Stadium region.
    pub stadium: RegionId,
}

/// Builds Saturday-morning football demand over `t` intervals spanning
/// 06:00-12:00. Requires a network with at least 4 regions.
pub fn football_game(
    net: &RoadNetwork,
    ods: &OdSet,
    t: usize,
    peak_trips: f64,
    seed: u64,
) -> FootballCase {
    assert!(
        net.num_regions() >= 4,
        "football case needs >= 4 regions, got {}",
        net.num_regions()
    );
    // Stadium: the last region; origins O1..O3: the first three others.
    let stadium = RegionId(net.num_regions() - 1);
    let origins = [RegionId(0), RegionId(1), RegionId(2)];
    let inflows = origins.map(|o| {
        ods.index_of(OdPair::new(o, stadium).expect("distinct"))
            .expect("all-pairs OD set contains origin -> stadium")
    });
    // O1 and O3 sit near highway exits: out-of-town fans funnel through
    // them, so their magnitude dwarfs the local O2.
    let magnitudes = [1.0, 0.25, 0.9];

    let mut rng = Rng64::new(seed);
    let mut tod = TodTensor::zeros(ods.len(), t);
    for (id, _) in ods.iter() {
        for ti in 0..t {
            // horizon covers 06:00 - 12:00
            let hour = 6.0 + 6.0 * (ti as f64 + 0.5) / t as f64;
            let value = if let Some(k) = inflows.iter().position(|&f| f == id) {
                peak_trips * magnitudes[k] * football_inflow(hour)
            } else {
                0.08 * peak_trips * (0.5 + 0.5 * rng.uniform())
            };
            tod.set(id, ti, value.max(0.0));
        }
    }
    FootballCase {
        tod,
        inflows,
        stadium,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::presets;

    #[test]
    fn sunday_profiles_peak_where_documented() {
        // A->B peaks near 10 and 18
        assert!(sunday_a_to_b(10.0) > sunday_a_to_b(7.0));
        assert!(sunday_a_to_b(18.0) > sunday_a_to_b(14.5));
        assert!(sunday_a_to_b(10.0) > sunday_a_to_b(2.0));
        // B->A peaks late evening; must exceed its morning values
        assert!(sunday_b_to_a(22.0) > sunday_b_to_a(10.0));
        assert!(
            sunday_b_to_a(0.5) > sunday_b_to_a(10.0),
            "wraps past midnight"
        );
    }

    #[test]
    fn sunday_case_builds_on_hangzhou() {
        let preset = presets::hangzhou();
        let ods = OdSet::all_pairs(&preset.network);
        let case = hangzhou_sunday(&preset.network, &ods, 24, 20.0, 0);
        assert_eq!(case.tod.rows(), ods.len());
        assert_ne!(case.a_to_b, case.b_to_a);
        // reverse pair relation holds
        let ab = ods.pair(case.a_to_b).unwrap();
        let ba = ods.pair(case.b_to_a).unwrap();
        assert_eq!(ab.reversed(), ba);
        // A->B rows show the 10am peak: interval 10 > interval 3
        let row = case.tod.row(case.a_to_b);
        assert!(row[10] > row[3]);
        // B->A shows the late peak: interval 22 > interval 10
        let row = case.tod.row(case.b_to_a);
        assert!(row[22] > row[10]);
    }

    #[test]
    fn football_inflow_peaks_two_hours_before_noon() {
        assert!(football_inflow(9.0) > football_inflow(6.5));
        assert!(football_inflow(9.0) > football_inflow(11.5));
    }

    #[test]
    fn football_case_magnitudes() {
        let preset = presets::state_college();
        let ods = OdSet::all_pairs(&preset.network);
        let case = football_game(&preset.network, &ods, 12, 30.0, 0);
        let totals: Vec<f64> = case
            .inflows
            .iter()
            .map(|&i| case.tod.row_total(i))
            .collect();
        // O1 and O3 (highway) dwarf O2 (local)
        assert!(totals[0] > 2.0 * totals[1], "{totals:?}");
        assert!(totals[2] > 2.0 * totals[1], "{totals:?}");
        // peak interval is in the middle (9 am within 6-12 horizon)
        let row = case.tod.row(case.inflows[0]);
        let peak_idx = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((4..=8).contains(&peak_idx), "peak at interval {peak_idx}");
    }

    #[test]
    fn cases_are_deterministic() {
        let preset = presets::state_college();
        let ods = OdSet::all_pairs(&preset.network);
        let a = football_game(&preset.network, &ods, 8, 10.0, 5);
        let b = football_game(&preset.network, &ods, 8, 10.0, 5);
        assert_eq!(a.tod, b.tod);
    }
}
