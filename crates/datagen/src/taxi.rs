//! Taxi-trajectory sampling — the paper's §V-B data acquisition step.
//!
//! "For Hangzhou, Porto and Manhattan, we collect the taxi trajectory
//! data, scale them with city-specific factor (# all vehicles / # taxi) to
//! represent the trajectories of all vehicles, and get the corresponding
//! TOD tensors."
//!
//! Our simulator can emit one [`simulator::engine::TripRecord`] per
//! vehicle; sampling a fraction `1 / taxi_scale` of them reproduces a taxi
//! fleet's partial view, and [`trips_to_tod`] rebuilds the TOD tensor by
//! counting and re-scaling — exactly the paper's estimator. Its sampling
//! error is what separates "TOD derived from taxi data" from the true TOD.

use neural::rng::Rng64;
use roadnet::{OdSet, Result, RoadNetwork, RoadnetError, TodTensor};
use simulator::engine::TripRecord;
use simulator::{SimConfig, Simulation};

/// Simulates `tod` and returns every trip record (the "all vehicles" set).
pub fn record_all_trips(
    net: &RoadNetwork,
    ods: &OdSet,
    cfg: &SimConfig,
    tod: &TodTensor,
) -> Result<Vec<TripRecord>> {
    let mut cfg = cfg.clone();
    cfg.record_trips = true;
    let out = Simulation::new(net, ods, cfg)?.run(tod)?;
    Ok(out.trips)
}

/// Samples a taxi-fleet view: each trip is kept independently with
/// probability `1 / taxi_scale` (a fleet `taxi_scale` times smaller than
/// all vehicles).
pub fn sample_taxi_fleet(
    trips: &[TripRecord],
    taxi_scale: f64,
    rng: &mut Rng64,
) -> Vec<TripRecord> {
    let keep = (1.0 / taxi_scale.max(1.0)).clamp(0.0, 1.0);
    trips
        .iter()
        .copied()
        .filter(|_| rng.uniform() < keep)
        .collect()
}

/// Rebuilds a TOD tensor from (sampled) trip records: trips are counted
/// per OD and departure interval, then multiplied by `taxi_scale` — the
/// paper's scaling step.
pub fn trips_to_tod(
    trips: &[TripRecord],
    n_od: usize,
    t: usize,
    ticks_per_interval: u64,
    taxi_scale: f64,
) -> Result<TodTensor> {
    if ticks_per_interval == 0 {
        return Err(RoadnetError::InvalidAttribute(
            "ticks_per_interval must be positive".into(),
        ));
    }
    let mut tod = TodTensor::zeros(n_od, t);
    for trip in trips {
        if trip.od.index() >= n_od {
            return Err(RoadnetError::UnknownOdPair(trip.od));
        }
        let interval = (trip.depart_tick / ticks_per_interval) as usize;
        if interval < t {
            tod.add_at(trip.od, interval, taxi_scale);
        }
    }
    Ok(tod)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::presets::synthetic_grid;

    fn setup() -> (RoadNetwork, OdSet, SimConfig, TodTensor) {
        let net = synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let cfg = SimConfig::default()
            .with_intervals(3)
            .with_interval_s(120.0);
        let tod = TodTensor::filled(ods.len(), 3, 4.0);
        (net, ods, cfg, tod)
    }

    #[test]
    fn full_records_rebuild_the_spawned_tod() {
        let (net, ods, cfg, tod) = setup();
        let trips = record_all_trips(&net, &ods, &cfg, &tod).unwrap();
        assert!(!trips.is_empty());
        let rebuilt = trips_to_tod(&trips, ods.len(), 3, cfg.ticks_per_interval(), 1.0).unwrap();
        // Spawner may carry a fractional trip across interval boundaries
        // and queue a few entries, so allow a small per-cell tolerance.
        let err = tod.rmse(&rebuilt).unwrap();
        assert!(err < 1.0, "full-records rebuild error {err}");
        // Totals match the vehicles that departed within the horizon
        // (queued trips admitted during the cooldown fall outside it).
        let horizon = 3 * cfg.ticks_per_interval();
        let in_horizon = trips.iter().filter(|t| t.depart_tick < horizon).count();
        assert_eq!(rebuilt.total(), in_horizon as f64);
        assert!(in_horizon as f64 >= trips.len() as f64 * 0.95);
    }

    #[test]
    fn sampled_and_scaled_tod_is_unbiased() {
        let (net, ods, cfg, tod) = setup();
        let trips = record_all_trips(&net, &ods, &cfg, &tod).unwrap();
        let scale = 4.0;
        // Average over several fleet draws: the scaled estimate converges
        // to the full count.
        let mut mean_total = 0.0;
        let draws = 30;
        for s in 0..draws {
            let mut rng = Rng64::new(s);
            let fleet = sample_taxi_fleet(&trips, scale, &mut rng);
            let est = trips_to_tod(&fleet, ods.len(), 3, cfg.ticks_per_interval(), scale).unwrap();
            mean_total += est.total();
        }
        mean_total /= draws as f64;
        let truth = trips.len() as f64;
        assert!(
            (mean_total - truth).abs() / truth < 0.1,
            "mean {mean_total} vs truth {truth}"
        );
    }

    #[test]
    fn smaller_fleet_higher_variance() {
        let (net, ods, cfg, tod) = setup();
        let trips = record_all_trips(&net, &ods, &cfg, &tod).unwrap();
        let variance = |scale: f64| {
            let truth = trips_to_tod(&trips, ods.len(), 3, cfg.ticks_per_interval(), 1.0).unwrap();
            let mut acc = 0.0;
            for s in 0..20u64 {
                let mut rng = Rng64::new(s);
                let fleet = sample_taxi_fleet(&trips, scale, &mut rng);
                let est =
                    trips_to_tod(&fleet, ods.len(), 3, cfg.ticks_per_interval(), scale).unwrap();
                acc += truth.rmse(&est).unwrap();
            }
            acc / 20.0
        };
        assert!(
            variance(10.0) > variance(2.0),
            "sparser taxi fleets must reconstruct worse"
        );
    }

    #[test]
    fn trips_to_tod_validates_inputs() {
        let (_, ods, _, _) = setup();
        assert!(trips_to_tod(&[], ods.len(), 3, 0, 1.0).is_err());
        let bad = TripRecord {
            od: roadnet::OdPairId(999),
            from: roadnet::NodeId(0),
            to: roadnet::NodeId(1),
            depart_tick: 0,
            arrive_tick: None,
        };
        assert!(trips_to_tod(&[bad], ods.len(), 3, 10, 1.0).is_err());
    }

    #[test]
    fn sampling_fraction_respected() {
        let trips: Vec<TripRecord> = (0..10_000)
            .map(|k| TripRecord {
                od: roadnet::OdPairId(0),
                from: roadnet::NodeId(0),
                to: roadnet::NodeId(1),
                depart_tick: k,
                arrive_tick: None,
            })
            .collect();
        let mut rng = Rng64::new(1);
        let fleet = sample_taxi_fleet(&trips, 5.0, &mut rng);
        let frac = fleet.len() as f64 / trips.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "kept {frac}");
    }
}
