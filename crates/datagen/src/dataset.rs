//! Dataset assembly: the paper's data-preprocess pipeline (§V-D, Fig 7).
//!
//! For every dataset we produce
//!
//! * a **training corpus**: randomly generated TOD tensors (mixed over the
//!   five patterns of §V-B) run through the simulator to obtain matched
//!   `(TOD, volume, speed)` triples — no real TOD is ever trained on;
//! * a **test observation**: the hidden ground-truth TOD run through the
//!   simulator; only its *speed* tensor is exposed to estimators, while
//!   TOD and volume are kept for metrics;
//! * **auxiliary data**: synthetic census totals and camera observations
//!   derived (noisily) from the ground truth.

use crate::aux::{CameraObservations, CensusOdTotals};
use crate::city::{city_groundtruth_tod, synthesize_populations, CityDemandSpec};
use crate::patterns::TodPattern;
use neural::rng::Rng64;
use rayon::prelude::*;
use roadnet::presets::CityPreset;
use roadnet::{LinkTensor, OdSet, Result, RoadNetwork, TodTensor};
use simulator::{SimConfig, SimOutput, Simulation};

/// One matched training triple.
///
/// Re-export of the shared [`roadnet::TrainTriple`]; `ovs_core::estimator`
/// re-exports the same type, so datasets feed estimators without a
/// clone-and-convert step.
pub use roadnet::TrainTriple as TrainingSample;

/// RNG stream index reserved for census noise (cannot collide with a
/// training-sample index: corpora are far smaller than `u64::MAX`).
const CENSUS_STREAM: u64 = u64::MAX;
/// RNG stream index reserved for camera sampling.
const CAMERA_STREAM: u64 = u64::MAX - 1;

/// Generation parameters for a dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Number of observation intervals `T`.
    pub t: usize,
    /// Interval length in seconds (paper: 600).
    pub interval_s: f64,
    /// Number of training triples to generate.
    pub train_samples: usize,
    /// Demand scale applied to the synthetic patterns (1.0 = the paper's
    /// vehicles/minute magnitudes; smaller keeps small grids uncongested).
    pub demand_scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self {
            t: 12,
            interval_s: 600.0,
            train_samples: 20,
            demand_scale: 0.05,
            seed: 7,
        }
    }
}

impl DatasetSpec {
    /// The simulator configuration induced by this spec.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::default()
            .with_intervals(self.t)
            .with_interval_s(self.interval_s)
            .with_seed(self.seed)
    }
}

/// A fully assembled dataset, ready for the evaluation pipeline.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("Hangzhou", "synthetic/Random", ...).
    pub name: String,
    /// Road network.
    pub net: RoadNetwork,
    /// The chosen OD pairs.
    pub ods: OdSet,
    /// Simulator configuration used throughout.
    pub sim_config: SimConfig,
    /// Hidden ground-truth TOD (metrics only).
    pub groundtruth_tod: TodTensor,
    /// Ground-truth link volumes (metrics only).
    pub groundtruth_volume: LinkTensor,
    /// Observed link speeds — the estimators' only mandatory input.
    pub observed_speed: LinkTensor,
    /// Training triples from generated TOD tensors.
    pub train: Vec<TrainingSample>,
    /// Synthetic census (LEHD) daily OD totals.
    pub census: CensusOdTotals,
    /// Synthetic camera volumes on a few links.
    pub cameras: CameraObservations,
}

/// Runs the simulator once for `tod` over `(net, ods, cfg)`.
pub fn simulate(
    net: &RoadNetwork,
    ods: &OdSet,
    cfg: &SimConfig,
    tod: &TodTensor,
) -> Result<SimOutput> {
    Simulation::new(net, ods, cfg.clone())?.run(tod)
}

impl Dataset {
    /// Builds a dataset from an explicit network and ground-truth TOD.
    pub fn assemble(
        name: impl Into<String>,
        net: RoadNetwork,
        ods: OdSet,
        groundtruth_tod: TodTensor,
        spec: &DatasetSpec,
    ) -> Result<Self> {
        let cfg = spec.sim_config();
        let corpus_seed = spec.seed ^ 0x9E3779B97F4A7C15;

        // Training corpus, generated in parallel. Every sample `k` draws
        // from its own RNG stream `Rng64::for_index(corpus_seed, k)` and
        // runs its own clone of one warm template simulation, so the
        // result is a pure function of `k` — bit-identical for any thread
        // count, including fully serial execution. Patterns cycle in the
        // paper's order ("every 20% of TOD tensors has a specific
        // pattern", §V-D).
        let template = Simulation::new(&net, &ods, cfg.clone())?;
        let train: Vec<TrainingSample> = (0..spec.train_samples)
            .into_par_iter()
            .map(|k| {
                let mut rng = Rng64::for_index(corpus_seed, k as u64);
                let pattern = TodPattern::ALL[k % TodPattern::ALL.len()];
                let tod = pattern.generate(
                    ods.len(),
                    spec.t,
                    spec.interval_s / 60.0,
                    spec.demand_scale,
                    &mut rng,
                );
                let mut sim = template.clone();
                let out = sim.run(&tod)?;
                Ok(TrainingSample {
                    tod,
                    volume: out.volume,
                    speed: out.speed,
                })
            })
            .collect::<Result<_>>()?;

        // Test observation from the hidden ground truth.
        let mut sim = template;
        let observed = sim.run(&groundtruth_tod)?;

        // Auxiliary data draw from reserved streams so their noise is
        // independent of the corpus size.
        let mut census_rng = Rng64::for_index(corpus_seed, CENSUS_STREAM);
        let census = CensusOdTotals::from_groundtruth(&groundtruth_tod, 0.05, &mut census_rng);
        let mut camera_rng = Rng64::for_index(corpus_seed, CAMERA_STREAM);
        let cameras = CameraObservations::sample(&observed.volume, 10, 0.05, &mut camera_rng);

        Ok(Self {
            name: name.into(),
            net,
            ods,
            sim_config: cfg,
            groundtruth_tod,
            groundtruth_volume: observed.volume,
            observed_speed: observed.speed,
            train,
            census,
            cameras,
        })
    }

    /// The §V-B synthetic dataset: a 3x3 grid whose ground truth follows
    /// one of the five patterns.
    pub fn synthetic(pattern: TodPattern, spec: &DatasetSpec) -> Result<Self> {
        let net = roadnet::presets::synthetic_grid();
        let ods = OdSet::all_pairs(&net);
        let mut rng = Rng64::new(spec.seed);
        let groundtruth = pattern.generate(
            ods.len(),
            spec.t,
            spec.interval_s / 60.0,
            spec.demand_scale,
            &mut rng,
        );
        Self::assemble(
            format!("synthetic/{}", pattern.name()),
            net,
            ods,
            groundtruth,
            spec,
        )
    }

    /// A city dataset from one of the Table III presets: taxi-like ground
    /// truth with commuter structure, scaled by the preset's taxi factor.
    pub fn city(preset: CityPreset, spec: &DatasetSpec) -> Result<Self> {
        let mut net = preset.network;
        let mut rng = Rng64::new(spec.seed);
        synthesize_populations(&mut net, &mut rng);
        let ods = OdSet::all_pairs(&net);
        // Peak demand tracks the synthetic corpus scale (whose cells reach
        // ~20 veh/min * interval * demand_scale) but sits below it: real
        // city TOD is sparser and differently shaped than the generated
        // corpus — the distribution shift the paper's test setting has by
        // construction.
        let demand = CityDemandSpec {
            peak_trips_per_interval: 60.0 * spec.demand_scale,
            seed: spec.seed,
            ..CityDemandSpec::default()
        };
        let groundtruth = city_groundtruth_tod(&net, &ods, spec.t, &demand);
        Self::assemble(preset.name, net, ods, groundtruth, spec)
    }

    /// Number of OD pairs `N`.
    pub fn n_od(&self) -> usize {
        self.ods.len()
    }

    /// Number of links `M`.
    pub fn n_links(&self) -> usize {
        self.net.num_links()
    }

    /// Number of intervals `T`.
    pub fn n_intervals(&self) -> usize {
        self.groundtruth_tod.num_intervals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            t: 4,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.05,
            seed: 1,
        }
    }

    #[test]
    fn synthetic_dataset_assembles() {
        let ds = Dataset::synthetic(TodPattern::Random, &small_spec()).unwrap();
        assert_eq!(ds.name, "synthetic/Random");
        assert_eq!(ds.train.len(), 3);
        assert_eq!(ds.n_intervals(), 4);
        assert_eq!(ds.observed_speed.rows(), ds.n_links());
        assert_eq!(ds.groundtruth_tod.rows(), ds.n_od());
        assert_eq!(ds.census.len(), ds.n_od());
        assert!(!ds.cameras.is_empty());
        // training triples have consistent shapes
        for s in &ds.train {
            assert_eq!(s.tod.rows(), ds.n_od());
            assert_eq!(s.volume.rows(), ds.n_links());
            assert_eq!(s.speed.rows(), ds.n_links());
            assert!(s.speed.is_finite());
        }
    }

    #[test]
    fn city_dataset_assembles() {
        let ds = Dataset::city(roadnet::presets::state_college(), &small_spec()).unwrap();
        assert_eq!(ds.name, "State College");
        assert!(ds.groundtruth_tod.total() > 0.0);
        assert!(ds.observed_speed.is_finite());
        assert!(ds.net.regions().iter().all(|r| r.population > 0.0));
    }

    #[test]
    fn observed_speed_is_reproducible_from_groundtruth() {
        let ds = Dataset::synthetic(TodPattern::Gaussian, &small_spec()).unwrap();
        let out = simulate(&ds.net, &ds.ods, &ds.sim_config, &ds.groundtruth_tod).unwrap();
        assert_eq!(out.speed, ds.observed_speed);
        assert_eq!(out.volume, ds.groundtruth_volume);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::synthetic(TodPattern::Poisson, &small_spec()).unwrap();
        let b = Dataset::synthetic(TodPattern::Poisson, &small_spec()).unwrap();
        assert_eq!(a.groundtruth_tod, b.groundtruth_tod);
        assert_eq!(a.observed_speed, b.observed_speed);
    }
}
