//! Synthetic auxiliary data (the paper's Table II).
//!
//! | Level  | Static (here)              | Dynamic (here)          |
//! |--------|----------------------------|-------------------------|
//! | TOD    | census / LEHD commuters    | (taxi TOD samples)      |
//! | Volume | road network attributes    | surveillance cameras    |
//! | Speed  | speed limits               | (road work scenarios)   |
//!
//! §IV-E uses LEHD to constrain each OD's *daily total* trip count and
//! camera observations to constrain selected links' volumes. We synthesise
//! both from the hidden ground truth plus noise — exactly the situation
//! the paper faces, where auxiliary data is consistent with reality but
//! not exact.

use neural::rng::Rng64;
use roadnet::{LinkId, LinkTensor, OdPairId, OdSet, TodTensor};

/// LEHD-style census constraint: for OD pair `i`, the expected total
/// number of daily trips (`sum_t g_{i,t}` in the auxiliary loss of §IV-E).
#[derive(Debug, Clone, PartialEq)]
pub struct CensusOdTotals {
    totals: Vec<f64>,
}

impl CensusOdTotals {
    /// Derives noisy daily totals from a ground-truth TOD tensor.
    /// `noise_sigma` is the relative noise level (0 = exact).
    pub fn from_groundtruth(tod: &TodTensor, noise_sigma: f64, rng: &mut Rng64) -> Self {
        let totals = (0..tod.rows())
            .map(|i| {
                let t = tod.row_total(OdPairId(i));
                (t * (1.0 + rng.normal_with(0.0, noise_sigma))).max(0.0)
            })
            .collect();
        Self { totals }
    }

    /// Exact totals (for tests and upper-bound experiments).
    pub fn exact(tod: &TodTensor) -> Self {
        Self {
            totals: (0..tod.rows())
                .map(|i| tod.row_total(OdPairId(i)))
                .collect(),
        }
    }

    /// The daily total for OD `i`.
    pub fn total(&self, od: OdPairId) -> f64 {
        self.totals[od.index()]
    }

    /// All totals in OD order.
    pub fn as_slice(&self) -> &[f64] {
        &self.totals
    }

    /// Number of OD pairs covered.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True when no OD pairs are covered.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }
}

/// Sparse surveillance-camera observations: exact (noisy) volume series
/// for a small set of instrumented links ("we may only have surveillance
/// camera data for 10 intersections in a city", §IV-E).
#[derive(Debug, Clone, PartialEq)]
pub struct CameraObservations {
    /// Instrumented links.
    pub links: Vec<LinkId>,
    /// Observed volume series, one row per instrumented link, aligned with
    /// `links`.
    pub volumes: Vec<Vec<f64>>,
}

impl CameraObservations {
    /// Instruments `count` links spread evenly over the network and reads
    /// their (noisy) volumes off the ground-truth volume tensor.
    pub fn sample(
        groundtruth_volume: &LinkTensor,
        count: usize,
        noise_sigma: f64,
        rng: &mut Rng64,
    ) -> Self {
        let m = groundtruth_volume.rows();
        let count = count.min(m);
        let stride = m.checked_div(count).map_or(1, |s| s.max(1));
        let links: Vec<LinkId> = (0..m).step_by(stride).take(count).map(LinkId).collect();
        let volumes = links
            .iter()
            .map(|&l| {
                groundtruth_volume
                    .row(l)
                    .iter()
                    .map(|&v| (v * (1.0 + rng.normal_with(0.0, noise_sigma))).max(0.0))
                    .collect()
            })
            .collect();
        Self { links, volumes }
    }

    /// Number of instrumented links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no links are instrumented.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// Validates that census totals cover exactly the OD set.
pub fn census_matches_ods(census: &CensusOdTotals, ods: &OdSet) -> bool {
    census.len() == ods.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tod() -> TodTensor {
        TodTensor::from_data(3, 4, (0..12).map(|v| v as f64).collect()).unwrap()
    }

    #[test]
    fn exact_totals_match_row_sums() {
        let t = tod();
        let c = CensusOdTotals::exact(&t);
        assert_eq!(c.as_slice(), &[6.0, 22.0, 38.0]);
        assert_eq!(c.total(OdPairId(1)), 22.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn noisy_totals_stay_close_and_non_negative() {
        let t = tod();
        let mut rng = Rng64::new(0);
        let c = CensusOdTotals::from_groundtruth(&t, 0.05, &mut rng);
        for (n, e) in c
            .as_slice()
            .iter()
            .zip(CensusOdTotals::exact(&t).as_slice())
        {
            assert!(*n >= 0.0);
            if *e > 0.0 {
                assert!((n - e).abs() / e < 0.3, "noisy {n} vs exact {e}");
            }
        }
    }

    #[test]
    fn zero_noise_is_exact() {
        let t = tod();
        let mut rng = Rng64::new(1);
        let c = CensusOdTotals::from_groundtruth(&t, 0.0, &mut rng);
        assert_eq!(c, CensusOdTotals::exact(&t));
    }

    #[test]
    fn camera_sampling_spreads_and_respects_count() {
        let vol = LinkTensor::filled(20, 3, 10.0);
        let mut rng = Rng64::new(2);
        let cams = CameraObservations::sample(&vol, 5, 0.0, &mut rng);
        assert_eq!(cams.len(), 5);
        // spread: strides of 4
        assert_eq!(
            cams.links,
            vec![LinkId(0), LinkId(4), LinkId(8), LinkId(12), LinkId(16)]
        );
        for v in &cams.volumes {
            assert_eq!(v, &vec![10.0; 3]);
        }
    }

    #[test]
    fn camera_count_capped_at_links() {
        let vol = LinkTensor::filled(3, 2, 1.0);
        let mut rng = Rng64::new(3);
        let cams = CameraObservations::sample(&vol, 10, 0.0, &mut rng);
        assert_eq!(cams.len(), 3);
    }
}
